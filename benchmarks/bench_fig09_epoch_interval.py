"""Figure 9: DEUCE sensitivity to epoch interval.

Paper: epoch 8 -> 24.8%, 16 -> 24.0%, 32 -> 23.7%; the effect is under one
percentage point overall, but wrf and milc *increase* with longer epochs
because transiently-hot words keep being re-encrypted until the epoch ends.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig9_epoch_interval


def test_fig9_epoch_interval_sweep(benchmark):
    result = run_once(benchmark, fig9_epoch_interval, n_writes=BENCH_WRITES)
    record("fig9", result.render())
    avg = result.averages
    # The paper's main observation: epoch interval barely matters (<1.5pp).
    assert abs(avg["epoch8"] - avg["epoch32"]) < 1.5
    # The workload-level anomaly: burst-prone workloads get worse with
    # longer epochs.
    rows = {r["workload"]: r for r in result.rows}
    assert rows["wrf"]["epoch32"] > rows["wrf"]["epoch8"]
    assert rows["milc"]["epoch32"] > rows["milc"]["epoch16"]
