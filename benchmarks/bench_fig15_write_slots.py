"""Figure 15: write slots consumed per write request.

Paper: encrypted memory uses all 4 slots; FNW on encrypted memory barely
helps (~3.96 — fragmentation); DEUCE drops to 2.64; unencrypted memory needs
1.92.  DEUCE bridges two-thirds of the encrypted/unencrypted gap.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig15_write_slots


def test_fig15_write_slots(benchmark):
    result = run_once(benchmark, fig15_write_slots, n_writes=BENCH_WRITES)
    record("fig15", result.render())
    avg = result.averages

    assert avg["Encr"] >= 3.99  # every encrypted write touches all 4 regions
    assert avg["Encr-FNW"] >= 3.8  # fragmentation: FNW cannot free a slot
    # Our slot model charges one slot per 128-bit region with any flip, so
    # absolute counts run higher than the paper's (3.2 vs 2.64 for DEUCE,
    # 2.8 vs 1.92 unencrypted) — but the ordering and the headline claim
    # ("DEUCE bridges two-thirds of the gap") hold.
    assert avg["NoEncr"] < avg["DEUCE"] < avg["Encr"]
    bridged = (avg["Encr"] - avg["DEUCE"]) / (avg["Encr"] - avg["NoEncr"])
    assert bridged >= 0.5
