"""Shared helpers for the benchmark suite.

Every ``bench_*`` file reproduces one paper exhibit: it runs the experiment
function from :mod:`repro.sim.experiments`, prints the same rows the paper
reports (visible with ``pytest -s`` or in ``benchmarks/results/``), and
registers the wall time with pytest-benchmark.

Experiments are executed once per session (``pedantic`` with one round) —
these are deterministic simulations, not microbenchmarks, so re-running them
for statistics would only waste time.  Microbenchmarks of the hot kernels
live in ``bench_microbench.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Writebacks per (workload, scheme) cell in the figure benchmarks.  Large
#: enough for sub-percentage-point convergence of flip averages.
BENCH_WRITES = 3_000

RESULTS_DIR = Path(__file__).parent / "results"


def record(exp_id: str, rendered: str, data: dict | None = None) -> None:
    """Print a rendering and persist it under benchmarks/results/.

    When ``data`` is given it is additionally written as machine-readable
    JSON to ``benchmarks/results/BENCH_{exp_id}.json`` (for CI trend checks
    and speedup gates).
    """
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered + "\n")
    if data is not None:
        (RESULTS_DIR / f"BENCH_{exp_id}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
