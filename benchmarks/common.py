"""Shared helpers for the benchmark suite.

Every ``bench_*`` file reproduces one paper exhibit: it runs the experiment
function from :mod:`repro.sim.experiments`, prints the same rows the paper
reports (visible with ``pytest -s`` or in ``benchmarks/results/``), and
registers the wall time with pytest-benchmark.

Experiments are executed once per session (``pedantic`` with one round) —
these are deterministic simulations, not microbenchmarks, so re-running them
for statistics would only waste time.  Microbenchmarks of the hot kernels
live in ``bench_microbench.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Writebacks per (workload, scheme) cell in the figure benchmarks.  Large
#: enough for sub-percentage-point convergence of flip averages.
BENCH_WRITES = 3_000

RESULTS_DIR = Path(__file__).parent / "results"

REPO_ROOT = Path(__file__).parent.parent


def _record_in_ledger(exp_id: str, rendered: str, data: dict | None) -> None:
    """Persist a bench result as a kind="bench" manifest in the run ledger.

    Best-effort: a broken/unwritable ledger must never fail a benchmark, so
    errors are swallowed (the text/JSON results above are the primary
    output).
    """
    try:
        from repro.obs.ledger import RunLedger, build_manifest

        summary = {
            k: v
            for k, v in (data or {}).items()
            if isinstance(v, (int, float))
        }
        manifest = build_manifest(kind="bench", label=exp_id, summary=summary)
        artifact_text = {"result.txt": rendered + "\n"}
        if data is not None:
            artifact_text["bench.json"] = (
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )
        RunLedger().record(manifest, artifact_text=artifact_text)
    except Exception:
        pass


def _append_history(exp_id: str, data: dict) -> None:
    """Append one compact line to ``benchmarks/results/history.jsonl``.

    The ``BENCH_*.json`` files overwrite in place, so they only ever show
    the latest result; this append-only journal (stamped with the git
    revision and UTC time) is what the dashboard's perf-trajectory
    sparkline reads.  Best-effort, like the ledger record.
    """
    try:
        import time

        from repro.obs.ledger import git_revision

        entry = {
            "bench": exp_id,
            "git_rev": git_revision(),
            "utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **{
                k: v
                for k, v in data.items()
                if isinstance(v, (int, float))
            },
        }
        with open(RESULTS_DIR / "history.jsonl", "a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    except Exception:
        pass


def record(exp_id: str, rendered: str, data: dict | None = None) -> None:
    """Print a rendering and persist it under benchmarks/results/.

    When ``data`` is given it is additionally written as machine-readable
    JSON to ``benchmarks/results/BENCH_{exp_id}.json`` (for CI trend checks
    and speedup gates); the write-path and trace-path benches also drop a
    copy at the repo root (``BENCH_writepath.json`` /
    ``BENCH_tracepath.json``) where perf-trend tooling expects
    it.  Every bench result is additionally recorded in the run ledger as a
    ``kind="bench"`` manifest and appended (git_rev-stamped) to
    ``benchmarks/results/history.jsonl`` for perf-trajectory tracking.
    """
    print()
    print(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered + "\n")
    if data is not None:
        blob = json.dumps(data, indent=2, sort_keys=True) + "\n"
        (RESULTS_DIR / f"BENCH_{exp_id}.json").write_text(blob)
        if exp_id in ("writepath", "tracepath"):
            (REPO_ROOT / f"BENCH_{exp_id}.json").write_text(blob)
        _append_history(exp_id, data)
    _record_in_ledger(exp_id, rendered, data)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
