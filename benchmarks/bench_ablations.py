"""Ablation benches for the design choices DESIGN.md calls out.

Not paper exhibits — these quantify the knobs the implementation exposes:
the pad-source substitution, FNW group granularity, hashed vs algebraic HWL,
and DynDEUCE's greedy morphing threshold.
"""

from dataclasses import replace

from benchmarks.common import record, run_once
from repro.analysis.tables import render_table
from repro.sim.config import SimConfig
from repro.sim.runner import run
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_trace

N = 2_000
WORKLOADS = ("libq", "mcf", "lbm", "Gems")


def _pad_source_ablation():
    rows = []
    for kind in ("blake2", "aes"):
        for workload in ("mcf",):
            r = run(
                SimConfig(workload, "deuce", n_writes=600, pad_kind=kind)
            )
            rows.append(
                {
                    "pad_source": kind,
                    "workload": workload,
                    "flips_pct": round(r.avg_flips_pct, 2),
                }
            )
    return rows


def test_ablation_pad_source(benchmark):
    """The BLAKE2 surrogate must match real AES statistically."""
    rows = run_once(benchmark, _pad_source_ablation)
    record(
        "ablation_pad_source",
        render_table(["pad_source", "workload", "flips_pct"], rows,
                     title="Ablation: AES vs BLAKE2 pad source (DEUCE, mcf)"),
    )
    flips = {r["pad_source"]: r["flips_pct"] for r in rows}
    assert abs(flips["aes"] - flips["blake2"]) < 1.5


def _fnw_group_ablation():
    rows = []
    for group_bits in (8, 16, 32, 64):
        total = 0.0
        for workload in WORKLOADS:
            r = run(
                SimConfig(
                    workload, "encr-fnw", n_writes=N, fnw_group_bits=group_bits
                )
            )
            total += r.avg_flips_pct
        rows.append(
            {
                "group_bits": group_bits,
                "overhead_bits": 512 // group_bits,
                "avg_flips_pct": round(total / len(WORKLOADS), 2),
            }
        )
    return rows


def test_ablation_fnw_group_size(benchmark):
    """Finer FNW groups flip fewer data bits but carry more flip bits."""
    rows = run_once(benchmark, _fnw_group_ablation)
    record(
        "ablation_fnw_group",
        render_table(
            ["group_bits", "overhead_bits", "avg_flips_pct"], rows,
            title="Ablation: FNW group granularity (encrypted, 4 workloads)",
        ),
    )
    flips = {r["group_bits"]: r["avg_flips_pct"] for r in rows}
    # Coarser groups save less of the 50% avalanche.
    assert flips[8] < flips[64]


def _hwl_variant_ablation():
    rows = []
    workload = "mcf"
    profile = replace(get_profile(workload), working_set_lines=128)
    trace = generate_trace(profile, 8_000, seed=0)
    base = run(
        SimConfig(workload, "encr-dcw", 8_000), trace=trace
    ).lifetime.max_position_rate
    for mode, region in (
        ("none", None),
        ("hwl", 16),
        ("hwl-hashed", 128),
        ("sr-hwl", 128),
    ):
        r = run(
            SimConfig(
                workload,
                "deuce",
                8_000,
                wear_leveling=mode,
                gap_write_interval=1,
                hwl_region_lines=region,
            ),
            trace=trace,
        )
        rows.append(
            {
                "variant": mode,
                "lifetime_vs_encr": round(
                    base / r.lifetime.max_position_rate, 2
                ),
                "perfect_bound": round(
                    base / r.lifetime.mean_position_rate, 2
                ),
            }
        )
    return rows


def test_ablation_hwl_variants(benchmark):
    """Algebraic vs hashed HWL vs no intra-line leveling (mcf)."""
    rows = run_once(benchmark, _hwl_variant_ablation)
    record(
        "ablation_hwl",
        render_table(
            ["variant", "lifetime_vs_encr", "perfect_bound"], rows,
            title="Ablation: HWL variants (DEUCE on mcf)",
        ),
    )
    lifetime = {r["variant"]: r["lifetime_vs_encr"] for r in rows}
    assert lifetime["hwl"] > 1.5 * lifetime["none"]
    assert lifetime["hwl-hashed"] > 1.3 * lifetime["none"]


def _epoch_extreme_ablation():
    rows = []
    for epoch in (2, 4, 64, 128):
        total = 0.0
        for workload in WORKLOADS:
            r = run(SimConfig(workload, "deuce", n_writes=N, epoch_interval=epoch))
            total += r.avg_flips_pct
        rows.append(
            {"epoch": epoch, "avg_flips_pct": round(total / len(WORKLOADS), 2)}
        )
    return rows


def test_ablation_extreme_epochs(benchmark):
    """Beyond the paper's 8-32 sweep: degenerate and huge epochs."""
    rows = run_once(benchmark, _epoch_extreme_ablation)
    record(
        "ablation_epochs",
        render_table(["epoch", "avg_flips_pct"], rows,
                     title="Ablation: extreme epoch intervals (4 workloads)"),
    )
    flips = {r["epoch"]: r["avg_flips_pct"] for r in rows}
    # Epoch 2 re-encrypts the full line every other write: near-50% cost
    # on half the writes pushes the average well above the default.
    assert flips[2] > flips[64]


def _write_pausing_ablation():
    from collections import Counter

    from repro.perf.system import CoreConfig, simulate_execution

    rows = []
    profile = get_profile("mcf")
    hist = Counter({4: 1})  # encrypted-memory write durations
    for label, core in (
        ("baseline", CoreConfig()),
        ("write-pausing", CoreConfig(write_pausing=True)),
        ("power-tokens-8", CoreConfig(max_concurrent_write_slots=8)),
    ):
        ex = simulate_execution(
            profile, hist, instructions=400_000, seed=0, core=core
        )
        rows.append(
            {
                "controller": label,
                "exec_ms": round(ex.exec_time_ns / 1e6, 3),
                "avg_read_ns": round(ex.avg_read_latency_ns, 1),
            }
        )
    return rows


def test_ablation_write_pausing(benchmark):
    """Write pausing [6] and power tokens [22] on the encrypted baseline."""
    rows = run_once(benchmark, _write_pausing_ablation)
    record(
        "ablation_write_pausing",
        render_table(
            ["controller", "exec_ms", "avg_read_ns"], rows,
            title="Ablation: controller policies (mcf, encrypted writes)",
        ),
    )
    by = {r["controller"]: r for r in rows}
    # Pausing cuts read latency behind long encrypted writes.
    assert by["write-pausing"]["avg_read_ns"] < by["baseline"]["avg_read_ns"]
    assert by["write-pausing"]["exec_ms"] <= by["baseline"]["exec_ms"]
    # A power cap can only slow things down.
    assert by["power-tokens-8"]["exec_ms"] >= by["baseline"]["exec_ms"] * 0.99
