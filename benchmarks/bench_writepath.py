"""Write-path kernel microbenchmarks: vectorized vs pre-vectorization.

Each kernel is timed twice over the same inputs — once with a faithful
re-implementation of the original scalar code (embedded below so the
comparison survives the old code's removal) and once with the current
array-native kernels — and the ratio is recorded.  The headline number is
the full ``Deuce.write`` path (Blake2 pads, 64-byte lines), which the
vectorization work targets at >= 3x.

Results land in ``benchmarks/results/BENCH_writepath.json`` via
:func:`common.record` for machine consumption.
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro.crypto.ctr import mix_pads_array
from repro.crypto.pads import Blake2PadSource
from repro.memory import bitops
from repro.memory.bitops import POPCOUNT8
from repro.schemes.deuce import Deuce

from .common import record

KEY = b"writepath-bench!"
LINE_BYTES = 64
WORD_BYTES = 2
EPOCH_INTERVAL = 32
N_WRITES = 3_000
N_LINES = 8


# -- legacy (pre-vectorization) kernels, embedded for the comparison ----------


def _legacy_line_pad_array(
    key64: bytes, address: int, counter: int, n_bytes: int
) -> np.ndarray:
    """The original Blake2 line-pad path: one fresh keyed constructor per
    pad.  The current code pre-absorbs the key once and clones the hasher
    per call, which is what the ``line_pad`` kernel ratio measures."""
    import hashlib
    import struct

    msg = struct.pack("<QQB", address, counter, 0)
    digest = hashlib.blake2b(msg, key=key64, digest_size=64).digest()
    arr = np.frombuffer(digest, np.uint8)
    return arr if n_bytes == 64 else arr[:n_bytes]


def _legacy_xor(a: bytes, b: bytes) -> bytes:
    return (
        np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)
    ).tobytes()


def _legacy_bit_flips(old: bytes, new: bytes) -> int:
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    return int(POPCOUNT8[a ^ b].sum())


def _legacy_directional_flips(old: bytes, new: bytes) -> tuple[int, int]:
    a = np.frombuffer(old, dtype=np.uint8)
    b = np.frombuffer(new, dtype=np.uint8)
    sets = int(POPCOUNT8[(~a) & b].sum())
    resets = int(POPCOUNT8[a & (~b)].sum())
    return sets, resets


def _legacy_flipped_positions(old: bytes, new: bytes) -> np.ndarray:
    diff = np.unpackbits(
        np.frombuffer(_legacy_xor(old, new), dtype=np.uint8)
    )
    return np.nonzero(diff)[0]


def _legacy_mix_pads(
    pad_leading: bytes,
    pad_trailing: bytes,
    modified: list[bool],
    word_bytes: int,
) -> bytes:
    out = bytearray(len(pad_leading))
    for w, is_mod in enumerate(modified):
        lo = w * word_bytes
        hi = lo + word_bytes
        out[lo:hi] = pad_leading[lo:hi] if is_mod else pad_trailing[lo:hi]
    return bytes(out)


class LegacyDeuce:
    """The original scalar DEUCE write path (bytes slicing, Python loops)."""

    def __init__(self, pads: Blake2PadSource) -> None:
        self.pads = pads
        self.n_words = LINE_BYTES // WORD_BYTES
        self._epoch_mask = ~(EPOCH_INTERVAL - 1)
        self._lines: dict[int, tuple[bytes, np.ndarray, int]] = {}

    def _pad(self, address: int, counter: int) -> bytes:
        return self.pads.line_pad(address, counter, LINE_BYTES)

    def _effective_pad(
        self, address: int, meta: np.ndarray, counter: int
    ) -> bytes:
        tctr = counter & self._epoch_mask
        modified = [bool(b) for b in meta]
        if counter == tctr or not any(modified):
            return self._pad(address, counter if counter == tctr else tctr)
        return _legacy_mix_pads(
            self._pad(address, counter),
            self._pad(address, tctr),
            modified,
            WORD_BYTES,
        )

    def install(self, address: int, plaintext: bytes) -> None:
        stored = _legacy_xor(plaintext, self._pad(address, 0))
        self._lines[address] = (
            stored,
            np.zeros(self.n_words, dtype=np.uint8),
            0,
        )

    def read(self, address: int) -> bytes:
        stored, meta, counter = self._lines[address]
        return _legacy_xor(stored, self._effective_pad(address, meta, counter))

    def write(self, address: int, plaintext: bytes) -> int:
        stored, meta, old_counter = self._lines[address]
        old_plain = self.read(address)
        counter = old_counter + 1

        if counter % EPOCH_INTERVAL == 0:
            new_stored = _legacy_xor(plaintext, self._pad(address, counter))
            new_meta = np.zeros(self.n_words, dtype=np.uint8)
        else:
            newly = bitops.changed_words_reference(
                old_plain, plaintext, WORD_BYTES
            )
            new_meta = meta.copy()
            new_meta[newly] = 1
            modified = [bool(b) for b in new_meta]
            tctr = counter & self._epoch_mask
            pad = _legacy_mix_pads(
                self._pad(address, counter),
                self._pad(address, tctr),
                modified,
                WORD_BYTES,
            )
            new_stored = _legacy_xor(plaintext, pad)

        positions = _legacy_flipped_positions(stored, new_stored)
        sets, resets = _legacy_directional_flips(stored, new_stored)
        assert sets + resets == positions.size
        meta_flips = int(np.count_nonzero(meta != new_meta))
        self._lines[address] = (new_stored, new_meta, counter)
        return int(positions.size) + meta_flips


# -- workload + timing harness ------------------------------------------------


def _make_workload() -> tuple[list[bytes], list[tuple[int, bytes]]]:
    """Initial line images plus a (address, data) writeback stream."""
    rng = random.Random(1234)
    images = [
        bytes(rng.randrange(256) for _ in range(LINE_BYTES))
        for _ in range(N_LINES)
    ]
    current = list(images)
    stream = []
    for _ in range(N_WRITES):
        addr = rng.randrange(N_LINES)
        ba = bytearray(current[addr])
        for _ in range(rng.randrange(1, 8)):
            ba[rng.randrange(LINE_BYTES)] ^= rng.randrange(1, 256)
        current[addr] = bytes(ba)
        stream.append((addr, current[addr]))
    return images, stream


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _bench_kernel(legacy, current, repeats: int = 3) -> dict[str, float]:
    """Best-of-N wall time for both variants, plus the speedup ratio."""
    legacy_s = min(_time(legacy) for _ in range(repeats))
    current_s = min(_time(current) for _ in range(repeats))
    return {
        "legacy_s": round(legacy_s, 6),
        "current_s": round(current_s, 6),
        "speedup": round(legacy_s / current_s, 2) if current_s else 0.0,
    }


def test_writepath_kernels():
    pads = Blake2PadSource(KEY)
    rng = random.Random(5)
    old_b = bytes(rng.randrange(256) for _ in range(LINE_BYTES))
    new_b = bytes(rng.randrange(256) for _ in range(LINE_BYTES))
    old_a = np.frombuffer(old_b, dtype=np.uint8)
    new_a = np.frombuffer(new_b, dtype=np.uint8)
    lead_b, trail_b = pads.line_pad(0, 5, 64), pads.line_pad(0, 0, 64)
    lead_a = pads.line_pad_array(0, 5, 64)
    trail_a = pads.line_pad_array(0, 0, 64)
    meta = np.zeros(LINE_BYTES // WORD_BYTES, dtype=np.uint8)
    meta[::3] = 1
    modified = [bool(b) for b in meta]
    reps = 2_000

    kernels = {
        "line_pad": _bench_kernel(
            lambda: [
                _legacy_line_pad_array(pads._key64, 0, c, 64)
                for c in range(reps)
            ],
            lambda: [pads.line_pad_array(0, c, 64) for c in range(reps)],
        ),
        "bit_flips": _bench_kernel(
            lambda: [_legacy_bit_flips(old_b, new_b) for _ in range(reps)],
            lambda: [bitops.bit_flips_array(old_a, new_a) for _ in range(reps)],
        ),
        "mix_pads": _bench_kernel(
            lambda: [
                _legacy_mix_pads(lead_b, trail_b, modified, WORD_BYTES)
                for _ in range(reps)
            ],
            lambda: [
                mix_pads_array(lead_a, trail_a, meta, WORD_BYTES)
                for _ in range(reps)
            ],
        ),
        "changed_words": _bench_kernel(
            lambda: [
                bitops.changed_words_reference(old_b, new_b, WORD_BYTES)
                for _ in range(reps)
            ],
            lambda: [
                bitops.changed_words_array(old_a, new_a, WORD_BYTES)
                for _ in range(reps)
            ],
        ),
    }

    # The headline: the full DEUCE write path over an identical stream.
    images, stream = _make_workload()

    def run_legacy() -> int:
        scheme = LegacyDeuce(Blake2PadSource(KEY))
        for addr, image in enumerate(images):
            scheme.install(addr, image)
        return sum(scheme.write(addr, data) for addr, data in stream)

    def run_current() -> int:
        scheme = Deuce(
            Blake2PadSource(KEY),
            line_bytes=LINE_BYTES,
            word_bytes=WORD_BYTES,
            epoch_interval=EPOCH_INTERVAL,
        )
        for addr, image in enumerate(images):
            scheme.install(addr, image)
        return sum(
            scheme.write(addr, data).total_flips for addr, data in stream
        )

    # Both paths must agree on physics before their times are comparable.
    assert run_legacy() == run_current()

    deuce = _bench_kernel(run_legacy, run_current)
    deuce["n_writes"] = N_WRITES
    deuce["writes_per_s"] = round(N_WRITES / deuce["current_s"])
    deuce["legacy_writes_per_s"] = round(N_WRITES / deuce["legacy_s"])

    data = {
        "bench": "writepath",
        "line_bytes": LINE_BYTES,
        "word_bytes": WORD_BYTES,
        "epoch_interval": EPOCH_INTERVAL,
        "pad_kind": "blake2",
        "kernels": kernels,
        "deuce_write": deuce,
        "target_speedup": 3.0,
        "meets_target": deuce["speedup"] >= 3.0,
    }
    rows = [
        {"kernel": name, **vals}
        for name, vals in {**kernels, "deuce_write": deuce}.items()
    ]
    rendered = "\n".join(
        f"{r['kernel']:>14}: legacy {r['legacy_s'] * 1e3:8.2f} ms | "
        f"current {r['current_s'] * 1e3:8.2f} ms | {r['speedup']:5.2f}x"
        for r in rows
    )
    record("writepath", rendered, data=data)
    # The vectorization target is 3x; assert a lower floor so a loaded CI
    # machine doesn't flake, and record the real gate in meets_target.
    assert deuce["speedup"] >= 2.0
