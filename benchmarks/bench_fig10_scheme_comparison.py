"""Figure 10: the headline scheme comparison.

Paper averages: Encr-FNW 43%, DEUCE 23.7%, DynDEUCE 22.0%, DEUCE+FNW 20.3%,
NoEncr-FNW 10.5%.  DEUCE and DynDEUCE remove two-thirds of the extra flips
encryption causes; DynDEUCE rescues the dense writers (Gems, soplex) where
DEUCE alone exceeds FNW.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig10_scheme_comparison


def test_fig10_scheme_comparison(benchmark):
    result = run_once(
        benchmark, fig10_scheme_comparison, n_writes=BENCH_WRITES
    )
    record("fig10", result.render())
    avg = result.averages

    # Global ordering.
    assert (
        avg["NoEncr-FNW"]
        < avg["DEUCE+FNW"]
        <= avg["DynDEUCE"]
        <= avg["DEUCE"]
        < avg["Encr-FNW"]
    )
    # DEUCE removes roughly two-thirds of encryption's extra flips:
    # (50 - DEUCE) / (50 - NoEncr-FNW) >= 0.6.
    recovered = (50.0 - avg["DEUCE"]) / (50.0 - avg["NoEncr-FNW"])
    assert recovered >= 0.60

    # Dense writers: DEUCE above 43%, DynDEUCE below DEUCE.
    rows = {r["workload"]: r for r in result.rows}
    for workload in ("Gems", "soplex"):
        assert rows[workload]["DEUCE"] > 43.0
        assert rows[workload]["DynDEUCE"] < rows[workload]["DEUCE"]
    # Sparse writers: DEUCE far below FNW.
    for workload in ("libq", "mcf", "omnetpp"):
        assert rows[workload]["DEUCE"] < 0.5 * avg["Encr-FNW"]
