"""Figure 8: DEUCE sensitivity to tracking granularity.

Paper: 1B 21.4%, 2B 23.7%, 4B 26.8%, 8B 32.2% — finer tracking flips fewer
bits at the cost of more metadata (64 bits/line at 1B vs 8 bits at 8B).
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig8_word_size


def test_fig8_word_size_sweep(benchmark):
    result = run_once(benchmark, fig8_word_size, n_writes=BENCH_WRITES)
    record("fig8", result.render())
    avg = result.averages
    assert avg["1B"] < avg["2B"] < avg["4B"] < avg["8B"]
    assert 20.0 <= avg["2B"] <= 27.0  # paper: 23.7
    assert 29.0 <= avg["8B"] <= 37.0  # paper: 32.2
