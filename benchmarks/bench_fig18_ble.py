"""Figure 18: DEUCE is orthogonal to Block-Level Encryption.

Paper: BLE 33%, DEUCE 24%, BLE+DEUCE 19.9% — combining per-block counters
with per-word dual-counter tracking beats either alone.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig18_ble


def test_fig18_ble_combination(benchmark):
    result = run_once(benchmark, fig18_ble, n_writes=BENCH_WRITES)
    record("fig18", result.render())
    avg = result.averages

    assert 29.0 <= avg["BLE"] <= 38.0  # paper: 33%
    assert avg["DEUCE"] < avg["BLE"]
    assert avg["BLE+DEUCE"] < avg["BLE"]
    assert avg["BLE+DEUCE"] <= avg["DEUCE"] + 0.5
    # Dense workloads defeat BLE too (all four blocks rewritten).
    rows = {r["workload"]: r for r in result.rows}
    assert rows["Gems"]["BLE"] >= 49.0
