"""Figure 12: non-uniformity of bit writes within a line.

Paper: the hottest bit position receives ~6x (mcf) to ~27x (libquantum) the
average position's writes — the reason DEUCE alone only buys 1.1x lifetime.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.analysis.charts import sparkline
from repro.sim.experiments import bit_position_profile, fig12_bit_position_skew


def test_fig12_bit_position_skew(benchmark):
    result = run_once(
        benchmark, fig12_bit_position_skew, n_writes=4 * BENCH_WRITES
    )
    lines = [result.render(), ""]
    for workload in ("mcf", "libq"):
        profile = bit_position_profile(workload, n_writes=4 * BENCH_WRITES)
        lines.append(f"{workload} per-bit-position writes (normalized):")
        lines.append(sparkline(profile.tolist(), width=100))
    record("fig12", "\n".join(lines))

    skew = {r["workload"]: r["max_over_mean"] for r in result.rows}
    # libquantum is dramatically more skewed than mcf.
    assert skew["libq"] > 2.5 * skew["mcf"]
    assert 4.0 <= skew["mcf"] <= 9.0  # paper: ~6x
    assert skew["libq"] >= 14.0  # paper: ~27x
