"""Figure 17: speedup, memory energy, memory power, and EDP vs Encr.

Paper: FNW trims energy ~11% (EDP ~4%); DEUCE cuts energy 43% and EDP 43%
while power falls less (28%) because execution also gets shorter.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig17_energy_power_edp


def test_fig17_energy_power_edp(benchmark):
    result = run_once(benchmark, fig17_energy_power_edp, n_writes=BENCH_WRITES)
    record("fig17", result.render())
    rows = {r["scheme"]: r for r in result.rows}

    deuce = rows["DEUCE"]
    fnw = rows["Encr-FNW"]
    noencr = rows["NoEncr-FNW"]

    # DEUCE: large energy cut, smaller power cut (shorter execution).
    assert deuce["energy"] <= 0.70  # paper: 0.57
    assert deuce["power"] >= deuce["energy"]
    assert deuce["edp"] <= 0.65
    # FNW: modest energy savings, little else.
    assert 0.80 <= fnw["energy"] <= 0.95  # paper: ~0.89
    assert fnw["edp"] >= deuce["edp"]
    # Unencrypted FNW is the floor.
    assert noencr["edp"] <= deuce["edp"]
