"""Microbenchmarks of the hot kernels (true pytest-benchmark usage).

These measure throughput of the pieces the figure benchmarks spend their
time in: AES blocks, BLAKE2 line pads, FNW encoding, and single DEUCE
writes.
"""

import random

from repro.crypto.aes import AES
from repro.crypto.pads import AesPadSource, Blake2PadSource
from repro.schemes.deuce import Deuce
from repro.schemes.fnw import FnwCodec

KEY = b"microbench-key16"


def test_aes_block_encrypt(benchmark):
    cipher = AES(KEY)
    block = bytes(range(16))
    out = benchmark(cipher.encrypt_block, block)
    assert len(out) == 16


def test_blake2_line_pad(benchmark):
    pads = Blake2PadSource(KEY)
    counter = iter(range(10**9))
    out = benchmark(lambda: pads.line_pad(0x40, next(counter), 64))
    assert len(out) == 64


def test_aes_line_pad(benchmark):
    pads = AesPadSource(KEY)
    counter = iter(range(10**9))
    out = benchmark(lambda: pads.line_pad(0x40, next(counter), 64))
    assert len(out) == 64


def test_fnw_encode(benchmark):
    rng = random.Random(0)
    codec = FnwCodec()
    stored = bytes(rng.randrange(256) for _ in range(64))
    target = bytes(rng.randrange(256) for _ in range(64))
    flips = codec.fresh_flip_bits()
    stored_out, _ = benchmark(codec.encode, stored, flips, target)
    assert len(stored_out) == 64


def test_deuce_write(benchmark):
    rng = random.Random(0)
    scheme = Deuce(Blake2PadSource(KEY), epoch_interval=32)
    data = bytes(rng.randrange(256) for _ in range(64))
    scheme.install(0, data)

    def one_write():
        ba = bytearray(scheme.read(0))
        ba[rng.randrange(64)] ^= rng.randrange(1, 256)
        return scheme.write(0, bytes(ba))

    out = benchmark(one_write)
    assert out.total_flips >= 0
