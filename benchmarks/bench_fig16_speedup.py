"""Figure 16: system speedup over the encrypted-memory baseline.

Paper: FNW on encrypted memory is performance-neutral (write-slot
fragmentation), DEUCE gains 27% on average, and disabling encryption (FNW
only) gains 40%.  DEUCE bridges roughly two-thirds of the gap.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig16_speedup


def test_fig16_speedup(benchmark):
    result = run_once(benchmark, fig16_speedup, n_writes=BENCH_WRITES)
    record("fig16", result.render())
    avg = result.averages

    # FNW on encrypted memory: no meaningful speedup.
    assert avg["Encr-FNW"] <= 1.06
    # DEUCE provides a large speedup; unencrypted is the upper bound.
    assert avg["DEUCE"] >= 1.12
    assert avg["NoEncr-FNW"] >= avg["DEUCE"] * 0.98
    # DEUCE bridges at least half of the gap to unencrypted memory.
    gap = avg["NoEncr-FNW"] - 1.0
    assert gap > 0
    assert (avg["DEUCE"] - 1.0) / gap >= 0.5
