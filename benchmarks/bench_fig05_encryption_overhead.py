"""Figure 1b / Figure 5: encryption's ~4x bit-write overhead.

Regenerates the paper's opening measurement: average modified bits per write
for unencrypted and encrypted memory under DCW and FNW.  Paper: 12.2%,
10.5%, 50%, 43% — encryption costs almost 4x.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import fig5_encryption_overhead


def test_fig5_encryption_overhead(benchmark):
    result = run_once(benchmark, fig5_encryption_overhead, n_writes=BENCH_WRITES)
    record("fig5", result.render())
    avg = result.averages
    # Shape assertions: who wins and by roughly what factor.
    assert avg["Encr-DCW"] > 3.0 * avg["NoEncr-DCW"]
    assert 49.0 <= avg["Encr-DCW"] <= 51.0
    assert 41.5 <= avg["Encr-FNW"] <= 44.0
    assert 9.5 <= avg["NoEncr-DCW"] <= 15.0
    assert avg["NoEncr-FNW"] <= avg["NoEncr-DCW"]
