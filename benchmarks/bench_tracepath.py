"""Trace-compiled write path: chunked ``run()`` vs the per-write baseline.

The write-path vectorization work (``bench_writepath.py``) sped up one
``Deuce.write`` call; this benchmark measures the next layer — the runner
consuming whole trace chunks through ``scheme.write_batch`` with batched
pad streams and scatter-add wear accumulation — against the per-write
loop (``chunk_size=1``), which is how the runner executed before the
batched path existed.

The suite is the regression gate's pinned config (``baselines/``:
workload mcf, 2000 writes, seed 0) for every batch-capable scheme, run
end-to-end through :func:`repro.sim.runner.run`.  Both sides are timed
best-of-N (simulation wall times on shared runners spread ~30%, so a
single rep of either side would make the ratio noise).  Before any ratio
is reported the chunked result is asserted **bit-identical** to the
serial one — speed that changes physics is a bug, not a win.

Results land in ``benchmarks/results/BENCH_tracepath.json`` (plus a repo-
root copy) via :func:`common.record` for CI consumption.
"""

from __future__ import annotations

from repro.sim.config import SimConfig
from repro.sim.runner import run

from .common import record

WORKLOAD = "mcf"
N_WRITES = 2_000
SEED = 0

#: Schemes whose ``supports_write_batch`` is true; the rest fall back to
#: the per-write loop at any chunk size and would measure nothing.
SCHEMES = ("deuce", "encr-dcw", "noencr-dcw")

#: The default chunk size plus the whole pinned trace as one chunk.
CHUNK_SIZES = (SimConfig("mcf", "deuce").chunk_size, N_WRITES)

#: Best-of-N repeats per (scheme, chunk_size) side.
REPEATS = 5


def _comparable(result) -> dict:
    """A result's full physics dict, minus timing and identity noise."""
    d = result.to_dict()
    d.pop("wall_time_s", None)
    d.pop("run_id", None)
    d.get("config", {}).pop("chunk_size", None)
    return d


def _best_of(config: SimConfig, repeats: int = REPEATS):
    """Fastest of ``repeats`` runs: ``(best wall seconds, a result)``."""
    best_s, best_r = None, None
    for _ in range(repeats):
        result = run(config)
        if best_s is None or result.wall_time_s < best_s:
            best_s, best_r = result.wall_time_s, result
    return best_s, best_r


def test_tracepath_throughput():
    per_scheme: dict[str, dict] = {}
    lines = []
    for scheme in SCHEMES:
        serial_cfg = SimConfig(
            WORKLOAD, scheme, n_writes=N_WRITES, seed=SEED, chunk_size=1
        )
        serial_s, serial_res = _best_of(serial_cfg)
        entry: dict = {
            "serial_s": round(serial_s, 6),
            "serial_writes_per_s": round(N_WRITES / serial_s),
            "chunked": {},
        }
        for chunk_size in CHUNK_SIZES:
            chunked_cfg = SimConfig(
                WORKLOAD,
                scheme,
                n_writes=N_WRITES,
                seed=SEED,
                chunk_size=chunk_size,
            )
            chunk_s, chunk_res = _best_of(chunked_cfg)
            # Parity oracle: every aggregate, histogram, and wear count
            # must match the per-write loop exactly.
            assert _comparable(chunk_res) == _comparable(serial_res), (
                f"{scheme} chunk_size={chunk_size} diverged from serial"
            )
            entry["chunked"][str(chunk_size)] = {
                "chunked_s": round(chunk_s, 6),
                "writes_per_s": round(N_WRITES / chunk_s),
                "speedup": round(serial_s / chunk_s, 2),
            }
        # Headline: the whole pinned trace as one chunk — the fully
        # trace-compiled path the batching work targets at >= 10x.
        top = entry["chunked"][str(N_WRITES)]
        entry["writes_per_s"] = top["writes_per_s"]
        entry["speedup"] = top["speedup"]
        per_scheme[scheme] = entry
        chunk_cells = " | ".join(
            f"cs={cs} {entry['chunked'][str(cs)]['writes_per_s']:>7} w/s "
            f"({entry['chunked'][str(cs)]['speedup']:5.2f}x)"
            for cs in CHUNK_SIZES
        )
        lines.append(
            f"{scheme:>10}: serial {entry['serial_writes_per_s']:>6} w/s | "
            f"{chunk_cells}"
        )

    deuce = per_scheme["deuce"]
    data = {
        "bench": "tracepath",
        "workload": WORKLOAD,
        "n_writes": N_WRITES,
        "seed": SEED,
        "chunk_sizes": list(CHUNK_SIZES),
        "repeats": REPEATS,
        "schemes": per_scheme,
        "writes_per_s": deuce["writes_per_s"],
        "serial_writes_per_s": deuce["serial_writes_per_s"],
        "speedup": deuce["speedup"],
        "target_speedup": 10.0,
        "meets_target": deuce["speedup"] >= 10.0,
    }
    record("tracepath", "\n".join(lines), data=data)
    # The batching target is 10x (recorded in meets_target); assert a
    # lower floor so a loaded CI machine doesn't flake the suite.
    assert deuce["speedup"] >= 8.0