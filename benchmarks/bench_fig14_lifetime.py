"""Figure 14: lifetime normalized to encrypted memory.

Paper: FNW ~1.14x (uniform but modest flip reduction), DEUCE ~1.11x (big
flip reduction wasted on hot positions), DEUCE+HWL ~2x (flip reduction fully
converted to lifetime).  Per workload, DEUCE+HWL tracks the workload's own
flip reduction — near 1.0 for the dense writers (Gems, soplex), far above
2x for the sparse ones (libq).
"""

from benchmarks.common import record, run_once
from repro.sim.experiments import fig14_lifetime


def test_fig14_lifetime(benchmark):
    result = run_once(benchmark, fig14_lifetime, n_writes=10_000)
    record("fig14", result.render())
    avg = result.averages
    rows = {r["workload"]: r for r in result.rows}

    # HWL converts DEUCE's flip reduction into lifetime.
    assert avg["DEUCE-HWL"] >= 1.7 * avg["DEUCE"]
    assert avg["DEUCE-HWL"] >= 1.8  # paper: 2x
    # Without HWL, DEUCE's lifetime gain is marginal.
    assert avg["DEUCE"] <= 1.35  # paper: 1.11x
    # FNW's uniform writes buy a modest uniform gain.
    assert 1.0 <= avg["FNW"] <= 1.35  # paper: 1.14x

    # Dense writers cannot gain: flips are not reduced.
    for workload in ("Gems", "soplex"):
        assert rows[workload]["DEUCE-HWL"] <= 1.25
    # Sparse writers gain the most.
    assert rows["libq"]["DEUCE-HWL"] > 3.0
