"""Table 3: storage overhead vs effectiveness.

Paper: FNW 32 bits / 42.7%, DEUCE 32 bits / 23.7%, DynDEUCE 33 bits / 22.0%,
DEUCE+FNW 64 bits / 20.3%.
"""

from benchmarks.common import BENCH_WRITES, record, run_once
from repro.sim.experiments import table3_storage_overhead


def test_table3_storage_overhead(benchmark):
    result = run_once(benchmark, table3_storage_overhead, n_writes=BENCH_WRITES)
    record("table3", result.render())
    rows = {r["scheme"]: r for r in result.rows}

    # Exact storage overheads from the paper's table.
    assert rows["FNW"]["overhead_bits"] == 32
    assert rows["DEUCE"]["overhead_bits"] == 32
    assert rows["DynDEUCE"]["overhead_bits"] == 33
    assert rows["DEUCE+FNW"]["overhead_bits"] == 64

    # Effectiveness ordering at equal (or nearly equal) storage.
    assert rows["DEUCE"]["avg_flips_pct"] < rows["FNW"]["avg_flips_pct"]
    assert rows["DynDEUCE"]["avg_flips_pct"] <= rows["DEUCE"]["avg_flips_pct"]
    assert (
        rows["DEUCE+FNW"]["avg_flips_pct"] <= rows["DynDEUCE"]["avg_flips_pct"]
    )
