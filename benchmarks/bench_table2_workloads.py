"""Table 2: benchmark characteristics (MPKI / WBPKI of the 12 workloads)."""

from benchmarks.common import record, run_once
from repro.sim.experiments import table2_workloads


def test_table2_workload_characteristics(benchmark):
    result = run_once(benchmark, table2_workloads)
    record("table2", result.render())
    rows = {r["workload"]: r for r in result.rows}
    assert len(rows) == 12
    # Verbatim Table 2 spot checks.
    assert rows["libq"]["read_mpki"] == 22.9
    assert rows["libq"]["wbpki"] == 9.78
    assert rows["astar"]["wbpki"] == 1.29
    # Selection criterion: every workload has >= 1 WBPKI.
    assert all(r["wbpki"] >= 1.0 for r in result.rows)
