"""Scheme registry tests."""

from __future__ import annotations

import pytest

from repro.crypto.pads import Blake2PadSource
from repro.schemes import ENCRYPTED_SCHEMES, SCHEME_NAMES, make_scheme

KEY = b"registry-test-16"


class TestRegistry:
    def test_every_name_constructs(self):
        pads = Blake2PadSource(KEY)
        for name in SCHEME_NAMES:
            scheme = make_scheme(name, pads)
            assert scheme.name == name
            assert scheme.line_bytes == 64

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("rot13", Blake2PadSource(KEY))

    def test_encrypted_schemes_require_pads(self):
        for name in ENCRYPTED_SCHEMES:
            with pytest.raises(ValueError, match="requires a pad source"):
                make_scheme(name, None)

    def test_plain_schemes_need_no_pads(self):
        for name in ("noencr-dcw", "noencr-fnw"):
            assert make_scheme(name, None).name == name

    def test_invmm_is_registered_and_encrypted(self):
        assert "invmm" in SCHEME_NAMES
        assert "invmm" in ENCRYPTED_SCHEMES

    def test_table3_overheads_via_registry(self):
        """The storage-overhead column of Table 3, from the registry."""
        pads = Blake2PadSource(KEY)
        expected = {
            "noencr-dcw": 0,
            "noencr-fnw": 32,
            "encr-dcw": 0,
            "encr-fnw": 32,
            "deuce": 32,
            "dyndeuce": 33,
            "deuce+fnw": 64,
            "ble": 0,
            "ble+deuce": 32,
            "invmm": 1,
        }
        for name, bits in expected.items():
            assert make_scheme(name, pads).metadata_bits_per_line == bits, name

    def test_geometry_parameters_forwarded(self):
        pads = Blake2PadSource(KEY)
        scheme = make_scheme(
            "deuce", pads, line_bytes=32, word_bytes=4, epoch_interval=8
        )
        assert scheme.line_bytes == 32
        assert scheme.word_bytes == 4
        assert scheme.epoch_interval == 8
