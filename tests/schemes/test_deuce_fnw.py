"""DEUCE+FNW (dedicated bits for both) tests."""

from __future__ import annotations

import pytest

from repro.schemes.deuce import Deuce
from repro.schemes.deuce_fnw import DeuceFnw
from tests.conftest import mutate_words, random_line


class TestRoundTrip:
    def test_sparse_and_dense_writes(self, pads, rng):
        scheme = DeuceFnw(pads, epoch_interval=8)
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(30):
            k = 32 if i % 5 == 0 else 2
            data = mutate_words(rng, data, k)
            scheme.write(0, data)
            assert scheme.read(0) == data, f"write {i}"

    def test_with_aes(self, aes_pads, rng):
        scheme = DeuceFnw(aes_pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(8):
            data = mutate_words(rng, data, 3)
            scheme.write(0, data)
            assert scheme.read(0) == data


class TestStorage:
    def test_overhead_is_double(self, pads):
        assert DeuceFnw(pads).metadata_bits_per_line == 64

    def test_mixed_granularities(self, pads):
        scheme = DeuceFnw(pads, word_bytes=4, fnw_group_bits=16)
        assert scheme.metadata_bits_per_line == 16 + 32


class TestEffectiveness:
    def test_never_worse_than_plain_deuce_on_average(self, pads, rng):
        combo = DeuceFnw(pads, epoch_interval=32)
        plain = Deuce(pads, epoch_interval=32)
        data = random_line(rng)
        combo.install(0, data)
        plain.install(0, data)
        combo_total = plain_total = 0
        for _ in range(100):
            data = mutate_words(rng, data, 3)
            combo_total += combo.write(0, data).total_flips
            plain_total += plain.write(0, data).total_flips
        assert combo_total <= plain_total

    def test_unmodified_words_untouched(self, pads, rng):
        scheme = DeuceFnw(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        before = scheme.stored(0).data
        ba = bytearray(data)
        ba[0] ^= 0xFF
        scheme.write(0, bytes(ba))
        after = scheme.stored(0).data
        assert before[2:] == after[2:]  # only word 0 changed

    def test_epoch_resets_modified_bits_but_not_flip_bits(self, pads, rng):
        scheme = DeuceFnw(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(4):
            data = mutate_words(rng, data, 32)
            scheme.write(0, data)
        line = scheme.stored(0)
        assert not scheme._modified(line.meta).any()
        # Flip bits persist across epochs (they describe the stored image).
        assert scheme.read(0) == data


class TestValidation:
    def test_word_bytes_divides_line(self, pads):
        with pytest.raises(ValueError):
            DeuceFnw(pads, word_bytes=7)
