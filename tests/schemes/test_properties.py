"""Cross-scheme property-based tests.

Every write scheme must be a faithful store: after any sequence of installs
and writes, ``read`` returns exactly the last value written.  Hypothesis
drives random write sequences through every scheme in the registry.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.pads import Blake2PadSource
from repro.schemes import SCHEME_NAMES, make_scheme

KEY = b"property-test-16"

LINE = 16  # small lines keep hypothesis fast; geometry is parameterized


def _make(name: str, line_bytes: int = LINE):
    return make_scheme(
        name,
        Blake2PadSource(KEY),
        line_bytes=line_bytes,
        word_bytes=2,
        epoch_interval=4,
        fnw_group_bits=16,
    )


write_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # address
        st.binary(min_size=LINE, max_size=LINE),
    ),
    min_size=1,
    max_size=24,
)


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
@given(seq=write_sequences)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_read_returns_last_write(scheme_name, seq):
    scheme = _make(scheme_name)
    latest: dict[int, bytes] = {}
    for address, data in seq:
        if address in latest:
            scheme.write(address, data)
        else:
            scheme.install(address, data)
        latest[address] = data
        assert scheme.read(address) == data
    for address, data in latest.items():
        assert scheme.read(address) == data


@pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
@given(seq=write_sequences)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_flip_positions_are_consistent(scheme_name, seq):
    """Outcome position arrays always agree with the scalar flip counts."""
    scheme = _make(scheme_name)
    seen = set()
    for address, data in seq:
        if address not in seen:
            scheme.install(address, data)
            seen.add(address)
            continue
        out = scheme.write(address, data)
        assert out.flipped_data_positions.size == out.data_flips
        assert out.flipped_meta_positions.size == out.metadata_flips
        assert out.total_flips == out.data_flips + out.metadata_flips
        if out.data_flips:
            assert int(out.flipped_data_positions.max()) < 8 * LINE
        if out.metadata_flips:
            assert (
                int(out.flipped_meta_positions.max())
                < scheme.metadata_bits_per_line
            )


@pytest.mark.parametrize(
    "scheme_name", ["deuce", "dyndeuce", "deuce+fnw", "ble+deuce"]
)
@given(
    word_bytes=st.sampled_from([1, 2, 4]),
    epoch=st.sampled_from([2, 4, 8, 16]),
    seq=write_sequences,
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_geometry_sweep_round_trip(scheme_name, word_bytes, epoch, seq):
    scheme = make_scheme(
        scheme_name,
        Blake2PadSource(KEY),
        line_bytes=LINE,
        word_bytes=word_bytes,
        epoch_interval=epoch,
    )
    seen = set()
    for address, data in seq:
        if address in seen:
            scheme.write(address, data)
        else:
            scheme.install(address, data)
            seen.add(address)
        assert scheme.read(address) == data
