"""DEUCE tests: epoch mechanics (Figure 6), dual-counter decode (Figure 7),
re-encryption sets, and parameter validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schemes.deuce import Deuce
from tests.conftest import mutate_words, random_line


def write_word(data: bytes, word: int, word_bytes: int, value: bytes) -> bytes:
    ba = bytearray(data)
    ba[word * word_bytes: (word + 1) * word_bytes] = value
    return bytes(ba)


class TestEpochWalk:
    """The Figure 6 scenario: epoch interval 4, 8 words per line."""

    @pytest.fixture
    def scheme(self, pads):
        return Deuce(pads, word_bytes=8, epoch_interval=4)

    def test_walk(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        assert scheme.trailing_counter(scheme.stored(0)) == 0

        # Counter 1: write W1 -> only W1 re-encrypted.
        data = write_word(data, 1, 8, b"AAAAAAAA")
        out = scheme.write(0, data)
        assert out.words_reencrypted == 1
        assert not out.full_line_reencrypted
        assert list(np.nonzero(scheme.stored(0).meta)[0]) == [1]

        # Counter 2: write W2 -> W1 and W2 re-encrypted.
        data = write_word(data, 2, 8, b"BBBBBBBB")
        out = scheme.write(0, data)
        assert out.words_reencrypted == 2
        assert list(np.nonzero(scheme.stored(0).meta)[0]) == [1, 2]

        # Counter 3: write W3 -> W1, W2, W3 re-encrypted.
        data = write_word(data, 3, 8, b"CCCCCCCC")
        out = scheme.write(0, data)
        assert out.words_reencrypted == 3

        # Counter 4: epoch start -> all words re-encrypted, bits reset.
        data = write_word(data, 4, 8, b"DDDDDDDD")
        out = scheme.write(0, data)
        assert out.full_line_reencrypted
        assert out.words_reencrypted == 8
        assert not scheme.stored(0).meta.any()
        line = scheme.stored(0)
        assert scheme.trailing_counter(line) == 4
        assert scheme.leading_counter(line) == 4

    def test_reads_correct_at_every_step(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(12):
            data = mutate_words(rng, data, 1, word_bytes=8)
            scheme.write(0, data)
            assert scheme.read(0) == data, f"write {i}"


class TestCounters:
    def test_trailing_counter_masks_lsbs(self, pads):
        scheme = Deuce(pads, epoch_interval=8)
        data = bytes(64)
        scheme.install(0, data)
        for expected_tctr in [0] * 7 + [8] * 8 + [16]:
            scheme.write(0, data)
            line = scheme.stored(0)
            assert scheme.trailing_counter(line) == expected_tctr

    def test_leading_equals_line_counter(self, pads, rng):
        scheme = Deuce(pads)
        data = random_line(rng)
        scheme.install(0, data)
        scheme.write(0, data)
        line = scheme.stored(0)
        assert scheme.leading_counter(line) == line.counter == 1


class TestReencryptionSet:
    def test_unmodified_words_keep_stored_bytes(self, pads, rng):
        """Words outside the epoch's modified set contribute zero flips."""
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        before = scheme.stored(0).data
        new = write_word(data, 5, 2, b"ZZ")
        scheme.write(0, new)
        after = scheme.stored(0).data
        # Only word 5's two bytes may differ.
        for w in range(32):
            if w == 5:
                continue
            assert before[w * 2: w * 2 + 2] == after[w * 2: w * 2 + 2]

    def test_rewritten_word_stays_marked_until_epoch(self, pads, rng):
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        new = write_word(data, 3, 2, b"QQ")
        scheme.write(0, new)
        # Write something else entirely; word 3 unchanged this time but
        # remains marked and is re-encrypted again.
        new2 = write_word(new, 9, 2, b"RR")
        out = scheme.write(0, new2)
        assert out.words_reencrypted == 2
        assert scheme.stored(0).meta[3] == 1

    def test_word_changed_back_still_marked(self, pads, rng):
        """'Modified at least once since the epoch' - even if reverted."""
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        original_word = data[6:8]
        scheme.write(0, write_word(data, 3, 2, b"XX"))
        scheme.write(0, data)  # revert
        assert scheme.stored(0).meta[3] == 1
        assert scheme.read(0) == data

    def test_identical_writeback_reencrypts_nothing_mid_epoch(
        self, pads, rng
    ):
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        out = scheme.write(0, data)
        assert out.words_reencrypted == 0
        assert out.data_flips == 0
        assert out.metadata_flips == 0


class TestMetadataAccounting:
    def test_metadata_flips_counted_on_marking(self, pads, rng):
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        out = scheme.write(0, mutate_words(rng, data, 3))
        assert out.metadata_flips == 3

    def test_epoch_reset_counts_meta_flips(self, pads, rng):
        scheme = Deuce(pads, word_bytes=2, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(3):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
        marked = int(scheme.stored(0).meta.sum())
        assert marked > 0
        out = scheme.write(0, data)  # 4th write: epoch start
        assert out.full_line_reencrypted
        assert out.metadata_flips == marked  # all marked bits reset

    def test_storage_overhead_tracks_word_size(self, pads):
        assert Deuce(pads, word_bytes=1).metadata_bits_per_line == 64
        assert Deuce(pads, word_bytes=2).metadata_bits_per_line == 32
        assert Deuce(pads, word_bytes=4).metadata_bits_per_line == 16
        assert Deuce(pads, word_bytes=8).metadata_bits_per_line == 8


class TestFlipEfficiency:
    def test_sparse_writes_flip_far_less_than_full_encryption(
        self, pads, rng
    ):
        scheme = Deuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        total = 0
        n = 128
        for _ in range(n):
            data = mutate_words(rng, data, 1)
            total += scheme.write(0, data).total_flips
        assert total / n / 512 < 0.25  # far below the 50% of full re-encryption

    def test_reencrypted_word_flips_about_half_its_bits(self, pads, rng):
        scheme = Deuce(pads, word_bytes=2, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        flips = []
        for _ in range(100):
            data = mutate_words(rng, data, 1)
            out = scheme.write(0, data)
            if out.words_reencrypted == 1:
                flips.append(out.data_flips)
        avg = sum(flips) / len(flips)
        assert 6 <= avg <= 10  # ~8 of 16 bits


class TestValidation:
    def test_epoch_must_be_power_of_two(self, pads):
        with pytest.raises(ValueError, match="power of two"):
            Deuce(pads, epoch_interval=12)

    def test_epoch_must_be_at_least_two(self, pads):
        with pytest.raises(ValueError):
            Deuce(pads, epoch_interval=1)

    def test_word_bytes_must_divide_line(self, pads):
        with pytest.raises(ValueError):
            Deuce(pads, line_bytes=64, word_bytes=3)


class TestAesBacked:
    def test_round_trip_with_real_aes(self, aes_pads, rng):
        scheme = Deuce(aes_pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(6):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data
