"""DynDEUCE tests: mode morphing (Figure 11), epoch reset, storage."""

from __future__ import annotations

import pytest

from repro.memory import bitops
from repro.schemes.deuce import Deuce
from repro.schemes.dyndeuce import MODE_DEUCE, MODE_FNW, DynDeuce
from tests.conftest import mutate_words, random_line


def dense_rewrite(rng, data: bytes) -> bytes:
    """A write that changes every 2-byte word (DEUCE's worst case)."""
    return mutate_words(rng, data, 32)


class TestModeSelection:
    def test_starts_in_deuce_mode(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=32)
        scheme.install(0, random_line(rng))
        assert scheme._mode(scheme.stored(0).meta) == MODE_DEUCE

    def test_sparse_writes_stay_deuce(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(10):
            data = mutate_words(rng, data, 1)
            out = scheme.write(0, data)
            assert out.mode == "deuce"

    def test_dense_writes_morph_to_fnw(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        modes = []
        for _ in range(8):
            data = dense_rewrite(rng, data)
            modes.append(scheme.write(0, data).mode)
        # Dense rewrites make DEUCE re-encrypt everything (~50%) where FNW
        # caps at ~43%; the line must morph at some point.
        assert "fnw" in modes

    def test_once_fnw_stays_fnw_until_epoch(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        while scheme._mode(scheme.stored(0).meta) == MODE_DEUCE:
            data = dense_rewrite(rng, data)
            scheme.write(0, data)
        # Now in FNW mode: even sparse writes keep FNW until the epoch.
        counter = scheme.stored(0).counter
        writes_until_epoch = 32 - (counter % 32) - 1
        for _ in range(writes_until_epoch):
            data = mutate_words(rng, data, 1)
            out = scheme.write(0, data)
            assert out.mode == "fnw"

    def test_epoch_resets_to_deuce(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(12):
            data = dense_rewrite(rng, data)
            out = scheme.write(0, data)
            if scheme.stored(0).counter % 4 == 0:
                assert out.mode == "deuce"
                assert out.full_line_reencrypted
                assert scheme._mode(scheme.stored(0).meta) == MODE_DEUCE


class TestCorrectness:
    def test_round_trip_through_mode_changes(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=8)
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(40):
            data = (
                dense_rewrite(rng, data)
                if i % 3 == 0
                else mutate_words(rng, data, 1)
            )
            scheme.write(0, data)
            assert scheme.read(0) == data, f"write {i}"

    def test_round_trip_with_aes(self, aes_pads, rng):
        scheme = DynDeuce(aes_pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(10):
            data = dense_rewrite(rng, data) if i % 2 else mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data


class TestCostComparison:
    def test_chooses_strictly_cheaper_candidate(self, pads, rng):
        """The greedy choice (Figure 11) is locally optimal per write."""
        scheme = DynDeuce(pads, epoch_interval=32)
        plain_deuce = Deuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        plain_deuce.install(0, data)
        for _ in range(6):
            data = dense_rewrite(rng, data)
            before = scheme.stored(0).copy()
            out = scheme.write(0, data)
            deuce_out = plain_deuce.write(0, data)
            if out.mode == "fnw":
                # Morphing must not cost more than DEUCE would have.
                assert out.total_flips <= deuce_out.total_flips


class TestStorage:
    def test_overhead_is_33_bits(self, pads):
        assert DynDeuce(pads).metadata_bits_per_line == 33

    def test_tracking_bits_repurposed_as_flip_bits(self, pads, rng):
        scheme = DynDeuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        while scheme._mode(scheme.stored(0).meta) == MODE_DEUCE:
            data = dense_rewrite(rng, data)
            scheme.write(0, data)
        line = scheme.stored(0)
        # In FNW mode the tracking bits are flip bits: decoding with them
        # and XORing the leading pad must recover the plaintext.
        ciphertext = scheme.codec.decode(line.data, scheme._tracking(line.meta))
        recovered = bitops.xor(
            ciphertext, pads.line_pad(0, line.counter, 64)
        )
        assert recovered == data


class TestValidation:
    def test_epoch_power_of_two(self, pads):
        with pytest.raises(ValueError):
            DynDeuce(pads, epoch_interval=10)

    def test_word_bytes_divides_line(self, pads):
        with pytest.raises(ValueError):
            DynDeuce(pads, word_bytes=5)
