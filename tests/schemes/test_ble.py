"""Block-Level Encryption tests."""

from __future__ import annotations

import pytest

from repro.schemes.ble import BlockLevelEncryption
from tests.conftest import mutate_words, random_line


class TestRoundTrip:
    def test_basic(self, pads, rng):
        scheme = BlockLevelEncryption(pads)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(10):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data

    def test_with_aes(self, aes_pads, rng):
        scheme = BlockLevelEncryption(aes_pads)
        data = random_line(rng)
        scheme.install(0, data)
        data = mutate_words(rng, data, 1)
        scheme.write(0, data)
        assert scheme.read(0) == data


class TestBlockCounters:
    def test_only_modified_blocks_increment(self, pads, rng):
        scheme = BlockLevelEncryption(pads)
        data = random_line(rng)
        scheme.install(0, data)
        # Modify one byte in block 2 only.
        ba = bytearray(data)
        ba[36] ^= 0xFF
        out = scheme.write(0, bytes(ba))
        assert scheme.block_counters(0) == [0, 0, 1, 0]
        assert out.words_reencrypted == 1  # one block

    def test_unmodified_blocks_keep_ciphertext(self, pads, rng):
        scheme = BlockLevelEncryption(pads)
        data = random_line(rng)
        scheme.install(0, data)
        before = scheme.stored(0).data
        ba = bytearray(data)
        ba[0] ^= 1
        scheme.write(0, bytes(ba))
        after = scheme.stored(0).data
        assert before[16:] == after[16:]

    def test_whole_block_reencrypted_for_one_bit(self, pads, rng):
        """BLE's coarseness: a 1-bit change flips ~half of 128 bits."""
        scheme = BlockLevelEncryption(pads)
        data = random_line(rng)
        scheme.install(0, data)
        total = 0
        n = 100
        for _ in range(n):
            ba = bytearray(data)
            ba[5] ^= 1
            data = bytes(ba)
            total += scheme.write(0, data).total_flips
        avg = total / n
        assert 50 <= avg <= 78  # ~64 flips = half of one AES block

    def test_identical_write_touches_nothing(self, pads, rng):
        scheme = BlockLevelEncryption(pads)
        data = random_line(rng)
        scheme.install(0, data)
        out = scheme.write(0, data)
        assert out.total_flips == 0
        assert scheme.block_counters(0) == [0, 0, 0, 0]


class TestGeometry:
    def test_four_blocks_per_line(self, pads):
        assert BlockLevelEncryption(pads).n_blocks == 4

    def test_line_must_be_whole_blocks(self, pads):
        with pytest.raises(ValueError):
            BlockLevelEncryption(pads, line_bytes=40)

    def test_no_metadata_overhead(self, pads):
        assert BlockLevelEncryption(pads).metadata_bits_per_line == 0
