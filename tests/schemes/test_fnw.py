"""Flip-N-Write codec and scheme tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import bitops
from repro.schemes.fnw import EncryptedFNW, FnwCodec, PlainFNW
from tests.conftest import mutate_words, random_line


class TestCodecBasics:
    def test_geometry(self):
        codec = FnwCodec(line_bytes=64, group_bits=16)
        assert codec.n_groups == 32
        assert codec.group_bytes == 2

    def test_encode_decode_round_trip(self, rng):
        codec = FnwCodec()
        stored = random_line(rng)
        flips = codec.fresh_flip_bits()
        target = random_line(rng)
        new_stored, new_flips = codec.encode(stored, flips, target)
        assert codec.decode(new_stored, new_flips) == target

    def test_identical_target_zero_cost(self, rng):
        codec = FnwCodec()
        data = random_line(rng)
        flips = codec.fresh_flip_bits()
        new_stored, new_flips = codec.encode(data, flips, data)
        assert new_stored == data
        assert np.array_equal(new_flips, flips)

    def test_inverts_group_when_cheaper(self):
        codec = FnwCodec(line_bytes=2, group_bits=16)
        stored = b"\xff\xff"
        flips = codec.fresh_flip_bits()
        # Target is all zeros: storing plain costs 16 flips, storing
        # inverted (0xffff) costs 0 data flips + 1 flip-bit.
        new_stored, new_flips = codec.encode(stored, flips, b"\x00\x00")
        assert new_stored == b"\xff\xff"
        assert new_flips[0] == 1
        assert codec.decode(new_stored, new_flips) == b"\x00\x00"

    def test_keeps_plain_when_cheaper(self):
        codec = FnwCodec(line_bytes=2, group_bits=16)
        new_stored, new_flips = codec.encode(
            b"\x00\x00", codec.fresh_flip_bits(), b"\x00\x01"
        )
        assert new_stored == b"\x00\x01"
        assert new_flips[0] == 0

    def test_tie_keeps_current_flip_bit(self):
        codec = FnwCodec(line_bytes=2, group_bits=16)
        # Exactly 8 of 16 bits differ: plain and inverted both cost 8 data
        # flips; keeping flip=0 avoids the metadata flip.
        target = b"\xff\x00"
        new_stored, new_flips = codec.encode(
            b"\x00\x00", codec.fresh_flip_bits(), target
        )
        assert new_flips[0] == 0
        assert new_stored == target


class TestCodecBound:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_flips_per_group_bounded_by_half_plus_flipbit(self, data):
        codec = FnwCodec(line_bytes=8, group_bits=16)
        stored = data.draw(st.binary(min_size=8, max_size=8))
        target = data.draw(st.binary(min_size=8, max_size=8))
        old_flips = np.array(
            data.draw(
                st.lists(st.sampled_from([0, 1]), min_size=4, max_size=4)
            ),
            dtype=np.uint8,
        )
        new_stored, new_flips = codec.encode(stored, old_flips, target)
        for g in range(4):
            data_flips = bitops.bit_flips(
                stored[g * 2: g * 2 + 2], new_stored[g * 2: g * 2 + 2]
            )
            meta = int(old_flips[g] != new_flips[g])
            assert data_flips + meta <= 8 + 1

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_encode_never_worse_than_plain_store(self, data):
        codec = FnwCodec(line_bytes=4, group_bits=16)
        stored = data.draw(st.binary(min_size=4, max_size=4))
        target = data.draw(st.binary(min_size=4, max_size=4))
        flips = codec.fresh_flip_bits()
        new_stored, new_flips = codec.encode(stored, flips, target)
        cost = bitops.bit_flips(stored, new_stored) + int(
            np.count_nonzero(flips != new_flips)
        )
        assert cost <= bitops.bit_flips(stored, target)


class TestCodecValidation:
    def test_group_bits_multiple_of_eight(self):
        with pytest.raises(ValueError):
            FnwCodec(group_bits=12)

    def test_group_bits_divides_line(self):
        with pytest.raises(ValueError):
            FnwCodec(line_bytes=6, group_bits=32)

    def test_wrong_flip_bit_count(self):
        codec = FnwCodec(line_bytes=4, group_bits=16)
        with pytest.raises(ValueError, match="flip bits"):
            codec.encode(bytes(4), np.zeros(3, dtype=np.uint8), bytes(4))

    def test_wrong_line_size(self):
        codec = FnwCodec(line_bytes=4, group_bits=16)
        with pytest.raises(ValueError):
            codec.encode(bytes(6), codec.fresh_flip_bits(), bytes(6))


class TestPlainFNW:
    def test_round_trip(self, rng):
        scheme = PlainFNW()
        data = random_line(rng)
        scheme.install(0, data)
        new = mutate_words(rng, data, 3)
        scheme.write(0, new)
        assert scheme.read(0) == new

    def test_overhead_is_one_bit_per_group(self):
        assert PlainFNW().metadata_bits_per_line == 32
        assert PlainFNW(group_bits=8).metadata_bits_per_line == 64

    def test_fnw_never_flips_more_than_dcw_raw_diff(self, rng):
        scheme = PlainFNW()
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(20):
            new = mutate_words(rng, data, 4)
            raw = bitops.bit_flips(scheme.stored(0).data, new)
            out = scheme.write(0, new)
            # Codec optimality: total cost cannot exceed the plain store.
            assert out.total_flips <= raw
            data = new


class TestEncryptedFNW:
    def test_round_trip(self, pads, rng):
        scheme = EncryptedFNW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(5):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data

    def test_flip_rate_near_43_percent(self, pads, rng):
        scheme = EncryptedFNW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        total = 0
        n = 300
        for _ in range(n):
            data = mutate_words(rng, data, 1)
            total += scheme.write(0, data).total_flips
        rate = total / n / 512
        assert 0.40 <= rate <= 0.46  # paper: 43%

    def test_every_write_reencrypts_fully(self, pads, rng):
        scheme = EncryptedFNW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        out = scheme.write(0, data)  # even an identical writeback
        assert out.full_line_reencrypted
        assert out.total_flips > 100  # avalanche: ~43% of 512
