"""PlainDCW baseline tests."""

from __future__ import annotations

import pytest

from repro.schemes.dcw import PlainDCW
from tests.conftest import mutate_words, random_line


class TestPlainDCW:
    def test_install_then_read(self, rng):
        scheme = PlainDCW()
        data = random_line(rng)
        scheme.install(1, data)
        assert scheme.read(1) == data

    def test_flips_equal_actual_bit_changes(self, rng):
        scheme = PlainDCW()
        scheme.install(1, bytes(64))
        new = b"\x01" + bytes(63)
        out = scheme.write(1, new)
        assert out.data_flips == 1
        assert out.metadata_flips == 0
        assert out.total_flips == 1

    def test_unmodified_write_flips_nothing(self, rng):
        scheme = PlainDCW()
        data = random_line(rng)
        scheme.install(1, data)
        out = scheme.write(1, data)
        assert out.total_flips == 0

    def test_no_metadata_overhead(self):
        assert PlainDCW().metadata_bits_per_line == 0

    def test_counter_increments(self, rng):
        scheme = PlainDCW()
        data = random_line(rng)
        scheme.install(1, data)
        scheme.write(1, mutate_words(rng, data, 1))
        assert scheme.stored(1).counter == 1

    def test_write_before_install_rejected(self):
        with pytest.raises(KeyError, match="never installed"):
            PlainDCW().write(5, bytes(64))

    def test_wrong_line_size_rejected(self):
        scheme = PlainDCW()
        with pytest.raises(ValueError, match="line must be"):
            scheme.install(0, bytes(32))

    def test_flip_positions_match_count(self, rng):
        scheme = PlainDCW()
        data = random_line(rng)
        scheme.install(1, data)
        out = scheme.write(1, mutate_words(rng, data, 3))
        assert out.flipped_data_positions.size == out.data_flips
