"""Encrypted-DCW (counter-mode baseline) tests."""

from __future__ import annotations

import pytest

from repro.schemes.counter_mode import EncryptedDCW
from tests.conftest import mutate_words, random_line


class TestEncryptedDCW:
    def test_round_trip(self, pads, rng):
        scheme = EncryptedDCW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(5):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data

    def test_stored_image_is_not_plaintext(self, pads):
        scheme = EncryptedDCW(pads)
        data = b"secret! " * 8
        scheme.install(0, data)
        assert scheme.stored(0).data != data

    def test_avalanche_half_the_bits_flip(self, pads, rng):
        scheme = EncryptedDCW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        total = 0
        n = 200
        for _ in range(n):
            # Single-bit plaintext change still flips ~50% of stored bits.
            ba = bytearray(data)
            ba[0] ^= 1
            data = bytes(ba)
            total += scheme.write(0, data).total_flips
        assert 0.47 <= total / n / 512 <= 0.53

    def test_counter_increments_per_write(self, pads, rng):
        scheme = EncryptedDCW(pads)
        data = random_line(rng)
        scheme.install(7, data)
        assert scheme.stored(7).counter == 0
        scheme.write(7, data)
        scheme.write(7, data)
        assert scheme.stored(7).counter == 2

    def test_same_plaintext_different_ciphertext_across_writes(
        self, pads, rng
    ):
        scheme = EncryptedDCW(pads)
        data = random_line(rng)
        scheme.install(0, data)
        first = scheme.stored(0).data
        scheme.write(0, data)
        assert scheme.stored(0).data != first  # fresh pad every write

    def test_no_metadata(self, pads):
        assert EncryptedDCW(pads).metadata_bits_per_line == 0

    def test_independent_lines(self, pads, rng):
        scheme = EncryptedDCW(pads)
        a, b = random_line(rng), random_line(rng)
        scheme.install(1, a)
        scheme.install(2, b)
        assert scheme.read(1) == a
        assert scheme.read(2) == b

    def test_identical_plaintext_lines_have_different_ciphertext(self, pads):
        scheme = EncryptedDCW(pads)
        scheme.install(1, bytes(64))
        scheme.install(2, bytes(64))
        assert scheme.stored(1).data != scheme.stored(2).data
