"""Dense batch state stays consistent with DEUCE's serial accessors.

The batch write path keeps DEUCE line state in structure-of-arrays form
(:class:`repro.schemes.deuce._DenseLines`) and only materializes the
per-line dict views when a serial accessor needs them.  These tests
interleave batch and serial operations every way the runner can and check
the scheme never observes stale or diverged state: a batch-driven scheme
and a write-by-write twin must agree on reads, stored images, outcomes,
and ``state_dict`` snapshots at every switchover point.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.crypto.pads import Blake2PadSource
from repro.schemes.deuce import Deuce

KEY = b"dense-state-k-16"
LINE = 64


def _scheme() -> Deuce:
    return Deuce(Blake2PadSource(KEY), line_bytes=LINE, epoch_interval=4)


def _rand_lines(rng: random.Random, n: int) -> list[bytes]:
    return [bytes(rng.randrange(256) for _ in range(LINE)) for _ in range(n)]


def _mutate(rng: random.Random, line: bytes) -> bytes:
    data = bytearray(line)
    for _ in range(rng.randrange(1, 4)):
        data[rng.randrange(LINE)] ^= rng.randrange(1, 256)
    return bytes(data)


def _install_batch(scheme: Deuce, lines: list[bytes]) -> None:
    scheme.install_batch(
        np.arange(len(lines), dtype=np.int64),
        np.frombuffer(b"".join(lines), np.uint8).reshape(len(lines), LINE),
    )


def _assert_same_state(batch: Deuce, serial: Deuce, n_lines: int) -> None:
    assert batch.addresses() == serial.addresses()
    for addr in range(n_lines):
        assert batch.read(addr) == serial.read(addr)
        b_line, s_line = batch.stored(addr), serial.stored(addr)
        assert np.array_equal(b_line.arr, s_line.arr)
        assert np.array_equal(b_line.meta, s_line.meta)
        assert b_line.counter == s_line.counter
    b_state, s_state = batch.state_dict(), serial.state_dict()
    assert b_state.keys() == s_state.keys()
    for key, value in b_state.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, s_state[key]), key
        else:
            assert value == s_state[key], key


class TestBatchThenSerialAccess:
    def test_install_batch_then_read(self, rng):
        lines = _rand_lines(rng, 5)
        scheme = _scheme()
        _install_batch(scheme, lines)
        for addr, line in enumerate(lines):
            assert scheme.read(addr) == line

    def test_batch_writes_visible_to_serial_accessors(self, rng):
        lines = _rand_lines(rng, 4)
        batch, serial = _scheme(), _scheme()
        _install_batch(batch, lines)
        for addr, line in enumerate(lines):
            serial.install(addr, line)
        writes = []
        current = dict(enumerate(lines))
        for _ in range(24):
            addr = rng.randrange(4)
            current[addr] = _mutate(rng, current[addr])
            writes.append((addr, current[addr]))
        outcome = batch.write_batch(
            np.asarray([a for a, _ in writes], dtype=np.int64),
            np.frombuffer(
                b"".join(d for _, d in writes), np.uint8
            ).reshape(len(writes), LINE),
        )
        serial_outcomes = [serial.write(a, d) for a, d in writes]
        _assert_same_state(batch, serial, 4)
        # Outcomes agree write for write (batch rows are address-sorted).
        order = np.argsort(
            np.asarray([a for a, _ in writes]), kind="stable"
        )
        assert outcome.data_flips.sum() == sum(
            o.data_flips for o in serial_outcomes
        )
        by_row = outcome.words_reencrypted[np.argsort(order, kind="stable")]
        assert list(by_row) == [
            o.words_reencrypted for o in serial_outcomes
        ]

    def test_serial_write_after_batch_then_batch_again(self, rng):
        lines = _rand_lines(rng, 3)
        batch, serial = _scheme(), _scheme()
        _install_batch(batch, lines)
        for addr, line in enumerate(lines):
            serial.install(addr, line)
        current = dict(enumerate(lines))

        def step_batch(writes):
            batch.write_batch(
                np.asarray([a for a, _ in writes], dtype=np.int64),
                np.frombuffer(
                    b"".join(d for _, d in writes), np.uint8
                ).reshape(len(writes), LINE),
            )
            for a, d in writes:
                serial.write(a, d)

        # batch -> serial mutation (drops dense) -> batch again
        first = []
        for _ in range(8):
            addr = rng.randrange(3)
            current[addr] = _mutate(rng, current[addr])
            first.append((addr, current[addr]))
        step_batch(first)
        current[1] = _mutate(rng, current[1])
        batch.write(1, current[1])
        serial.write(1, current[1])
        second = []
        for _ in range(8):
            addr = rng.randrange(3)
            current[addr] = _mutate(rng, current[addr])
            second.append((addr, current[addr]))
        step_batch(second)
        _assert_same_state(batch, serial, 3)

    def test_reinstall_after_batch_falls_back(self, rng):
        # install() on a scheme holding dense state must drop/flush it and
        # still leave a coherent store.
        lines = _rand_lines(rng, 3)
        scheme = _scheme()
        _install_batch(scheme, lines)
        replacement = _rand_lines(rng, 1)[0]
        scheme.install(1, replacement)
        assert scheme.read(1) == replacement
        assert scheme.read(0) == lines[0]
        assert scheme.stored(1).counter == 0


class TestStateDictRoundtrip:
    def test_snapshot_restore_continue(self, rng):
        lines = _rand_lines(rng, 4)
        batch, serial = _scheme(), _scheme()
        _install_batch(batch, lines)
        for addr, line in enumerate(lines):
            serial.install(addr, line)
        current = dict(enumerate(lines))
        writes = []
        for _ in range(16):
            addr = rng.randrange(4)
            current[addr] = _mutate(rng, current[addr])
            writes.append((addr, current[addr]))
        batch.write_batch(
            np.asarray([a for a, _ in writes], dtype=np.int64),
            np.frombuffer(
                b"".join(d for _, d in writes), np.uint8
            ).reshape(len(writes), LINE),
        )
        for a, d in writes:
            serial.write(a, d)
        # Restore the batch scheme's snapshot into a fresh instance and
        # keep writing through the batch path: still identical.
        restored = _scheme()
        restored.load_state_dict(batch.state_dict())
        more = []
        for _ in range(12):
            addr = rng.randrange(4)
            current[addr] = _mutate(rng, current[addr])
            more.append((addr, current[addr]))
        restored.write_batch(
            np.asarray([a for a, _ in more], dtype=np.int64),
            np.frombuffer(
                b"".join(d for _, d in more), np.uint8
            ).reshape(len(more), LINE),
        )
        for a, d in more:
            serial.write(a, d)
        _assert_same_state(restored, serial, 4)

    def test_write_batch_unknown_address_raises(self, rng):
        scheme = _scheme()
        _install_batch(scheme, _rand_lines(rng, 2))
        with pytest.raises(KeyError, match="never installed"):
            scheme.write_batch(
                np.asarray([0, 7], dtype=np.int64),
                np.zeros((2, LINE), dtype=np.uint8),
            )
