"""Property: every scheme's state survives a ``state_dict`` round trip.

Hypothesis picks a scheme, a workload, and a random cut point in the
writeback stream; the scheme's mutable state is snapshotted at the cut,
loaded into a *freshly constructed* instance (via ``from_config``, the
unified construction path), and both instances replay the remaining
writes.  Every per-write outcome and the final state must match bit for
bit — this is the foundation the run checkpoint/resume machinery stands
on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pads import Blake2PadSource
from repro.schemes import SCHEME_NAMES, SCHEME_REGISTRY
from repro.sim.config import SimConfig
from repro.sim.runner import cached_trace

KEY = b"roundtrip-key-16"
N_WRITES = 240


def _build(name: str):
    cls = SCHEME_REGISTRY[name]
    config = SimConfig("libq", name, n_writes=N_WRITES, seed=5)
    pads = Blake2PadSource(KEY) if cls.requires_pads else None
    return cls.from_config(config, pads)


def _outcome_key(outcome) -> tuple:
    return (
        outcome.address,
        outcome.data_flips,
        outcome.metadata_flips,
        outcome.set_flips,
        outcome.reset_flips,
        tuple(outcome.flipped_data_positions),
        tuple(outcome.flipped_meta_positions),
        outcome.words_reencrypted,
        outcome.full_line_reencrypted,
        outcome.epoch_reset,
        outcome.mode_switched,
        outcome.mode,
    )


def _assert_states_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key, left in a.items():
        right = b[key]
        if isinstance(left, np.ndarray):
            assert np.array_equal(left, np.asarray(right)), key
        else:
            assert left == right, key


@settings(max_examples=30, deadline=None)
@given(
    name=st.sampled_from(SCHEME_NAMES),
    workload=st.sampled_from(("libq", "mcf")),
    cut=st.integers(min_value=1, max_value=N_WRITES - 1),
)
def test_roundtrip_continues_bit_identically(name, workload, cut):
    trace = cached_trace(workload, N_WRITES, 5, 64)

    reference = _build(name)
    for addr in trace.addresses():
        reference.install(addr, trace.initial[addr])
    for record in trace.records[:cut]:
        reference.write(record.address, record.data)

    snapshot = reference.state_dict()
    restored = _build(name)
    restored.load_state_dict(snapshot)
    _assert_states_equal(snapshot, restored.state_dict())

    for record in trace.records[cut:]:
        ref_outcome = reference.write(record.address, record.data)
        res_outcome = restored.write(record.address, record.data)
        assert _outcome_key(ref_outcome) == _outcome_key(res_outcome)

    _assert_states_equal(reference.state_dict(), restored.state_dict())
    for addr in trace.addresses():
        assert reference.read(addr) == restored.read(addr)
