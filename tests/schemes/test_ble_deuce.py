"""BLE+DEUCE (per-block dual counters) tests."""

from __future__ import annotations

import pytest

from repro.schemes.ble import BlockLevelEncryption
from repro.schemes.ble_deuce import BleDeuce
from tests.conftest import mutate_words, random_line


class TestRoundTrip:
    def test_basic(self, pads, rng):
        scheme = BleDeuce(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for i in range(30):
            data = mutate_words(rng, data, 1 + i % 4)
            scheme.write(0, data)
            assert scheme.read(0) == data, f"write {i}"

    def test_with_aes(self, aes_pads, rng):
        scheme = BleDeuce(aes_pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(6):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data


class TestPerBlockEpochs:
    def test_block_epoch_resets_its_modified_bits_only(self, pads, rng):
        scheme = BleDeuce(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        # Drive block 0 through a full epoch while block 2 gets one write.
        ba = bytearray(data)
        ba[32] ^= 1  # block 2
        data = bytes(ba)
        scheme.write(0, data)
        assert scheme.stored(0).meta[16] == 1  # block 2's first word marked
        for _ in range(4):
            ba = bytearray(data)
            ba[0] ^= 1  # block 0
            data = bytes(ba)
            scheme.write(0, data)
        # Block 0's counter hit the epoch boundary and reset its bits...
        assert scheme.block_counters(0)[0] == 4
        assert not scheme.stored(0).meta[:8].any()
        # ...but block 2's marking is untouched.
        assert scheme.stored(0).meta[16] == 1

    def test_untouched_blocks_never_advance(self, pads, rng):
        scheme = BleDeuce(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(6):
            ba = bytearray(data)
            ba[0] ^= 1
            data = bytes(ba)
            scheme.write(0, data)
        assert scheme.block_counters(0)[1:] == [0, 0, 0]


class TestEffectiveness:
    def test_finer_than_ble_for_sub_block_writes(self, pads, rng):
        """BLE rewrites 16 bytes for a 1-bit change; BLE+DEUCE only 2."""
        combo = BleDeuce(pads, epoch_interval=32)
        ble = BlockLevelEncryption(pads)
        data = random_line(rng)
        combo.install(0, data)
        ble.install(0, data)
        combo_total = ble_total = 0
        for _ in range(60):
            ba = bytearray(data)
            ba[5] ^= 1
            data = bytes(ba)
            combo_total += combo.write(0, data).total_flips
            ble_total += ble.write(0, data).total_flips
        assert combo_total < ble_total * 0.5

    def test_metadata_matches_deuce(self, pads):
        assert BleDeuce(pads).metadata_bits_per_line == 32


class TestValidation:
    def test_word_must_divide_block(self, pads):
        with pytest.raises(ValueError):
            BleDeuce(pads, word_bytes=3)

    def test_line_must_be_whole_blocks(self, pads):
        with pytest.raises(ValueError):
            BleDeuce(pads, line_bytes=24)
