"""i-NVMM partial-encryption tests (section 7.2)."""

from __future__ import annotations

import pytest

from repro.schemes.invmm import INvmm
from tests.conftest import mutate_words, random_line


@pytest.fixture
def scheme(pads):
    return INvmm(pads, idle_threshold=8, sweep_lines_per_write=4)


class TestRoundTrip:
    def test_read_after_write(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        assert scheme.read(0) == data  # installed encrypted
        for _ in range(10):
            data = mutate_words(rng, data, 2)
            scheme.write(0, data)
            assert scheme.read(0) == data

    def test_read_after_cold_sweep(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        scheme.install(1, random_line(rng))
        scheme.write(0, data)
        # Make line 0 cold by writing line 1 repeatedly.
        other = scheme.read(1)
        for _ in range(30):
            other = mutate_words(rng, other, 1)
            scheme.write(1, other)
        assert scheme.is_encrypted(0)
        assert scheme.read(0) == data  # still decrypts correctly


class TestHotColdLifecycle:
    def test_written_line_becomes_plaintext(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        assert scheme.is_encrypted(0)
        scheme.write(0, data)
        assert not scheme.is_encrypted(0)
        assert 0 in scheme.plaintext_lines()

    def test_cold_line_reencrypted_by_sweep(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        scheme.install(1, random_line(rng))
        scheme.write(0, data)
        other = scheme.read(1)
        for _ in range(30):
            other = mutate_words(rng, other, 1)
            scheme.write(1, other)
        assert scheme.is_encrypted(0)
        assert scheme.sweep_encryptions >= 1
        assert scheme.sweep_flips > 0

    def test_hot_line_not_swept(self, scheme, rng):
        data = random_line(rng)
        scheme.install(0, data)
        for _ in range(30):
            data = mutate_words(rng, data, 1)
            scheme.write(0, data)
        assert not scheme.is_encrypted(0)

    def test_power_down_encrypts_everything(self, scheme, rng):
        contents = {}
        for addr in range(4):
            contents[addr] = random_line(rng)
            scheme.install(addr, contents[addr])
            scheme.write(addr, contents[addr])
        assert scheme.plaintext_lines()
        flips = scheme.power_down()
        assert flips > 0
        assert not scheme.plaintext_lines()
        for addr, data in contents.items():
            assert scheme.read(addr) == data


class TestWriteEfficiencyAndItsPrice:
    def test_hot_writes_avoid_the_avalanche(self, scheme, rng):
        """Steady-state hot writes cost only the true bit difference."""
        data = random_line(rng)
        scheme.install(0, data)
        scheme.write(0, data)  # decrypt into plaintext residence
        flips = []
        for _ in range(20):
            new = mutate_words(rng, data, 1)
            out = scheme.write(0, new)
            flips.append(out.data_flips)
            data = new
        assert sum(flips) / len(flips) < 20  # far below 256 (50%)

    def test_stolen_dimm_sees_hot_plaintext(self, scheme, rng):
        """The paper's criticism, part 1: sudden theft exposes hot data."""
        secret = (b"PIN:4242" * 8)[:64]
        scheme.install(0, secret)
        scheme.write(0, secret)  # hot
        assert scheme.snapshot()[0] == secret  # plaintext in the array!

    def test_graceful_power_down_hides_data(self, scheme, rng):
        secret = (b"PIN:4242" * 8)[:64]
        scheme.install(0, secret)
        scheme.write(0, secret)
        scheme.power_down()
        assert scheme.snapshot()[0] != secret

    def test_bus_traffic_is_plaintext_for_hot_lines(self, scheme, rng):
        """Part 2: the writeback itself is unencrypted (bus snooping)."""
        data = random_line(rng)
        scheme.install(0, data)
        scheme.write(0, data)
        # The stored image after a hot write IS the plaintext; a snooper on
        # the bus sees exactly this.
        assert scheme.stored(0).data == data


class TestValidation:
    def test_bad_threshold(self, pads):
        with pytest.raises(ValueError):
            INvmm(pads, idle_threshold=0)

    def test_bad_sweep_rate(self, pads):
        with pytest.raises(ValueError):
            INvmm(pads, sweep_lines_per_write=-1)

    def test_metadata_is_one_bit(self, pads):
        assert INvmm(pads).metadata_bits_per_line == 1
