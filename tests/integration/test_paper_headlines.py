"""Calibration guards: the paper's headline numbers, with tolerances.

These tests pin the suite-average results to the paper's reported values so
a regression in the schemes, the generator, or the profiles shows up as a
failing number, not a silently different figure.  Trace lengths are modest;
tolerances account for the sampling noise that leaves.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import run
from repro.workloads.profiles import WORKLOAD_NAMES

N = 2_000


def suite_average(scheme: str, **kw) -> float:
    total = 0.0
    for workload in WORKLOAD_NAMES:
        total += run(SimConfig(workload, scheme, n_writes=N, **kw)).avg_flips_pct
    return total / len(WORKLOAD_NAMES)


@pytest.mark.slow
class TestHeadlineAverages:
    def test_unencrypted_dcw_near_12pct(self):
        assert suite_average("noencr-dcw") == pytest.approx(12.2, abs=2.0)

    def test_unencrypted_fnw_near_10pct(self):
        assert suite_average("noencr-fnw") == pytest.approx(10.5, abs=2.0)

    def test_encrypted_dcw_is_half_the_bits(self):
        assert suite_average("encr-dcw") == pytest.approx(50.0, abs=0.5)

    def test_encrypted_fnw_near_43pct(self):
        assert suite_average("encr-fnw") == pytest.approx(42.7, abs=0.7)

    def test_deuce_near_24pct(self):
        assert suite_average("deuce") == pytest.approx(23.7, abs=2.5)

    def test_dyndeuce_beats_deuce(self):
        assert suite_average("dyndeuce") < suite_average("deuce")

    def test_ble_near_33pct(self):
        assert suite_average("ble") == pytest.approx(33.0, abs=3.5)


@pytest.mark.slow
class TestPerWorkloadShape:
    def test_dense_workloads_defeat_deuce(self):
        """Gems and soplex exceed FNW's 43% under DEUCE (section 4.6)."""
        for workload in ("Gems", "soplex"):
            r = run(SimConfig(workload, "deuce", n_writes=N))
            assert r.avg_flips_pct > 43.0

    def test_sparse_workloads_shine_under_deuce(self):
        for workload in ("libq", "mcf", "omnetpp"):
            r = run(SimConfig(workload, "deuce", n_writes=N))
            assert r.avg_flips_pct < 15.0

    def test_dyndeuce_rescues_dense_workloads(self):
        """DynDEUCE caps Gems/soplex near FNW's 43% (Figure 10)."""
        for workload in ("Gems", "soplex"):
            dyn = run(SimConfig(workload, "dyndeuce", n_writes=N))
            deuce = run(SimConfig(workload, "deuce", n_writes=N))
            assert dyn.avg_flips_pct < deuce.avg_flips_pct
            assert dyn.avg_flips_pct < 45.0

    def test_word_size_sweep_shape(self):
        """Figure 8: finer tracking flips fewer bits."""
        averages = {
            wb: suite_average("deuce", word_bytes=wb) for wb in (1, 2, 8)
        }
        assert averages[1] < averages[2] < averages[8]
        assert averages[8] == pytest.approx(32.2, abs=3.5)
