"""SIGKILL a checkpointing run/sweep mid-flight; ``--resume`` must finish it.

The hard variant of the resume guarantee: the process is killed with
``SIGKILL`` (no cleanup, no atexit, mid-write), so only the crash-safe
on-disk checkpoint survives.  Resuming must complete the run and match a
clean, uninterrupted run on every exact aggregate.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Session
from repro.obs.ledger import RunLedger
from repro.sim.config import SimConfig

WRITES = 400_000
CKPT_EVERY = 20_000


def _cli(args: list[str], tmp_path: Path, **popen_kwargs) -> subprocess.Popen:
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=tmp_path,
        text=True,
        **popen_kwargs,
    )


def _exact_summary(manifest) -> dict:
    """The integer-exact slice of a manifest summary (drops wall clock)."""
    return {
        k: v
        for k, v in manifest.summary.items()
        if not k.startswith("wall")
    }


class TestKillResume:
    def test_sigkilled_run_resumes_bit_identically(self, tmp_path):
        runs_dir = tmp_path / "runs"
        proc = _cli(
            [
                "run", "--workload", "libq", "--scheme", "deuce",
                "--writes", str(WRITES),
                "--checkpoint-every", str(CKPT_EVERY),
                "--runs-dir", str(runs_dir),
            ],
            tmp_path,
        )
        try:
            # Wait for the first durable snapshot, then kill -9 mid-run.
            deadline = time.monotonic() + 120
            manifest_path = None
            while time.monotonic() < deadline:
                found = list(runs_dir.glob("*/checkpoint/checkpoint.json"))
                if found:
                    manifest_path = found[0]
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "run finished before a checkpoint appeared: "
                        + proc.stdout.read()
                    )
                time.sleep(0.01)
            assert manifest_path is not None, "no checkpoint within 120s"
            proc.send_signal(signal.SIGKILL)
            proc.communicate(timeout=30)
            assert proc.returncode == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

        run_id = manifest_path.parent.parent.name
        ledger = RunLedger(runs_dir)
        assert ledger.list() == []  # killed before any manifest landed

        # The kill landed mid-run: the checkpoint is at an intermediate
        # write index (crash-safe commit means it loads cleanly).
        manifest = json.loads(manifest_path.read_text())
        assert 0 < manifest["write_index"] < WRITES

        resume = _cli(
            ["run", "--resume", run_id, "--runs-dir", str(runs_dir)],
            tmp_path,
        )
        out, _ = resume.communicate(timeout=300)
        assert resume.returncode == 0, out

        # The resumed run recorded its manifest under the original id.
        resumed = ledger.get(run_id)
        clean = Session(ledger=tmp_path / "clean-runs").run(
            SimConfig("libq", "deuce", n_writes=WRITES, seed=0)
        )
        assert _exact_summary(resumed) == _exact_summary(clean.manifest)

    def test_sigkilled_sweep_resumes_missing_cells_only(self, tmp_path):
        runs_dir = tmp_path / "runs"
        sweep_id = "kill-drill"
        argv = [
            "sweep", "--workloads", "libq", "mcf", "--schemes", "deuce",
            "noencr-dcw", "--writes", "120000", "--workers", "2",
            "--sweep-id", sweep_id, "--runs-dir", str(runs_dir),
            "--no-progress",
        ]
        cells_path = runs_dir / "sweeps" / sweep_id / "cells.jsonl"
        # Own process group: SIGKILL must take out the pool workers too,
        # or the orphans would keep appending cells after the "crash".
        proc = _cli(argv, tmp_path, start_new_session=True)
        try:
            # Kill -9 the whole sweep as soon as one cell is durable.
            deadline = time.monotonic() + 180
            while time.monotonic() < deadline:
                if cells_path.is_file() and cells_path.read_text().strip():
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "sweep ended before any cell completed: "
                        + proc.stdout.read()
                    )
                time.sleep(0.01)
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.wait(timeout=10)
            proc.stdout.close()

        done_before = len(cells_path.read_text().splitlines())
        assert 1 <= done_before < 4

        out_path = tmp_path / "resumed.json"
        resume = _cli(
            argv[:-1] + ["--resume", sweep_id, "--out", str(out_path)],
            tmp_path,
        )
        out, _ = resume.communicate(timeout=600)
        assert resume.returncode == 0, out

        payload = json.loads(out_path.read_text())
        assert payload["sweep_id"] == sweep_id
        assert len(payload["results"]) == 4

        # Every cell — restored and re-run alike — matches a clean run.
        session = Session(ledger=tmp_path / "clean-runs")
        for cell in payload["results"]:
            clean = session.run(
                SimConfig(
                    cell["workload"], cell["scheme"],
                    n_writes=cell["n_writes"], seed=0,
                )
            )
            assert cell["total_flips"] == clean.total_flips
            assert cell["slot_histogram"] == {
                str(k): v for k, v in sorted(clean.slot_histogram.items())
            }
