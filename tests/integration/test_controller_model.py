"""Model-based property test: the controller against a plain dict.

Hypothesis drives random install/write/read sequences through a
:class:`SecureMemoryController` (with integrity and wear leveling enabled)
and a reference dict; the two must never disagree.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memory.controller import SecureMemoryController

KEY = b"model-test-key16"

operations = st.lists(
    st.tuples(
        st.sampled_from(["write", "read"]),
        st.integers(min_value=0, max_value=7),  # line slot
        st.binary(min_size=64, max_size=64),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=operations, scheme=st.sampled_from(["deuce", "dyndeuce", "encr-fnw"]))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_controller_matches_reference_dict(ops, scheme):
    controller = SecureMemoryController(
        scheme=scheme,
        key=KEY,
        wear_leveling="hwl",
        region_lines=64,
        gap_write_interval=1,
        integrity=True,
        epoch_interval=4,
    )
    reference: dict[int, bytes] = {}
    for op, slot, data in ops:
        address = slot * 64
        if op == "write":
            controller.write(address, data)
            reference[address] = data
        elif address in reference:
            assert controller.read(address) == reference[address]
    for address, data in reference.items():
        assert controller.read(address) == data
