"""End-to-end integration: full pipeline and cross-scheme invariants."""

from __future__ import annotations

import pytest

from repro.crypto.pads import AesPadSource, Blake2PadSource
from repro.memory.controller import SecureMemoryController
from repro.schemes import SCHEME_NAMES, make_scheme
from repro.sim.config import SimConfig
from repro.sim.runner import run
from repro.workloads.trace import generate_trace

N = 800


@pytest.fixture(scope="module")
def trace():
    return generate_trace("mcf", N, seed=0)


class TestCrossSchemeInvariants:
    """Run every scheme on the *same* trace and check the paper's ordering."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            scheme: run(SimConfig("mcf", scheme, n_writes=N))
            for scheme in SCHEME_NAMES
        }

    def test_encryption_multiplies_flips(self, results):
        assert (
            results["encr-dcw"].total_flips
            > 3 * results["noencr-dcw"].total_flips
        )

    def test_fnw_reduces_encrypted_flips(self, results):
        assert results["encr-fnw"].total_flips < results["encr-dcw"].total_flips

    def test_deuce_beats_fnw_on_sparse_workload(self, results):
        assert results["deuce"].total_flips < results["encr-fnw"].total_flips

    def test_deuce_fnw_beats_plain_deuce(self, results):
        assert results["deuce+fnw"].total_flips <= results["deuce"].total_flips

    def test_ble_between_deuce_and_full_encryption(self, results):
        assert (
            results["deuce"].total_flips
            < results["ble"].total_flips
            < results["encr-dcw"].total_flips
        )

    def test_ble_deuce_beats_ble(self, results):
        assert results["ble+deuce"].total_flips < results["ble"].total_flips

    def test_nothing_beats_no_encryption(self, results):
        floor = results["noencr-fnw"].total_flips
        for scheme in SCHEME_NAMES:
            if scheme == "noencr-fnw":
                continue
            assert results[scheme].total_flips >= floor

    def test_slots_track_flips(self, results):
        assert (
            results["deuce"].avg_slots_per_write
            < results["encr-dcw"].avg_slots_per_write
        )


class TestFunctionalFidelityOnTraces:
    """Every scheme must reproduce the generator's ground truth exactly."""

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_scheme_tracks_trace_ground_truth(self, scheme_name, trace):
        scheme = make_scheme(
            scheme_name, Blake2PadSource(b"integration-k16"), epoch_interval=8
        )
        for addr in trace.addresses():
            scheme.install(addr, trace.initial[addr])
        latest = dict(trace.initial)
        for rec in trace.records[:200]:
            scheme.write(rec.address, rec.data)
            latest[rec.address] = rec.data
            assert scheme.read(rec.address) == rec.data
        # Spot-check a few untouched and touched lines at the end.
        for addr in list(latest)[:20]:
            assert scheme.read(addr) == latest[addr]


class TestPadSourceEquivalence:
    """AES and BLAKE2 pads must produce statistically identical flip rates."""

    def test_encrypted_flip_rate_matches_across_sources(self, trace):
        totals = {}
        for name, pads in (
            ("aes", AesPadSource(b"equivalence-k16!")),
            ("blake2", Blake2PadSource(b"equivalence-k16!")),
        ):
            scheme = make_scheme("encr-dcw", pads)
            for addr in trace.addresses():
                scheme.install(addr, trace.initial[addr])
            total = 0
            for rec in trace.records[:150]:
                total += scheme.write(rec.address, rec.data).total_flips
            totals[name] = total / 150 / 512
        assert totals["aes"] == pytest.approx(0.5, abs=0.02)
        assert totals["blake2"] == pytest.approx(0.5, abs=0.02)


class TestControllerPipeline:
    def test_controller_replays_trace(self, trace):
        mc = SecureMemoryController(
            scheme="deuce",
            key=b"pipeline-key-016",
            wear_leveling="hwl",
            region_lines=64,
            gap_write_interval=1,
        )
        for addr in trace.addresses():
            mc.write(addr, trace.initial[addr])
        for rec in trace.records[:300]:
            mc.write(rec.address, rec.data)
        assert mc.stats.writes == 300
        assert mc.stats.installs == len(trace.initial)
        report = mc.lifetime()
        assert 0.5 < report.normalized
        summary = mc.wear_summary()
        assert summary.total_writes == 300
