"""Write pausing [6] and power-token [22] extension tests."""

from __future__ import annotations

import pytest

from repro.perf.system import CoreConfig, simulate_execution
from repro.perf.timing import BankModel, MemorySystem
from repro.workloads.profiles import get_profile

from collections import Counter


class TestWritePausing:
    def test_read_resumes_at_slot_boundary(self):
        bank = BankModel(write_pausing=True)
        bank.write(0.0, 4)  # occupies 0..600
        bank.read(10.0)  # forces the write to start (idle drain), then...
        # The read arrived mid-slot-1 (slot boundary at 150): it waits until
        # 150, runs 75ns -> latency 150 - 10 + 75 = 215 instead of 665.
        assert bank.stats.total_read_latency_ns == pytest.approx(215.0)
        assert bank.stats.paused_writes == 1

    def test_paused_write_finishes_later(self):
        bank = BankModel(write_pausing=True)
        bank.write(0.0, 4)
        bank.read(10.0)
        # Write originally ended at 600; the 75 ns read pushed it to 675.
        assert bank.free_at == pytest.approx(675.0)

    def test_pausing_cuts_read_latency_vs_blocking(self):
        blocking = BankModel(write_pausing=False)
        pausing = BankModel(write_pausing=True)
        for bank in (blocking, pausing):
            bank.write(0.0, 4)
            bank.read(10.0)
        assert (
            pausing.stats.total_read_latency_ns
            < 0.5 * blocking.stats.total_read_latency_ns
        )

    def test_no_pause_when_bank_idle(self):
        bank = BankModel(write_pausing=True)
        assert bank.read(0.0) == 75.0
        assert bank.stats.paused_writes == 0

    def test_pausing_improves_system_performance(self):
        profile = get_profile("mcf")
        hist = Counter({4: 1})
        base = simulate_execution(
            profile, hist, instructions=150_000, seed=0,
            core=CoreConfig(write_pausing=False),
        )
        paused = simulate_execution(
            profile, hist, instructions=150_000, seed=0,
            core=CoreConfig(write_pausing=True),
        )
        assert paused.exec_time_ns < base.exec_time_ns


class TestPowerTokens:
    def test_unconstrained_by_default(self):
        mem = MemorySystem(n_banks=4)
        for addr in range(4):
            mem.write(0.0, addr, 4)
        assert mem.power_delays == 0

    def test_budget_delays_concurrent_writes(self):
        mem = MemorySystem(n_banks=4, max_concurrent_write_slots=4)
        mem.write(0.0, 0, 4)  # uses the whole budget until 600
        mem.write(1.0, 1, 4)  # must wait for the first to finish
        assert mem.power_delays == 1
        # Bank 1's write starts at ~600: a read there at t=601 queues
        # behind it.
        latency = mem.read(601.0, 1)
        assert latency > 500.0

    def test_budget_allows_parallel_small_writes(self):
        mem = MemorySystem(n_banks=4, max_concurrent_write_slots=8)
        mem.write(0.0, 0, 4)
        mem.write(1.0, 1, 4)
        assert mem.power_delays == 0

    def test_expired_writes_release_tokens(self):
        mem = MemorySystem(n_banks=4, max_concurrent_write_slots=4)
        mem.write(0.0, 0, 4)  # done at 600
        mem.write(700.0, 1, 4)  # budget free again
        assert mem.power_delays == 0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(max_concurrent_write_slots=0)

    def test_tight_budget_hurts_performance(self):
        profile = get_profile("libq")
        hist = Counter({4: 1})
        free = simulate_execution(
            profile, hist, instructions=150_000, seed=0,
            core=CoreConfig(max_concurrent_write_slots=None),
        )
        tight = simulate_execution(
            profile, hist, instructions=150_000, seed=0,
            core=CoreConfig(max_concurrent_write_slots=4),
        )
        assert tight.exec_time_ns >= free.exec_time_ns
