"""System performance model tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.perf.system import CoreConfig, simulate_execution
from repro.workloads.profiles import get_profile


@pytest.fixture
def profile():
    return get_profile("mcf")


def exec_with(profile, slots, **kw):
    return simulate_execution(
        profile, Counter({slots: 1}), instructions=200_000, **kw
    )


class TestDeterminism:
    def test_same_seed_same_time(self, profile):
        a = exec_with(profile, 4, seed=3)
        b = exec_with(profile, 4, seed=3)
        assert a.exec_time_ns == b.exec_time_ns

    def test_different_seed_differs(self, profile):
        a = exec_with(profile, 4, seed=3)
        b = exec_with(profile, 4, seed=4)
        assert a.exec_time_ns != b.exec_time_ns


class TestWriteCostEffect:
    def test_fewer_slots_run_faster(self, profile):
        slow = exec_with(profile, 4, seed=0)
        fast = exec_with(profile, 1, seed=0)
        assert fast.exec_time_ns < slow.exec_time_ns
        assert fast.speedup_over(slow) > 1.0

    def test_speedup_of_identical_runs_is_one(self, profile):
        a = exec_with(profile, 4, seed=0)
        b = exec_with(profile, 4, seed=0)
        assert a.speedup_over(b) == pytest.approx(1.0)

    def test_mixed_slot_histogram_is_between_extremes(self, profile):
        mixed = simulate_execution(
            profile,
            Counter({1: 1, 4: 1}),
            instructions=200_000,
            seed=0,
        )
        fast = exec_with(profile, 1, seed=0)
        slow = exec_with(profile, 4, seed=0)
        assert fast.exec_time_ns <= mixed.exec_time_ns <= slow.exec_time_ns


class TestRequestAccounting:
    def test_request_counts_track_rates(self, profile):
        result = exec_with(profile, 4, seed=0)
        expected_reads = profile.read_mpki / 1000 * result.instructions
        assert result.reads == pytest.approx(expected_reads, rel=0.15)
        expected_writes = profile.wbpki / 1000 * result.instructions
        assert result.writes == pytest.approx(expected_writes, rel=0.15)

    def test_read_latency_includes_queueing(self, profile):
        result = exec_with(profile, 4, seed=0)
        assert result.avg_read_latency_ns >= 75.0

    def test_low_traffic_workload_sees_near_array_latency(self):
        astar = get_profile("astar")  # lowest WBPKI of the suite
        result = exec_with(astar, 1, seed=0)
        assert result.avg_read_latency_ns < 150.0


class TestConfig:
    def test_empty_histogram_rejected(self, profile):
        with pytest.raises(ValueError, match="empty"):
            simulate_execution(profile, Counter(), instructions=1000)

    def test_custom_core(self, profile):
        fast_core = CoreConfig(cpi_base=0.1)
        slow_core = CoreConfig(cpi_base=1.0)
        a = exec_with(profile, 1, core=fast_core, seed=0)
        b = exec_with(profile, 1, core=slow_core, seed=0)
        assert a.exec_time_ns < b.exec_time_ns

    def test_ipc_positive(self, profile):
        assert exec_with(profile, 4, seed=0).ipc > 0
