"""Analytic queueing model tests, including cross-validation against the
event-driven bank simulation."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.perf.queueing import (
    analytic_read_latency,
    per_bank_rates,
    write_service_moments,
)
from repro.perf.timing import BankModel


class TestServiceMoments:
    def test_single_slot_value(self):
        mean, second = write_service_moments(Counter({4: 10}))
        assert mean == pytest.approx(600.0)
        assert second == pytest.approx(600.0**2)

    def test_mixture(self):
        mean, _ = write_service_moments(Counter({1: 1, 3: 1}))
        assert mean == pytest.approx((150 + 450) / 2)

    def test_second_moment_exceeds_mean_squared(self):
        mean, second = write_service_moments(Counter({1: 1, 4: 1}))
        assert second > mean * mean

    def test_empty_histogram(self):
        with pytest.raises(ValueError):
            write_service_moments(Counter())


class TestAnalyticForm:
    def test_zero_traffic_gives_array_latency(self):
        est = analytic_read_latency(0.0, 0.0, Counter({4: 1}))
        assert est.read_latency_ns == pytest.approx(75.0)
        assert est.stable

    def test_latency_grows_with_write_rate(self):
        low = analytic_read_latency(1e-4, 1e-4, Counter({4: 1}))
        high = analytic_read_latency(1e-4, 1e-3, Counter({4: 1}))
        assert high.read_latency_ns > low.read_latency_ns

    def test_shorter_writes_reduce_latency(self):
        slow = analytic_read_latency(1e-4, 5e-4, Counter({4: 1}))
        fast = analytic_read_latency(1e-4, 5e-4, Counter({2: 1}))
        assert fast.read_latency_ns < slow.read_latency_ns

    def test_saturated_reads_unstable(self):
        est = analytic_read_latency(1.0, 0.0, Counter({1: 1}))
        assert est.read_wait_ns == float("inf")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            analytic_read_latency(-1.0, 0.0, Counter({1: 1}))


class TestCrossValidation:
    @pytest.mark.parametrize(
        "read_rate,write_rate,slots",
        [
            (2e-4, 1e-4, 4),
            (5e-4, 2e-4, 2),
            (1e-3, 1e-4, 1),
        ],
    )
    def test_simulation_matches_mg1_at_moderate_load(
        self, read_rate, write_rate, slots
    ):
        """Open-loop Poisson traffic into one bank: the event model's mean
        read latency should track the M/G/1 prediction."""
        rng = random.Random(42)
        bank = BankModel(write_queue_depth=10_000)  # no forced stalls
        now = 0.0
        total_latency = 0.0
        reads = 0
        horizon = 3_000_000.0  # ns
        while now < horizon:
            gap_r = rng.expovariate(read_rate)
            gap_w = rng.expovariate(write_rate)
            if gap_r < gap_w:
                now += gap_r
                total_latency += bank.read(now)
                reads += 1
            else:
                now += gap_w
                bank.write(now, slots)
        simulated = total_latency / reads
        predicted = analytic_read_latency(
            read_rate, write_rate, Counter({slots: 1})
        ).read_latency_ns
        assert simulated == pytest.approx(predicted, rel=0.35)


class TestPerBankRates:
    def test_rates_scale_with_ipc(self):
        fast = per_bank_rates(10.0, 5.0, 4, cpi=0.3, freq_ghz=4.0)
        slow = per_bank_rates(10.0, 5.0, 4, cpi=3.0, freq_ghz=4.0)
        assert fast[0] == pytest.approx(10 * slow[0])

    def test_rates_split_across_banks(self):
        one = per_bank_rates(10.0, 5.0, 1, cpi=1.0, freq_ghz=4.0)
        four = per_bank_rates(10.0, 5.0, 4, cpi=1.0, freq_ghz=4.0)
        assert one[0] == pytest.approx(4 * four[0])

    def test_bank_count_validation(self):
        with pytest.raises(ValueError):
            per_bank_rates(1.0, 1.0, 0, cpi=1.0, freq_ghz=4.0)
