"""Bank timing model tests."""

from __future__ import annotations

import pytest

from repro.perf.timing import BankModel, MemorySystem


class TestReads:
    def test_idle_bank_read_latency_is_array_latency(self):
        bank = BankModel()
        assert bank.read(now=0.0) == 75.0

    def test_back_to_back_reads_queue(self):
        bank = BankModel()
        bank.read(now=0.0)
        assert bank.read(now=10.0) == pytest.approx(75.0 - 10.0 + 75.0)

    def test_spaced_reads_do_not_queue(self):
        bank = BankModel()
        bank.read(now=0.0)
        assert bank.read(now=100.0) == 75.0


class TestWrites:
    def test_write_occupies_slots_times_latency(self):
        bank = BankModel()
        bank.write(now=0.0, slots=4)
        # A read arriving immediately waits for the write to drain first
        # (it started when the bank was idle).
        latency = bank.read(now=1.0)
        assert latency == pytest.approx(600.0 - 1.0 + 75.0)

    def test_short_write_blocks_less(self):
        fast = BankModel()
        slow = BankModel()
        fast.write(0.0, slots=2)
        slow.write(0.0, slots=4)
        assert fast.read(1.0) < slow.read(1.0)

    def test_queued_writes_do_not_delay_priority_read(self):
        bank = BankModel(write_queue_depth=8)
        bank.write(0.0, 4)  # starts immediately (idle drain on next op)
        # Queue three more writes; they must NOT start before the read.
        t = 700.0  # first write done at 600
        bank.write(601.0, 4)
        bank.write(601.5, 4)
        latency = bank.read(602.0)
        # Bank is draining the second write (started at 601); read waits
        # only for that one, not the third.
        assert latency <= (601 + 600 - 602) + 75 + 1e-9

    def test_write_queue_overflow_stalls(self):
        bank = BankModel(write_queue_depth=2)
        assert bank.write(0.0, 4) == 0.0  # starts in the bank immediately
        assert bank.write(0.1, 4) == 0.0  # queued (slot 1 of 2)
        assert bank.write(0.2, 4) == 0.0  # queued (slot 2 of 2)
        # Fourth write exceeds the queue: the oldest queued write must
        # drain behind the in-flight one before the core can continue.
        stall = bank.write(0.3, 4)
        assert stall > 0.0
        assert bank.stats.forced_write_drains == 1

    def test_idle_bank_drains_writes_before_later_requests(self):
        bank = BankModel()
        bank.write(0.0, 1)  # 150 ns
        # Long idle gap: write finished long ago.
        assert bank.read(10_000.0) == 75.0
        assert bank.queued_writes == 0

    def test_zero_slot_write_counts_as_one(self):
        bank = BankModel()
        bank.write(0.0, 0)
        assert bank.stats.total_write_slots == 1


class TestStats:
    def test_read_statistics(self):
        bank = BankModel()
        bank.read(0.0)
        bank.read(0.0)
        assert bank.stats.reads == 2
        assert bank.stats.avg_read_latency_ns == pytest.approx((75 + 150) / 2)

    def test_busy_time_accumulates(self):
        bank = BankModel()
        bank.read(0.0)
        bank.write(100.0, 2)
        bank.read(10_000.0)
        assert bank.stats.busy_ns == pytest.approx(75 + 300 + 75)


class TestMemorySystem:
    def test_requests_spread_across_banks(self):
        mem = MemorySystem(n_banks=4)
        for addr in range(8):
            mem.read(0.0, addr)
        stats = mem.stats()
        assert stats.reads == 8
        assert all(b.reads == 2 for b in stats.per_bank)

    def test_same_address_same_bank(self):
        mem = MemorySystem(n_banks=4)
        assert mem.bank_for(5) is mem.bank_for(5)
        assert mem.bank_for(1) is not mem.bank_for(2)

    def test_aggregate_slot_stats(self):
        mem = MemorySystem(n_banks=2)
        mem.write(0.0, 0, 4)
        mem.write(0.0, 1, 2)
        assert mem.stats().avg_slots_per_write == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySystem(n_banks=0)
        with pytest.raises(ValueError):
            BankModel(write_queue_depth=0)
