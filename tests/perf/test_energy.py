"""Energy/power/EDP model tests."""

from __future__ import annotations

import pytest

from repro.perf.energy import EnergyConfig, energy_report


def report(flips=1000, reads=100, time_ns=1e6, **kw):
    return energy_report(
        "wl", "scheme", total_flips=flips, n_reads=reads, exec_time_ns=time_ns, **kw
    )


class TestComponents:
    def test_write_energy_scales_with_flips(self):
        a = report(flips=1000)
        b = report(flips=2000)
        assert b.write_energy_j == pytest.approx(2 * a.write_energy_j)

    def test_read_energy_scales_with_reads(self):
        a = report(reads=100)
        b = report(reads=300)
        assert b.read_energy_j == pytest.approx(3 * a.read_energy_j)

    def test_static_energy_scales_with_time(self):
        a = report(time_ns=1e6)
        b = report(time_ns=2e6)
        assert b.static_energy_j == pytest.approx(2 * a.static_energy_j)

    def test_total_is_sum(self):
        r = report()
        assert r.energy_j == pytest.approx(
            r.write_energy_j + r.read_energy_j + r.static_energy_j
        )


class TestDerivedMetrics:
    def test_power_is_energy_over_time(self):
        r = report(time_ns=2e6)
        assert r.power_w == pytest.approx(r.energy_j / 2e-3)

    def test_edp(self):
        r = report(time_ns=2e6)
        assert r.edp == pytest.approx(r.energy_j * 2e-3)

    def test_fewer_flips_and_shorter_time_reduce_edp_superlinearly(self):
        base = report(flips=25_600, time_ns=1e6)
        better = report(flips=12_800, time_ns=0.8e6)
        rel = better.relative_to(base)
        assert rel["energy"] < 1.0
        assert rel["edp"] < rel["energy"]  # delay reduction compounds
        assert rel["speedup"] == pytest.approx(1.25)

    def test_power_reduction_less_than_energy_when_faster(self):
        """The paper's asymmetry: -43% energy but only -28% power."""
        base = report(flips=25_600, time_ns=1e6)
        deuce = report(flips=12_500, time_ns=0.79e6)
        rel = deuce.relative_to(base)
        assert rel["power"] > rel["energy"]


class TestConfig:
    def test_custom_coefficients(self):
        cheap = report(config=EnergyConfig(e_write_bit_j=1e-12))
        costly = report(config=EnergyConfig(e_write_bit_j=1e-10))
        assert costly.write_energy_j > cheap.write_energy_j

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            report(time_ns=0)


class TestAsymmetricEnergy:
    def test_asymmetric_energies_used_when_configured(self):
        config = EnergyConfig(e_set_bit_j=10e-12, e_reset_bit_j=40e-12)
        r = energy_report(
            "wl", "s", total_flips=100, n_reads=0, exec_time_ns=1e6,
            config=config, set_flips=60, reset_flips=40,
        )
        assert r.write_energy_j == pytest.approx(60 * 10e-12 + 40 * 40e-12)

    def test_falls_back_to_symmetric_without_direction_counts(self):
        config = EnergyConfig(e_set_bit_j=10e-12, e_reset_bit_j=40e-12)
        r = energy_report(
            "wl", "s", total_flips=100, n_reads=0, exec_time_ns=1e6,
            config=config,
        )
        assert r.write_energy_j == pytest.approx(100 * config.e_write_bit_j)

    def test_symmetric_config_ignores_direction_counts(self):
        r = energy_report(
            "wl", "s", total_flips=100, n_reads=0, exec_time_ns=1e6,
            set_flips=60, reset_flips=40,
        )
        assert r.write_energy_j == pytest.approx(100 * 25e-12)
