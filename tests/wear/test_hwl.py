"""Horizontal Wear Leveling tests."""

from __future__ import annotations

import pytest

from repro.wear.hwl import HorizontalWearLeveler, NoWearLeveler
from repro.wear.startgap import StartGap


class TestRotationAmount:
    def test_rotation_equals_start_mod_bits(self):
        sg = StartGap(4, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, bits_per_line=10)
        assert hwl.rotation(0) == 0
        # Advance through 3 full sweeps: start == 3.
        for _ in range(15):
            sg.on_write()
        assert sg.start == 3
        assert hwl.rotation(0) == 3

    def test_rotation_wraps_at_bits_per_line(self):
        sg = StartGap(2, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, bits_per_line=5)
        for _ in range(3 * 7):  # 7 sweeps of 3 moves
            sg.on_write()
        assert sg.start == 7
        assert hwl.rotation(0) == 7 % 5

    def test_crossed_line_rotates_early(self):
        """Section 5.3: lines the gap already passed use Start+1."""
        sg = StartGap(8, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, bits_per_line=544)
        sg.on_write()  # gap passes the line at slot 7
        assert hwl.rotation(7) == 1
        assert hwl.rotation(0) == 0

    def test_rotation_in_range(self):
        sg = StartGap(4, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, bits_per_line=17)
        for _ in range(200):
            sg.on_write()
            for line in range(4):
                assert 0 <= hwl.rotation(line) < 17


class TestHashedVariant:
    def test_deterministic(self):
        sg = StartGap(4, gap_write_interval=1)
        h1 = HorizontalWearLeveler(sg, 544, hashed=True, key=b"k1")
        assert h1.rotation(2) == h1.rotation(2)

    def test_per_line_rotations_differ(self):
        """Footnote 2: each line gets its own rotation amount."""
        sg = StartGap(64, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, 544, hashed=True)
        rotations = {hwl.rotation(line) for line in range(64)}
        assert len(rotations) > 32  # plain HWL would give exactly 1-2 values

    def test_key_changes_rotation(self):
        sg = StartGap(4, gap_write_interval=1)
        h1 = HorizontalWearLeveler(sg, 544, hashed=True, key=b"k1")
        h2 = HorizontalWearLeveler(sg, 544, hashed=True, key=b"k2")
        assert any(h1.rotation(i) != h2.rotation(i) for i in range(4))

    def test_rotation_changes_with_start(self):
        sg = StartGap(2, gap_write_interval=1)
        hwl = HorizontalWearLeveler(sg, 544, hashed=True)
        before = hwl.rotation(0)
        for _ in range(3 * 5):
            sg.on_write()
        assert hwl.rotation(0) != before  # overwhelmingly likely


class TestNoWearLeveler:
    def test_always_zero(self):
        leveler = NoWearLeveler()
        assert leveler.rotation(0) == 0
        assert leveler.rotation(12345) == 0


class TestValidation:
    def test_bits_per_line_positive(self):
        with pytest.raises(ValueError):
            HorizontalWearLeveler(StartGap(4), bits_per_line=0)
