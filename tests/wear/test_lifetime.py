"""Lifetime-model tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wear.lifetime import (
    ENCRYPTED_FLIP_PROB,
    absolute_lifetime_years,
    lifetime_report,
)


class TestLifetimeReport:
    def test_uniform_half_rate_is_baseline(self):
        # Every position written 50 times over 100 writes: the encrypted
        # baseline itself -> normalized lifetime 1.0.
        writes = np.full(512, 50, dtype=np.int64)
        report = lifetime_report(writes, total_writes=100)
        assert report.normalized == pytest.approx(1.0)
        assert report.perfect_leveling == pytest.approx(1.0)
        assert report.leveling_efficiency == pytest.approx(1.0)

    def test_halved_uniform_rate_doubles_lifetime(self):
        writes = np.full(512, 25, dtype=np.int64)
        report = lifetime_report(writes, total_writes=100)
        assert report.normalized == pytest.approx(2.0)

    def test_hot_position_caps_lifetime(self):
        # Mean rate is low, but one position takes a write every time.
        writes = np.zeros(512, dtype=np.int64)
        writes[:] = 10
        writes[7] = 100
        report = lifetime_report(writes, total_writes=100)
        assert report.normalized == pytest.approx(0.5)
        assert report.perfect_leveling > report.normalized

    def test_rates(self):
        writes = np.array([10, 20, 30, 40], dtype=np.int64)
        report = lifetime_report(writes, total_writes=100)
        assert report.max_position_rate == pytest.approx(0.4)
        assert report.mean_position_rate == pytest.approx(0.25)

    def test_zero_wear_infinite_lifetime(self):
        report = lifetime_report(np.zeros(8, dtype=np.int64), total_writes=10)
        assert report.normalized == float("inf")

    def test_errors(self):
        with pytest.raises(ValueError):
            lifetime_report(np.ones(4, dtype=np.int64), total_writes=0)
        with pytest.raises(ValueError):
            lifetime_report(np.zeros(0, dtype=np.int64), total_writes=1)

    def test_baseline_constant(self):
        assert ENCRYPTED_FLIP_PROB == 0.5


class TestAbsoluteLifetime:
    def test_scales_inversely_with_write_rate(self):
        slow = absolute_lifetime_years(0.5, writes_per_second=1e6)
        fast = absolute_lifetime_years(0.5, writes_per_second=2e6)
        assert slow == pytest.approx(2 * fast)

    def test_scales_with_memory_size(self):
        small = absolute_lifetime_years(0.5, 1e6, n_memory_lines=1)
        big = absolute_lifetime_years(0.5, 1e6, n_memory_lines=1000)
        assert big == pytest.approx(1000 * small)

    def test_degenerate_inputs_are_infinite(self):
        assert absolute_lifetime_years(0.0, 1e6) == float("inf")
        assert absolute_lifetime_years(0.5, 0.0) == float("inf")
