"""Security Refresh VWL tests."""

from __future__ import annotations

import pytest

from repro.wear.security_refresh import SecurityRefresh, SecurityRefreshHWL


class TestMapping:
    def test_mapping_is_a_permutation_at_all_times(self):
        sr = SecurityRefresh(16, refresh_interval=1)
        for _ in range(200):
            sr.on_write()
            physical = {sr.physical_index(i) for i in range(16)}
            assert physical == set(range(16))

    def test_mapping_changes_across_rounds(self):
        sr = SecurityRefresh(16, refresh_interval=1, seed=3)
        before = [sr.physical_index(i) for i in range(16)]
        seen = {tuple(before)}
        for _ in range(64):  # several rounds with random keys
            sr.on_write()
            seen.add(tuple(sr.physical_index(i) for i in range(16)))
        assert len(seen) > 2

    def test_xor_remap_rule(self):
        sr = SecurityRefresh(8, refresh_interval=1)
        assert sr.physical_index(3) == 3 ^ sr.current_key

    def test_migrated_lines_use_next_key(self):
        sr = SecurityRefresh(8, refresh_interval=1, seed=1)
        partner = 0 ^ sr.current_key ^ sr.next_key
        sr.on_write()  # migrates logical 0 and its partner
        assert sr.remapped_by_sweep(0)
        assert sr.remapped_by_sweep(partner)
        assert sr.physical_index(0) == 0 ^ sr.next_key
        untouched = next(
            i for i in range(8) if not sr.remapped_by_sweep(i)
        )
        assert sr.physical_index(untouched) == untouched ^ sr.current_key

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            SecurityRefresh(8).physical_index(8)


class TestRounds:
    def test_round_advances_after_full_sweep(self):
        sr = SecurityRefresh(8, refresh_interval=1)
        refreshes = 0
        while sr.round == 0:
            sr.on_write()
            refreshes += 1
            assert refreshes <= 8  # pairwise migration: at most n refreshes
        assert sr.refresh_ptr == 0
        # Pairwise migration finishes a round in at most n (and at least
        # n/2) refresh operations.
        assert refreshes >= 4

    def test_keys_rotate_on_round_completion(self):
        sr = SecurityRefresh(8, refresh_interval=1, seed=1)
        old_next = sr.next_key
        while sr.round == 0:
            sr.on_write()
        assert sr.current_key == old_next

    def test_refresh_interval_respected(self):
        sr = SecurityRefresh(8, refresh_interval=5)
        refreshes = sum(sr.on_write() for _ in range(20))
        assert refreshes == 4
        # Each refresh migrates a line pair (or one line if keys coincide).
        assert 4 <= sr.refresh_writes <= 8

    def test_keys_deterministic_per_seed(self):
        a = SecurityRefresh(16, seed=7)
        b = SecurityRefresh(16, seed=7)
        assert a.current_key == b.current_key
        assert a.next_key == b.next_key

    def test_rotation_round_tracks_sweep(self):
        sr = SecurityRefresh(8, refresh_interval=1, seed=1)
        assert sr.rotation_round(0) == 0
        sr.on_write()
        assert sr.rotation_round(0) == 1  # already migrated
        untouched = next(i for i in range(8) if not sr.remapped_by_sweep(i))
        assert sr.rotation_round(untouched) == 0


class TestValidation:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            SecurityRefresh(12)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            SecurityRefresh(1)

    def test_interval_positive(self):
        with pytest.raises(ValueError):
            SecurityRefresh(8, refresh_interval=0)


class TestHWLAdapter:
    def test_rotation_in_range(self):
        sr = SecurityRefresh(16, refresh_interval=1)
        hwl = SecurityRefreshHWL(sr, bits_per_line=544)
        for _ in range(100):
            sr.on_write()
            for line in range(16):
                assert 0 <= hwl.rotation(line) < 544

    def test_rotation_changes_with_rounds(self):
        sr = SecurityRefresh(8, refresh_interval=1)
        hwl = SecurityRefreshHWL(sr, bits_per_line=544)
        before = hwl.rotation(5)
        for _ in range(16):  # two full rounds
            sr.on_write()
        assert hwl.rotation(5) != before  # overwhelmingly likely

    def test_per_line_diversity(self):
        sr = SecurityRefresh(64, refresh_interval=1)
        hwl = SecurityRefreshHWL(sr, bits_per_line=544)
        rotations = {hwl.rotation(i) for i in range(64)}
        assert len(rotations) > 32

    def test_bits_positive(self):
        with pytest.raises(ValueError):
            SecurityRefreshHWL(SecurityRefresh(8), bits_per_line=0)
