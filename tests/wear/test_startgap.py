"""Start-Gap wear-leveling tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wear.startgap import StartGap, StartGapReference


class TestMappingAgainstReference:
    @pytest.mark.parametrize("n_lines", [1, 2, 3, 8, 17])
    def test_algebraic_mapping_matches_explicit_simulation(self, n_lines):
        sg = StartGap(n_lines, gap_write_interval=1)
        ref = StartGapReference(n_lines, gap_write_interval=1)
        for step in range(4 * (n_lines + 1) ** 2):
            sg.on_write()
            ref.on_write()
            for logical in range(n_lines):
                assert sg.physical_index(logical) == ref.physical_index(
                    logical
                ), f"step {step}, line {logical}"

    @given(
        n_lines=st.integers(min_value=1, max_value=12),
        interval=st.integers(min_value=1, max_value=5),
        steps=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_mapping_property(self, n_lines, interval, steps):
        sg = StartGap(n_lines, gap_write_interval=interval)
        ref = StartGapReference(n_lines, gap_write_interval=interval)
        for _ in range(steps):
            sg.on_write()
            ref.on_write()
        for logical in range(n_lines):
            assert sg.physical_index(logical) == ref.physical_index(logical)


class TestMappingInvariants:
    def test_mapping_is_injective(self):
        sg = StartGap(16, 1)
        for _ in range(100):
            sg.on_write()
            physical = {sg.physical_index(i) for i in range(16)}
            assert len(physical) == 16

    def test_physical_indices_within_region(self):
        sg = StartGap(16, 1)
        for _ in range(200):
            sg.on_write()
            for i in range(16):
                assert 0 <= sg.physical_index(i) <= 16


class TestGapMovement:
    def test_gap_moves_every_interval(self):
        sg = StartGap(8, gap_write_interval=3)
        moves = sum(sg.on_write() for _ in range(12))
        assert moves == 4
        assert sg.move_writes == 4

    def test_start_increments_after_full_sweep(self):
        sg = StartGap(4, gap_write_interval=1)
        # Gap positions: 4 -> 3 -> 2 -> 1 -> 0 -> wrap to 4 with start++.
        for _ in range(5):
            sg.on_write()
        assert sg.start == 1
        assert sg.gap == 4

    def test_start_grows_linearly_with_sweeps(self):
        sg = StartGap(4, gap_write_interval=1)
        for _ in range(5 * 7):
            sg.on_write()
        assert sg.start == 7


class TestEffectiveStart:
    def test_gap_crossed_lines_use_start_plus_one(self):
        sg = StartGap(8, gap_write_interval=1)
        sg.on_write()  # gap moves from 8 to 7: line at slot 7 was shifted
        crossed = [i for i in range(8) if sg.gap_crossed(i)]
        assert crossed == [7]
        assert sg.effective_start(7) == 1
        assert sg.effective_start(0) == 0

    def test_all_lines_converge_when_start_increments(self):
        sg = StartGap(4, gap_write_interval=1)
        for _ in range(5):
            sg.on_write()
        assert all(sg.effective_start(i) == 1 for i in range(4))


class TestValidation:
    def test_bad_n_lines(self):
        with pytest.raises(ValueError):
            StartGap(0)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            StartGap(4, gap_write_interval=0)

    def test_out_of_range_logical(self):
        with pytest.raises(ValueError):
            StartGap(4).physical_index(4)
