"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.pads import AesPadSource, Blake2PadSource

TEST_KEY = b"unit-test-key-16"


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Point the run ledger at a temp dir so tests never dirty the repo."""
    monkeypatch.setenv("DEUCE_RUNS_DIR", str(tmp_path / ".deuce-runs"))


@pytest.fixture
def pads() -> Blake2PadSource:
    """Fast pad source used by most scheme tests."""
    return Blake2PadSource(TEST_KEY)


@pytest.fixture
def aes_pads() -> AesPadSource:
    """Real-AES pad source for functional crypto tests."""
    return AesPadSource(TEST_KEY)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for test data."""
    return random.Random(0xDE0CE)


def random_line(rng: random.Random, n: int = 64) -> bytes:
    """A random line image."""
    return bytes(rng.randrange(256) for _ in range(n))


def mutate_words(
    rng: random.Random, line: bytes, n_words: int, word_bytes: int = 2
) -> bytes:
    """Flip a random nonzero delta into ``n_words`` distinct words."""
    data = bytearray(line)
    words = rng.sample(range(len(line) // word_bytes), n_words)
    for w in words:
        off = w * word_bytes
        delta = rng.randrange(1, 1 << (8 * word_bytes))
        value = int.from_bytes(data[off: off + word_bytes], "little") ^ delta
        data[off: off + word_bytes] = value.to_bytes(word_bytes, "little")
    return bytes(data)
