"""Load-test harness: mix parsing, percentiles, soak report, ledger, tiles."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Session
from repro.service.loadtest import (
    DEFAULT_MIX,
    LoadTestOptions,
    parse_mix,
    percentile,
    run_loadtest,
    spawned_service,
)


class TestParseMix:
    def test_basic(self):
        mix = parse_mix("run=2,status=6")
        assert mix["run"] == 2.0
        assert mix["status"] == 6.0
        assert mix["sweep"] == 0.0  # unlisted ops get weight 0

    def test_spaces_tolerated(self):
        assert parse_mix(" run=1 , healthz=2 ")["healthz"] == 2.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown operation"):
            parse_mix("teapot=1")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError, match="number"):
            parse_mix("run=lots")
        with pytest.raises(ValueError, match=">= 0"):
            parse_mix("run=-1")

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="no positive weights"):
            parse_mix("run=0,status=0")

    def test_default_mix_covers_all_ops(self):
        assert set(parse_mix("run=1")) == set(DEFAULT_MIX)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_matches_numpy_linear(self):
        values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3])
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q * 100))
            )


@pytest.fixture(scope="module")
def soak_report(tmp_path_factory):
    """One short soak against a private service, recorded in a ledger."""
    runs_dir = tmp_path_factory.mktemp("runs")
    session = Session(ledger=runs_dir)
    options = LoadTestOptions(
        duration_s=2.0,
        clients=3,
        writes=100,
        seed=1,
        p99_slo_ms=60_000.0,
        max_error_rate=0.5,
        label="ci-smoke",
    )
    with spawned_service(session, job_workers=2, queue_size=8) as base:
        report = run_loadtest(base, options, ledger=session.ledger)
    return report, session


class TestSoak:
    def test_report_structure(self, soak_report):
        report, _ = soak_report
        assert report["kind"] == "loadtest"
        totals = report["totals"]
        assert totals["requests"] > 0
        assert totals["requests"] == sum(
            op["requests"] for op in report["ops"].values()
        )
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["max"] >= latency["p99"]
        assert report["duration_s"] >= 2.0

    def test_no_errors_against_healthy_service(self, soak_report):
        report, _ = soak_report
        assert report["totals"]["server_5xx"] == 0
        assert report["totals"]["transport_errors"] == 0
        assert report["slo"]["passed"] is True

    def test_queue_time_series_sampled(self, soak_report):
        report, _ = soak_report
        queue = report["queue"]
        assert len(queue["samples"]) >= 2
        assert queue["capacity"] == 8
        assert 0 <= queue["depth_peak"] <= 8

    def test_server_metrics_scraped(self, soak_report):
        report, _ = soak_report
        names = {m["name"] for m in report["server_metrics"]}
        assert "deuce_http_requests_total" in names

    def test_ledger_manifest_and_artifact(self, soak_report):
        report, session = soak_report
        manifests = session.ledger.list(kind="loadtest", label="ci-smoke")
        assert len(manifests) == 1
        m = manifests[0]
        assert m.summary["requests"] == report["totals"]["requests"]
        assert m.summary["slo_passed"] == 1.0
        assert 0.0 <= m.summary["saturation"] <= 1.0
        artifact = session.ledger.run_dir(m.run_id) / m.artifacts["loadtest"]
        assert json.loads(artifact.read_text()) == report

    def test_dashboard_renders_slo_tiles(self, soak_report):
        from repro.analysis.dashboard import render_dashboard

        _, session = soak_report
        html_doc = render_dashboard(session.ledger)
        assert "Service SLO" in html_doc
        assert "p99 request latency" in html_doc
        assert "queue depth during soak" in html_doc
        assert "PASS" in html_doc


class TestSloEvaluation:
    def _report(self, p99_slo_ms=0.0, max_error_rate=-1.0):
        from repro.service.loadtest import _Soak, _build_report

        options = LoadTestOptions(
            p99_slo_ms=p99_slo_ms, max_error_rate=max_error_rate
        )
        soak = _Soak("http://example.invalid", options)
        soak.records = [[
            ("status", 200, 0.010),
            ("status", 200, 0.020),
            ("run", 429, 0.005),
            ("run", 0, 0.001),
        ]]
        return _build_report(soak, wall_s=1.0, metrics_body=None)

    def test_429_not_counted_as_error(self):
        report = self._report()
        assert report["totals"]["backpressure_429"] == 1
        assert report["totals"]["errors"] == 1  # only the transport failure
        assert report["totals"]["error_rate"] == 0.25

    def test_p99_slo_violation_fails(self):
        report = self._report(p99_slo_ms=15.0)
        assert report["slo"]["passed"] is False

    def test_error_rate_slo_violation_fails(self):
        report = self._report(max_error_rate=0.1)
        assert report["slo"]["passed"] is False

    def test_no_targets_always_passes(self):
        assert self._report()["slo"]["passed"] is True

    def test_generous_targets_pass(self):
        report = self._report(p99_slo_ms=1000.0, max_error_rate=0.5)
        assert report["slo"]["passed"] is True


class TestCliWiring:
    def test_loadtest_subcommand_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["loadtest", "--duration", "1", "--clients", "2",
             "--p99-slo", "500", "--mix", "run=1,status=3"]
        )
        assert args.duration == 1.0
        assert args.p99_slo == 500.0
        assert args.func.__name__ == "_cmd_loadtest"
