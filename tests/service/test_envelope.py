"""The unified ``/v1`` job envelope: ``{"kind", "config", "options"}``.

``JobSpec.decode`` accepts the envelope strictly and routes any payload
carrying legacy top-level fields through the deprecated
``from_payload`` shape; over HTTP, legacy-shaped submissions on ``/v1``
paths get the same ``Deprecation`` + ``Link`` successor headers the
bare-path aliases have carried since the path versioning change.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Session
from repro.service.jobs import JobError, JobManager, JobSpec
from repro.service.server import SimulationServer

RUN_CONFIG = {"workload": "mcf", "scheme": "deuce", "n_writes": 50, "seed": 0}


class TestDecodeEnvelope:
    def test_run_envelope(self):
        spec, deprecated = JobSpec.decode(
            {"kind": "run", "config": RUN_CONFIG,
             "options": {"label": "x", "timeout_s": 5}}
        )
        assert not deprecated
        assert spec.kind == "run"
        assert spec.label == "x"
        assert spec.timeout_s == 5
        assert spec.configs[0].workload == "mcf"

    def test_sweep_envelope(self):
        spec, deprecated = JobSpec.decode(
            {"kind": "sweep",
             "config": [RUN_CONFIG, dict(RUN_CONFIG, seed=1)],
             "options": {"workers": 2, "retries": 1}}
        )
        assert not deprecated
        assert spec.kind == "sweep"
        assert len(spec.configs) == 2
        assert spec.workers == 2
        assert spec.retries == 1

    def test_experiment_envelope_forwards_extra_options(self):
        spec, deprecated = JobSpec.decode(
            {"kind": "experiment", "config": "fig8",
             "options": {"n_writes": 100}}
        )
        assert not deprecated
        assert spec.experiment == "fig8"
        assert spec.options == {"n_writes": 100}

    def test_minimal_run_payload_is_both_shapes(self):
        # {"kind","config"} is valid under either grammar; it decodes via
        # the envelope and is NOT flagged deprecated.
        spec, deprecated = JobSpec.decode(
            {"kind": "run", "config": RUN_CONFIG}
        )
        assert not deprecated
        assert spec.kind == "run"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(JobError, match="unknown"):
            JobSpec.decode(
                {"kind": "run", "config": RUN_CONFIG, "bogus": 1}
            )

    def test_unknown_option_rejected_for_run(self):
        with pytest.raises(JobError, match="unknown option"):
            JobSpec.decode(
                {"kind": "run", "config": RUN_CONFIG,
                 "options": {"n_writes": 10}}
            )

    def test_sweep_config_must_be_list(self):
        with pytest.raises(JobError):
            JobSpec.decode({"kind": "sweep", "config": RUN_CONFIG})

    def test_bad_config_name_carries_suggestion(self):
        with pytest.raises(JobError, match="did you mean 'deuce'"):
            JobSpec.decode(
                {"kind": "run", "config": dict(RUN_CONFIG, scheme="duece")}
            )

    def test_legacy_fields_route_to_deprecated_shape(self):
        for legacy in (
            {"kind": "run", "config": RUN_CONFIG, "label": "old"},
            {"kind": "sweep", "configs": [RUN_CONFIG], "workers": 1},
            {"kind": "experiment", "experiment": "fig8"},
        ):
            spec, deprecated = JobSpec.decode(legacy)
            assert deprecated, legacy
            assert spec.kind == legacy["kind"]

    def test_envelope_and_legacy_decode_identically(self):
        old, _ = JobSpec.decode(
            {"kind": "sweep", "configs": [RUN_CONFIG], "workers": 1,
             "retries": 2, "label": "same"}
        )
        new, _ = JobSpec.decode(
            {"kind": "sweep", "config": [RUN_CONFIG],
             "options": {"workers": 1, "retries": 2, "label": "same"}}
        )
        assert old == new


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=30) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


class TestDeprecationHeaders:
    @pytest.fixture
    def service(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(
            session, job_workers=1, queue_size=8, max_sweep_workers=1
        ).start()
        server = SimulationServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.port}"
        finally:
            manager.drain(10, cancel=True)
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_legacy_shape_on_v1_path_gets_deprecation_headers(
        self, service
    ):
        status, headers, _ = _post(
            f"{service}/v1/jobs",
            {"kind": "run", "config": RUN_CONFIG, "label": "old-shape"},
        )
        assert status == 201
        assert headers.get("Deprecation") == "true"
        assert 'rel="successor-version"' in headers.get("Link", "")

    def test_envelope_shape_on_v1_path_is_clean(self, service):
        status, headers, _ = _post(
            f"{service}/v1/jobs",
            {"kind": "run", "config": RUN_CONFIG,
             "options": {"label": "new-shape"}},
        )
        assert status == 201
        assert "Deprecation" not in headers

KV_CONFIG = {
    "workload": "kv-udb", "scheme": "deuce", "n_writes": 600, "seed": 0,
    "workload_params": {"n_keys": 256, "cache_kb": 8},
}


def _post_error(url: str, payload: dict):
    """POST expecting a 4xx; returns (status, body dict)."""
    try:
        _post(url, payload)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error response")


class TestKvThroughTheEnvelope:
    """KV configs ride the registry decode path on /v1 unchanged."""

    @pytest.fixture
    def service(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(
            session, job_workers=1, queue_size=8, max_sweep_workers=1
        ).start()
        server = SimulationServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.port}"
        finally:
            manager.drain(10, cancel=True)
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_legacy_kv_payload_keeps_deprecation_headers(self, service):
        # pinned: registry-validated workload_params must not break the
        # legacy-shape compatibility path or its migration headers
        status, headers, body = _post(
            f"{service}/v1/jobs",
            {"kind": "run", "config": KV_CONFIG, "label": "kv-legacy"},
        )
        assert status == 201
        assert headers.get("Deprecation") == "true"
        assert 'rel="successor-version"' in headers.get("Link", "")
        assert body["job_id"]

    def test_invalid_workload_param_rejected_with_field_path(
        self, service
    ):
        bad = dict(KV_CONFIG, workload_params={"zipf_alpha": "hi"})
        status, body = _post_error(
            f"{service}/v1/jobs",
            {"kind": "run", "config": bad, "options": {}},
        )
        assert status == 400
        # identical message to SimConfig.from_dict and Session
        assert (
            "workload_params.zipf_alpha: expected float, got str ('hi')"
            in body["error"]
        )

    def test_decode_matches_from_dict_for_kv(self):
        spec, deprecated = JobSpec.decode(
            {"kind": "run", "config": KV_CONFIG, "options": {}}
        )
        assert not deprecated
        assert spec.configs[0].workload == "kv-udb"
        assert spec.configs[0].workload_params == KV_CONFIG["workload_params"]
