"""Job queue semantics: validation, backpressure, cancellation, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Session
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    JobError,
    JobManager,
    JobSpec,
    QueueFullError,
    ServiceDraining,
    UnknownJobError,
)
from repro.sim.config import SimConfig


def _run_payload(n_writes: int = 300, **config) -> dict:
    return {
        "kind": "run",
        "config": {
            "workload": "mcf",
            "scheme": "deuce",
            "n_writes": n_writes,
            **config,
        },
    }


def _sweep_payload(n: int = 2, n_writes: int = 300) -> dict:
    return {
        "kind": "sweep",
        "configs": [
            {"workload": "mcf", "scheme": "deuce",
             "n_writes": n_writes, "seed": i}
            for i in range(n)
        ],
        "workers": 1,
    }


@pytest.fixture
def session(tmp_path):
    return Session(ledger=tmp_path / "runs")


def _manager(session, **kw) -> JobManager:
    kw.setdefault("job_workers", 2)
    kw.setdefault("queue_size", 8)
    return JobManager(session, **kw).start()


class TestJobSpec:
    def test_run_payload(self):
        spec = JobSpec.from_payload(_run_payload())
        assert spec.kind == "run"
        assert spec.configs[0] == SimConfig("mcf", "deuce", n_writes=300)
        assert spec.n_cells == 1

    def test_bad_kind(self):
        with pytest.raises(JobError, match="kind"):
            JobSpec.from_payload({"kind": "nope"})

    def test_unknown_field(self):
        with pytest.raises(JobError, match="unknown job field"):
            JobSpec.from_payload({**_run_payload(), "priority": 9})

    def test_config_errors_become_job_errors(self):
        with pytest.raises(JobError, match="n_writes"):
            JobSpec.from_payload(_run_payload(n_writes="many"))

    def test_sweep_needs_configs(self):
        with pytest.raises(JobError, match="configs"):
            JobSpec.from_payload({"kind": "sweep", "configs": []})

    def test_unknown_experiment(self):
        with pytest.raises(JobError, match="unknown experiment"):
            JobSpec.from_payload({"kind": "experiment", "experiment": "figX"})

    def test_bad_timeout(self):
        with pytest.raises(JobError, match="timeout_s"):
            JobSpec.from_payload({**_run_payload(), "timeout_s": -1})


class TestExecution:
    def test_run_job_completes_and_records(self, session):
        manager = _manager(session)
        job = manager.submit(JobSpec.from_payload(_run_payload()))
        assert job.wait(30)
        assert job.state == DONE
        assert job.result["run_ids"][0]
        assert session.ledger.get(job.result["run_ids"][0]).kind == "run"
        assert job.result["results"][0]["total_flips"] > 0
        manager.drain(5)

    def test_run_job_bit_identical_to_direct_session(self, session):
        manager = _manager(session)
        job = manager.submit(JobSpec.from_payload(_run_payload()))
        assert job.wait(30)
        direct = Session(ledger=False).run(
            SimConfig("mcf", "deuce", n_writes=300)
        )
        via_job = dict(job.result["results"][0])
        expected = direct.to_dict()
        for volatile in ("wall_time_s", "run_id"):
            via_job.pop(volatile, None)
            expected.pop(volatile, None)
        via_job["summary"].pop("wall_s", None)
        expected["summary"].pop("wall_s", None)
        assert via_job == expected
        manager.drain(5)

    def test_sweep_job(self, session):
        manager = _manager(session)
        job = manager.submit(JobSpec.from_payload(_sweep_payload(3)))
        assert job.wait(60)
        assert job.state == DONE
        assert len(job.result["results"]) == 3
        assert job.cells_done == 3
        kinds = {
            session.ledger.get(rid).kind for rid in job.result["run_ids"]
        }
        assert kinds == {"sweep-cell"}
        manager.drain(5)

    def test_experiment_job(self, session):
        manager = _manager(session)
        job = manager.submit(
            JobSpec.from_payload(
                {
                    "kind": "experiment",
                    "experiment": "fig10",
                    "options": {"n_writes": 200},
                }
            )
        )
        assert job.wait(120)
        assert job.state == DONE, job.error
        assert job.result["rows"]
        assert job.result["run_id"]
        manager.drain(5)

    def test_failed_job_keeps_worker_alive(self, session):
        manager = _manager(session, job_workers=1)
        bad = manager.submit(
            JobSpec.from_payload(
                _run_payload(wear_leveling="hwl", hwl_region_lines=-5)
            )
        )
        good = manager.submit(JobSpec.from_payload(_run_payload()))
        assert bad.wait(30) and good.wait(30)
        assert bad.state == FAILED
        assert bad.error
        assert good.state == DONE
        manager.drain(5)

    def test_progress_events_stream(self, session):
        manager = _manager(session)
        job = manager.submit(JobSpec.from_payload(_sweep_payload(2)))
        assert job.wait(60)
        events = job.events_since(0)
        kinds = [e["kind"] for e in events]
        assert kinds.count("done") == 2
        assert kinds[-1] == "state"
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)
        manager.drain(5)

    def test_timeout_fails_job(self, session):
        manager = _manager(session)
        job = manager.submit(
            JobSpec.from_payload(
                {**_run_payload(n_writes=2_000_000), "timeout_s": 0.05}
            )
        )
        assert job.wait(60)
        assert job.state == FAILED
        assert "deadline" in job.error
        manager.drain(5)


class TestBackpressureAndCancel:
    def test_queue_full_raises(self, session):
        manager = JobManager(session, job_workers=1, queue_size=2)
        # Not started: nothing dequeues, so the queue fills deterministically.
        manager.submit(JobSpec.from_payload(_run_payload()))
        manager.submit(JobSpec.from_payload(_run_payload()))
        with pytest.raises(QueueFullError):
            manager.submit(JobSpec.from_payload(_run_payload()))

    def test_cancel_queued_job(self, session):
        manager = JobManager(session, job_workers=1, queue_size=4)
        job = manager.submit(JobSpec.from_payload(_run_payload()))
        manager.cancel(job.id)
        assert job.state == QUEUED  # not yet dequeued
        manager.start()
        assert job.wait(30)
        assert job.state == CANCELLED
        manager.drain(5)

    def test_cancel_running_sweep(self, session):
        manager = _manager(session, job_workers=1)
        job = manager.submit(
            JobSpec.from_payload(_sweep_payload(8, n_writes=200_000))
        )
        deadline = time.monotonic() + 30
        while job.state == QUEUED and time.monotonic() < deadline:
            time.sleep(0.01)
        manager.cancel(job.id)
        assert job.wait(60)
        assert job.state == CANCELLED
        manager.drain(5)

    def test_unknown_job(self, session):
        manager = JobManager(session)
        with pytest.raises(UnknownJobError):
            manager.get("job-nope")

    def test_eight_concurrent_sweep_jobs(self, session):
        manager = _manager(session, job_workers=4, queue_size=16)
        jobs = [
            manager.submit(JobSpec.from_payload(_sweep_payload(2, 300)))
            for _ in range(8)
        ]
        for job in jobs:
            assert job.wait(120)
            assert job.state == DONE, job.error
        assert manager.counts()[DONE] == 8
        # 8 jobs x 2 cells, all recorded.
        assert len(session.ledger.list(kind="sweep-cell")) == 16
        manager.drain(5)


class TestDrain:
    def test_drain_rejects_new_jobs(self, session):
        manager = _manager(session)
        assert manager.drain(5)
        with pytest.raises(ServiceDraining):
            manager.submit(JobSpec.from_payload(_run_payload()))

    def test_drain_finishes_backlog(self, session):
        manager = _manager(session, job_workers=2)
        jobs = [
            manager.submit(JobSpec.from_payload(_run_payload()))
            for _ in range(4)
        ]
        assert manager.drain(60)
        assert all(job.state == DONE for job in jobs)
        # Worker threads are gone: nothing executes after a drain.
        assert all(not t.is_alive() for t in manager._threads)

    def test_drain_cancel_stops_long_jobs(self, session):
        manager = _manager(session, job_workers=2)
        jobs = [
            manager.submit(
                JobSpec.from_payload(_sweep_payload(4, n_writes=500_000))
            )
            for _ in range(3)
        ]
        deadline = time.monotonic() + 30
        while (
            all(job.state == QUEUED for job in jobs)
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert manager.drain(60, cancel=True)
        assert all(job.state == CANCELLED for job in jobs)
        # No orphaned worker processes: multiprocessing children are gone.
        import multiprocessing

        assert multiprocessing.active_children() == []
