"""Fleet coordinator tests: parity, worker death, and steal-race dedup.

The headline guarantee is the ISSUE acceptance criterion: a sweep
sharded over two real ``deuce-sim serve`` workers — one of which is
SIGKILLed mid-sweep — produces a merged ledger/checkpoint bit-identical
to the same grid run single-node.  The steal-race test drives the
first-completion-wins dedup path with scripted fake workers.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Session
from repro.obs.progress import DONE
from repro.service.coordinator import (
    CoordinatorServer,
    CoordinatorState,
    FleetExecutor,
    WorkerClient,
    WorkerError,
)
from repro.service.loadtest import spawned_service
from repro.sim.checkpoint import SweepCheckpoint, config_signature
from repro.sim.config import SimConfig


def _strip_volatile(payload: dict) -> dict:
    """Drop the documented per-run volatile fields for parity asserts."""
    payload = dict(payload)
    payload.pop("wall_time_s", None)
    payload.pop("run_id", None)
    summary = dict(payload.get("summary") or {})
    summary.pop("wall_s", None)
    payload["summary"] = summary
    return payload


def _grid(n_writes: int, seeds=(0,)) -> list[SimConfig]:
    return [
        SimConfig(workload, scheme, n_writes=n_writes, seed=seed)
        for workload in ("mcf", "lbm")
        for scheme in ("deuce", "encr-dcw")
        for seed in seeds
    ]


@contextlib.contextmanager
def _two_inprocess_workers():
    with contextlib.ExitStack() as stack:
        yield [
            stack.enter_context(
                spawned_service(Session(ledger=False), job_workers=2)
            )
            for _ in range(2)
        ]


class TestFleetExecutor:
    def test_requires_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            FleetExecutor([])

    def test_empty_grid_is_a_noop(self):
        executor = FleetExecutor(["http://127.0.0.1:9"])
        assert executor.run_suite([]) == []

    def test_fleet_sweep_bit_identical_to_local(self):
        configs = _grid(n_writes=300)
        session = Session(ledger=False)
        local = session.sweep(configs, workers=1)
        with _two_inprocess_workers() as urls:
            executor = FleetExecutor(urls, window=2, straggler_min_s=30.0)
            fleet = session.sweep(configs, executor=executor)
        assert len(fleet) == len(local)
        for mine, theirs in zip(local, fleet):
            assert _strip_volatile(mine.to_dict()) == _strip_volatile(
                theirs.to_dict()
            )
        # Both workers actually participated.
        completed = [s["completed"] for s in executor.fleet_stats()]
        assert sum(completed) == len(configs)
        assert all(c > 0 for c in completed)

    def test_fleet_checkpoint_resumes_like_local(self, tmp_path):
        """A fleet checkpoint restores into a plain local sweep and back."""
        configs = _grid(n_writes=200)
        session = Session(ledger=False)
        ckpt_dir = tmp_path / "ckpt"
        with _two_inprocess_workers() as urls:
            executor = FleetExecutor(urls, window=2, straggler_min_s=30.0)
            # Fleet-run only half the grid, checkpointing as it goes.
            session.sweep(
                configs[:2], executor=executor, checkpoint=ckpt_dir
            )
        # The local engine resumes the same checkpoint: restored cells are
        # not re-run, the missing half is.
        full = session.sweep(configs, workers=1, checkpoint=ckpt_dir)
        reference = session.sweep(configs, workers=1)
        for mine, theirs in zip(full, reference):
            assert _strip_volatile(mine.to_dict()) == _strip_volatile(
                theirs.to_dict()
            )
        restored = SweepCheckpoint(ckpt_dir).restore()
        assert set(restored) == {config_signature(c) for c in configs}


def _spawn_worker(tmp_path: Path) -> tuple[subprocess.Popen, str]:
    """Start a real ``deuce-sim serve`` worker on an ephemeral port."""
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--no-ledger", "--job-workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        cwd=tmp_path,
        text=True,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "listening on" in line:
            break
        if proc.poll() is not None:
            raise AssertionError(
                "worker died on startup: " + line + proc.stdout.read()
            )
    match = re.search(r"listening on (http://[\w.:]+)", line)
    assert match, f"no listen line from worker within 30s: {line!r}"
    return proc, match.group(1)


class TestWorkerDeath:
    def test_sigkill_one_worker_merged_checkpoint_bit_identical(
        self, tmp_path
    ):
        """The acceptance criterion: kill -9 one of two workers mid-sweep.

        The coordinator must detect the death, requeue the worker's
        in-flight cells onto the survivor, finish the grid, and leave a
        merged checkpoint + result set bit-identical to a single-node
        sweep of the same grid.
        """
        configs = _grid(n_writes=40_000, seeds=(0, 1))  # 8 cells
        ckpt_dir = tmp_path / "ckpt"
        session = Session(ledger=False)
        procs = []
        try:
            for _ in range(2):
                procs.append(_spawn_worker(tmp_path))
            urls = [url for _, url in procs]
            executor = FleetExecutor(
                urls,
                window=2,
                probe_interval_s=0.2,
                poll_interval_s=0.02,
                straggler_min_s=30.0,
                fleet_down_timeout_s=30.0,
            )
            victim = procs[0][0]

            def kill_on_first_dispatch():
                # Kill as soon as the victim holds in-flight cells: a
                # 40k-write cell takes orders of magnitude longer than
                # the kill latency, so its window cannot drain first.
                # (Waiting for checkpoint progress instead would race
                # the kill against the victim's own completions and
                # sometimes leave nothing to requeue.)
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if executor.workers[0].in_flight:
                        break
                    time.sleep(0.005)
                victim.send_signal(signal.SIGKILL)

            killer = threading.Thread(
                target=kill_on_first_dispatch, daemon=True
            )
            killer.start()
            fleet = session.sweep(
                configs, executor=executor, retries=3, checkpoint=ckpt_dir
            )
            killer.join(timeout=60)
            assert victim.poll() is not None, "victim worker survived"
        finally:
            for proc, _ in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
                proc.stdout.close()

        reference = session.sweep(configs, workers=1)
        assert len(fleet) == len(configs)
        for mine, theirs in zip(fleet, reference):
            assert _strip_volatile(mine.to_dict()) == _strip_volatile(
                theirs.to_dict()
            )
        # The merged checkpoint covers every cell exactly once, and its
        # payloads match the single-node run bit-for-bit.
        checkpoint = SweepCheckpoint(ckpt_dir)
        records = checkpoint.load()
        assert set(records) == {config_signature(c) for c in configs}
        restored = checkpoint.restore()
        for config, theirs in zip(configs, reference):
            mine = restored[config_signature(config)]
            assert _strip_volatile(mine.to_dict()) == _strip_volatile(
                theirs.to_dict()
            )
        # The survivor picked up the victim's requeued cells.
        assert executor.requeues >= 1
        stats = {s["name"]: s for s in executor.fleet_stats()}
        dead = [s for s in stats.values() if not s["healthy"]]
        assert len(dead) == 1


class _FakeWorker:
    """Scripted in-memory worker for scheduler-path tests.

    ``delay_polls`` holds a cell's DONE state for that many status polls
    — long enough for the straggler logic to steal it — and then
    completes anyway, exercising the duplicate-completion dedup.
    """

    def __init__(self, result_payload: dict, delay_polls: int = 0) -> None:
        self.result_payload = result_payload
        self.delay_polls = delay_polls
        self.jobs: dict[str, int] = {}
        self.cancelled: list[str] = []
        self.submitted = 0

    def client(self, url: str) -> "WorkerClient":
        worker = self

        class Client:
            def __init__(self) -> None:
                self.url = url

            def healthz(self) -> dict:
                return {"status": "ok"}

            def submit(self, envelope: dict, trace_id: str = "") -> str:
                worker.submitted += 1
                job_id = f"{url}-job-{worker.submitted}"
                worker.jobs[job_id] = 0
                return job_id

            def status(self, job_id: str) -> dict:
                worker.jobs[job_id] += 1
                if worker.jobs[job_id] <= worker.delay_polls:
                    return {"state": "running", "writes_done": 1}
                return {"state": "done"}

            def result(self, job_id: str) -> dict:
                return {"state": "done", "result": worker.result_payload}

            def cancel(self, job_id: str) -> None:
                # Deliberately NOT honoured: the slow job completes
                # anyway, forcing the dedup path instead of the cancel
                # path.
                worker.cancelled.append(job_id)

        return Client()


class TestStealRaceDedup:
    def test_duplicate_completion_is_deduplicated(self):
        """Both sides of a steal race complete; each cell lands once.

        The scripted timeline (deterministic in scheduler ticks): the
        slow worker gets both cells, the idle fast worker steals the
        oldest and wins the race, the coordinator's cancel is ignored,
        and the slow worker's late completion arrives while the sweep is
        still running — it must be dropped as a duplicate, not recorded
        twice.
        """
        config = SimConfig("mcf", "deuce", n_writes=50, seed=0)
        canned = Session(ledger=False).run(config)
        payload = {"results": [canned.to_dict()], "run_ids": [""]}

        slow = _FakeWorker(payload, delay_polls=2)
        fast = _FakeWorker(payload, delay_polls=0)
        workers = {"http://slow": slow, "http://fast": fast}
        executor = FleetExecutor(
            ["http://slow", "http://fast"],
            window=2,
            poll_interval_s=0.01,
            probe_interval_s=10.0,
            straggler_min_s=0.0,
            straggler_factor=100.0,
            client_factory=lambda url: workers[url].client(url),
        )
        done_events = []

        def on_progress(event):
            if event.kind == DONE:
                done_events.append(event.cell)

        results = executor.run_suite([config, config], progress=on_progress)

        assert len(results) == 2
        for result in results:
            assert _strip_volatile(result.to_dict()) == _strip_volatile(
                canned.to_dict()
            )
        # The oldest cell was stolen from the slow worker, fast won...
        assert executor.steals == 1
        assert fast.submitted == 1
        # ...the winner tried to cancel the loser...
        assert slow.cancelled, "winner should cancel the losing dispatch"
        # ...and when the loser completed anyway it was dropped.
        assert executor.duplicates == 1
        # Exactly one DONE progress event per cell despite the 2x
        # dispatch of the raced cell.
        assert sorted(done_events) == [0, 1]

    def test_dead_worker_cells_requeue_to_survivor(self):
        config = SimConfig("mcf", "deuce", n_writes=50, seed=0)
        canned = Session(ledger=False).run(config)
        payload = {"results": [canned.to_dict()], "run_ids": [""]}

        class DeadClient:
            def __init__(self, url: str) -> None:
                self.url = url

            def healthz(self) -> dict:
                raise WorkerError("connection refused")

            def submit(self, envelope, trace_id="") -> str:
                raise WorkerError("connection refused")

            def status(self, job_id):
                raise WorkerError("connection refused")

            def result(self, job_id):
                raise WorkerError("connection refused")

            def cancel(self, job_id) -> None:
                raise WorkerError("connection refused")

        alive = _FakeWorker(payload)
        clients = {
            "http://dead": DeadClient,
            "http://alive": lambda url: alive.client(url),
        }
        executor = FleetExecutor(
            ["http://dead", "http://alive"],
            window=1,
            poll_interval_s=0.01,
            probe_interval_s=0.02,
            straggler_min_s=30.0,
            client_factory=lambda url: clients[url](url),
        )
        results = executor.run_suite([config], retries=2)
        assert len(results) == 1
        assert _strip_volatile(results[0].to_dict()) == _strip_volatile(
            canned.to_dict()
        )
        stats = {s["url"]: s for s in executor.fleet_stats()}
        assert not stats["http://dead"]["healthy"]
        assert stats["http://alive"]["completed"] == 1


def _http(method: str, url: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


class TestCoordinateService:
    @pytest.fixture
    def coordinator(self):
        with _two_inprocess_workers() as urls:
            state = CoordinatorState(Session(ledger=False), urls)
            server = CoordinatorServer(("127.0.0.1", 0), state)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                yield f"http://127.0.0.1:{server.port}", state
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_healthz_names_role_and_workers(self, coordinator):
        base, state = coordinator
        status, body = _http("GET", f"{base}/v1/healthz")
        assert status == 200
        assert body["role"] == "coordinator"
        assert body["workers"] == state.worker_urls
        assert body["api_version"] == "v1"

    def test_sweep_envelope_round_trip(self, coordinator):
        base, _ = coordinator
        configs = [
            SimConfig("mcf", s, n_writes=200, seed=0).to_dict()
            for s in ("deuce", "ble")
        ]
        status, body = _http(
            "POST",
            f"{base}/v1/sweeps",
            {"kind": "sweep", "config": configs,
             "options": {"label": "e2e", "sweep_id": "fleet-e2e"}},
        )
        assert status == 201
        assert body["sweep_id"] == "fleet-e2e"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, snap = _http("GET", f"{base}{body['result_url']}")
            if status != 202:
                break
            time.sleep(0.05)
        assert status == 200, snap
        assert len(snap["results"]) == 2
        reference = Session(ledger=False).sweep(
            [SimConfig.from_dict(c) for c in configs], workers=1
        )
        for mine, theirs in zip(snap["results"], reference):
            assert _strip_volatile(mine) == _strip_volatile(
                theirs.to_dict()
            )
        # Fleet + metrics surfaces reflect the finished sweep.
        status, fleet = _http("GET", f"{base}/v1/fleet")
        assert status == 200
        assert sum(w["completed"] for w in fleet["workers"]) == 2
        status, metrics = _http("GET", f"{base}/v1/metrics")
        assert status == 200
        names = {m["name"] for m in metrics}
        assert "fleet.cells_completed" in names
        # Re-POSTing a finished sweep id resumes (restores, no re-run).
        status, body = _http(
            "POST",
            f"{base}/v1/sweeps",
            {"kind": "sweep", "config": configs,
             "options": {"sweep_id": "fleet-e2e"}},
        )
        assert status == 201

    def test_rejects_non_sweep_envelopes(self, coordinator):
        base, _ = coordinator
        status, body = _http(
            "POST",
            f"{base}/v1/sweeps",
            {"kind": "run",
             "config": {"workload": "mcf", "scheme": "deuce"}},
        )
        assert status == 400
        assert "sweep" in body["error"]

    def test_unknown_sweep_404s(self, coordinator):
        base, _ = coordinator
        status, body = _http("GET", f"{base}/v1/sweeps/nope")
        assert status == 404
