"""ServiceTelemetry instruments and their JobManager wiring."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import JobManager, JobSpec
from repro.service.telemetry import ServiceTelemetry


def _find(snaps, name, **labels):
    for snap in snaps:
        if snap["name"] == name and snap.get("labels", {}) == (labels or {}):
            return snap
    raise AssertionError(f"no snapshot for {name} {labels}")


class TestServiceTelemetry:
    def test_idle_service_exposes_full_catalog(self):
        snaps = ServiceTelemetry().snapshot()
        names = {s["name"] for s in snaps}
        assert {
            "deuce_http_backpressure_total",
            "deuce_queue_depth",
            "deuce_jobs_in_flight",
            "deuce_service_uptime_seconds",
            "deuce_metrics_scrapes_total",
        } <= names

    def test_observe_request_labels_and_latency(self):
        t = ServiceTelemetry()
        t.observe_request("GET", "/jobs/{id}", 200, 0.003)
        t.observe_request("GET", "/jobs/{id}", 200, 0.004)
        t.observe_request("POST", "/jobs", 429, 0.001)
        snaps = t.snapshot()
        ok = _find(snaps, "deuce_http_requests_total",
                   method="GET", route="/jobs/{id}", status="200")
        assert ok["value"] == 2
        dur = _find(snaps, "deuce_http_request_duration_seconds",
                    method="GET", route="/jobs/{id}")
        assert dur["count"] == 2
        assert 0.0 < dur["p50"] <= 0.01

    def test_429_and_503_feed_dedicated_counters(self):
        t = ServiceTelemetry()
        t.observe_request("POST", "/jobs", 429, 0.001)
        t.observe_request("POST", "/jobs", 429, 0.001)
        t.observe_request("POST", "/jobs", 503, 0.001)
        snaps = t.snapshot()
        assert _find(snaps, "deuce_http_backpressure_total")["value"] == 2
        assert _find(snaps, "deuce_http_draining_total")["value"] == 1

    def test_job_lifecycle_phases(self):
        t = ServiceTelemetry()
        t.job_submitted("run")
        t.job_started("run", 0.2)
        t.job_finished("run", "done", 1.5, 1.7)
        snaps = t.snapshot()
        assert _find(snaps, "deuce_jobs_submitted_total",
                     kind="run")["value"] == 1
        assert _find(snaps, "deuce_jobs_finished_total",
                     kind="run", state="done")["value"] == 1
        assert _find(snaps, "deuce_job_queue_wait_seconds",
                     kind="run")["count"] == 1
        assert _find(snaps, "deuce_job_exec_seconds",
                     kind="run")["sum"] == pytest.approx(1.5)
        assert _find(snaps, "deuce_job_total_seconds",
                     kind="run")["sum"] == pytest.approx(1.7)

    def test_trace_id_exemplars_land_in_latency_buckets(self):
        t = ServiceTelemetry()
        t.observe_request("GET", "/jobs/{id}", 200, 0.003, trace_id="abc123")
        t.job_started("run", 0.2, trace_id="abc123")
        t.job_finished("run", "done", 1.5, 1.7, trace_id="abc123")
        snaps = t.snapshot()
        for family, labels in (
            ("deuce_http_request_duration_seconds",
             {"method": "GET", "route": "/jobs/{id}"}),
            ("deuce_job_queue_wait_seconds", {"kind": "run"}),
            ("deuce_job_exec_seconds", {"kind": "run"}),
            ("deuce_job_total_seconds", {"kind": "run"}),
        ):
            snap = _find(snaps, family, **labels)
            assert snap["exemplars"], family
            assert snap["exemplars"][-1]["trace_id"] == "abc123"

    def test_exemplars_survive_prometheus_rendering(self):
        # The 0.0.4 text renderer must ignore the extra snapshot key
        # rather than crash or emit malformed lines.
        t = ServiceTelemetry()
        t.observe_request("GET", "/healthz", 200, 0.002, trace_id="tid")
        text = t.to_prometheus()
        assert "deuce_http_request_duration_seconds_bucket" in text
        assert "tid" not in text

    def test_scrape_counter_is_monotonic(self):
        t = ServiceTelemetry()
        first = _find(t.snapshot(), "deuce_metrics_scrapes_total")["value"]
        second = _find(t.snapshot(), "deuce_metrics_scrapes_total")["value"]
        assert second == first + 1

    def test_worker_heartbeat_tracks_uptime(self):
        now = [100.0]
        t = ServiceTelemetry(clock=lambda: now[0])
        now[0] = 102.5
        t.worker_heartbeat("w0")
        snaps = t.snapshot()
        assert _find(snaps, "deuce_worker_heartbeat_seconds",
                     worker="w0")["value"] == pytest.approx(2.5)
        assert _find(snaps, "deuce_worker_busy", worker="w0")["value"] == 0.0
        t.worker_heartbeat("w0", busy=True)
        snaps = t.snapshot()
        assert _find(snaps, "deuce_worker_busy", worker="w0")["value"] == 1.0
        assert _find(snaps, "deuce_worker_jobs_total",
                     worker="w0")["value"] == 1

    def test_uses_injected_registry(self):
        registry = MetricsRegistry()
        t = ServiceTelemetry(registry=registry)
        t.job_submitted("run")
        assert t.registry is registry
        assert registry.counter(
            "deuce_jobs_submitted_total", {"kind": "run"}
        ).value == 1

    def test_prometheus_rendering_includes_histograms(self):
        t = ServiceTelemetry()
        t.observe_request("GET", "/healthz", 200, 0.002)
        text = t.to_prometheus()
        assert "# TYPE deuce_http_request_duration_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert text.endswith("\n")


class TestJobManagerTelemetry:
    def test_executed_job_records_all_phases(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1, queue_size=4).start()
        try:
            spec = JobSpec.from_payload({
                "kind": "run",
                "config": {"workload": "mcf", "scheme": "deuce",
                           "n_writes": 200},
            })
            job = manager.submit(spec)
            assert job.wait(30)
            snaps = manager.telemetry.snapshot()
            assert _find(snaps, "deuce_jobs_submitted_total",
                         kind="run")["value"] == 1
            assert _find(snaps, "deuce_jobs_finished_total",
                         kind="run", state="done")["value"] == 1
            for family in ("deuce_job_queue_wait_seconds",
                           "deuce_job_exec_seconds",
                           "deuce_job_total_seconds"):
                snap = _find(snaps, family, kind="run")
                assert snap["count"] == 1
                assert snap["sum"] >= 0.0
        finally:
            manager.drain(10, cancel=True)

    def test_queue_depth_and_in_flight_properties(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1, queue_size=4)
        assert manager.queue_depth == 0
        assert manager.in_flight == 0

    def test_worker_heartbeats_appear_after_start(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=2, queue_size=4).start()
        try:
            spec = JobSpec.from_payload({
                "kind": "run",
                "config": {"workload": "mcf", "scheme": "deuce",
                           "n_writes": 200},
            })
            manager.submit(spec).wait(30)
            snaps = manager.telemetry.snapshot()
            workers = {
                s["labels"]["worker"]
                for s in snaps
                if s["name"] == "deuce_worker_heartbeat_seconds"
            }
            assert len(workers) >= 1  # the executing worker beat at least
            jobs_done = sum(
                s["value"]
                for s in snaps
                if s["name"] == "deuce_worker_jobs_total"
            )
            assert jobs_done == 1
        finally:
            manager.drain(10, cancel=True)
