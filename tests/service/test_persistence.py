"""Service restart durability (JobStore/rehydrate) and the /v1 surface."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Session
from repro.service.jobs import (
    CANCELLED,
    DONE,
    QUEUED,
    Job,
    JobError,
    JobManager,
    JobSpec,
    JobStore,
)
from repro.service.server import API_VERSION, SimulationServer
from repro.sim.config import SimConfig

RUN_CONFIG = {"workload": "mcf", "scheme": "deuce", "n_writes": 400, "seed": 7}


def _spec(**overrides) -> JobSpec:
    payload = {"kind": "run", "config": RUN_CONFIG, **overrides}
    return JobSpec.from_payload(payload)


class TestJobSpecRoundTrip:
    def test_to_from_dict_round_trip(self):
        spec = JobSpec.from_payload(
            {
                "kind": "sweep",
                "configs": [RUN_CONFIG, {**RUN_CONFIG, "scheme": "ble"}],
                "workers": 3,
                "timeout_s": 12.5,
                "retries": 2,
                "label": "night-sweep",
            }
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_dict_form_is_json_safe(self):
        spec = _spec(retries=1)
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_retries_validated(self):
        with pytest.raises(JobError, match="retries"):
            JobSpec.from_payload(
                {"kind": "run", "config": RUN_CONFIG, "retries": -1}
            )
        with pytest.raises(JobError, match="retries"):
            JobSpec.from_payload(
                {"kind": "run", "config": RUN_CONFIG, "retries": "two"}
            )


class TestJobStore:
    def test_last_record_per_job_wins(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(_spec())
        store.record(job)
        job._transition(DONE)
        job.result = {"results": []}
        store.record(job)
        records = store.load()
        assert list(records) == [job.id]
        assert records[job.id]["state"] == DONE

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        job = Job(_spec())
        store.record(job)
        with open(store.path, "a") as fh:
            fh.write('{"job_id": "job-torn", "spec"')  # SIGKILL mid-append
        assert list(store.load()) == [job.id]

    def test_job_record_round_trip(self, tmp_path):
        job = Job(_spec(label="keepme"))
        job.started_utc = "2026-01-01T00:00:00Z"
        job._transition(DONE)
        job.result = {"results": [], "run_ids": []}
        job.cells_done = 1
        restored = Job.from_record(job.to_record())
        assert restored.id == job.id
        assert restored.spec == job.spec
        assert restored.state == DONE
        assert restored.result == job.result
        assert restored.wait(0)  # terminal: result endpoint won't block


class TestRehydration:
    def _manager(self, tmp_path, **kwargs) -> JobManager:
        session = Session(ledger=tmp_path / "runs")
        store = JobStore(session.ledger.root / "service")
        return JobManager(
            session, job_workers=1, max_sweep_workers=2, store=store,
            **kwargs,
        )

    def test_terminal_jobs_restore_as_snapshots(self, tmp_path):
        manager = self._manager(tmp_path).start()
        job = manager.submit(_spec())
        assert job.wait(60) and job.state == DONE
        manager.drain(10)

        reborn = self._manager(tmp_path).start()
        assert reborn.rehydrate() == []  # nothing to resubmit
        restored = reborn.get(job.id)
        assert restored.state == DONE
        assert restored.result == job.result
        reborn.drain(10)

    def test_unfinished_job_is_resubmitted_and_completes(self, tmp_path):
        # Journal a job that never got past "running" (simulated crash).
        store = JobStore(tmp_path / "runs" / "service")
        crashed = Job(_spec())
        crashed.state = "running"
        store.record(crashed)

        manager = self._manager(tmp_path).start()
        restored = manager.rehydrate()
        assert [j.id for j in restored] == [crashed.id]
        assert restored[0].wait(60)
        assert restored[0].state == DONE
        assert restored[0].result["results"][0]["n_writes"] == 400
        manager.drain(10)

    def test_resubmitted_sweep_resumes_from_keyed_checkpoint(self, tmp_path):
        configs = (
            SimConfig("libq", "deuce", n_writes=400, seed=7),
            SimConfig("mcf", "deuce", n_writes=400, seed=7),
        )
        spec = JobSpec(kind="sweep", configs=configs, workers=1)
        crashed = Job(spec)
        crashed.state = QUEUED
        store = JobStore(tmp_path / "runs" / "service")
        store.record(crashed)

        # One cell completed before the crash: it sits in the job-keyed
        # sweep checkpoint and must be restored, not re-simulated.
        session = Session(ledger=tmp_path / "runs")
        done_before = session.run(configs[0])
        session.sweep_checkpoint(crashed.id).record(
            0, configs[0], done_before, run_id="pre-crash"
        )

        manager = self._manager(tmp_path).start()
        (job,) = manager.rehydrate()
        assert job.wait(60) and job.state == DONE
        results = job.result["results"]
        assert results[0]["total_flips"] == done_before.total_flips
        assert results[1]["total_flips"] == session.run(configs[1]).total_flips
        # Only the missing cell ran, so only it emitted progress events.
        done_cells = {
            e["cell"] for e in job.events_since(0) if e.get("kind") == "done"
        }
        assert done_cells == {1}
        manager.drain(10)

    def test_cancelled_while_queued_is_journaled(self, tmp_path):
        manager = self._manager(tmp_path)  # workers not started yet
        job = manager.submit(_spec())
        job.request_cancel()
        manager.start()
        assert job.wait(30)
        assert job.state == CANCELLED
        manager.drain(10)
        assert JobStore(tmp_path / "runs" / "service").load()[job.id][
            "state"
        ] == CANCELLED


def _request(method: str, url: str, payload: dict | None = None):
    """(status, headers, decoded body) for one request."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read() or b"null")


@pytest.fixture
def service(tmp_path):
    session = Session(ledger=tmp_path / "runs")
    manager = JobManager(
        session, job_workers=2, queue_size=16, max_sweep_workers=2
    ).start()
    server = SimulationServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        manager.drain(10, cancel=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestApiVersioning:
    def test_healthz_reports_api_version(self, service):
        status, headers, body = _request("GET", f"{service}/v1/healthz")
        assert status == 200
        assert body["api_version"] == API_VERSION == "v1"
        assert "Deprecation" not in headers

    def test_bare_paths_answer_with_deprecation(self, service):
        for path in ("/healthz", "/jobs", "/runs"):
            status, headers, _ = _request("GET", f"{service}{path}")
            assert status == 200, path
            assert headers.get("Deprecation") == "true", path
            assert f'</v1{path}>; rel="successor-version"' == headers.get(
                "Link"
            ), path

    def test_versioned_submission_echoes_v1_urls(self, service):
        status, headers, body = _request(
            "POST", f"{service}/v1/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        assert status == 201
        assert "Deprecation" not in headers
        assert body["status_url"] == f"/v1/jobs/{body['job_id']}"
        assert body["result_url"].startswith("/v1/jobs/")
        # The echoed URL works as-is.
        status, _, snap = _request("GET", service + body["status_url"])
        assert status == 200 and snap["job_id"] == body["job_id"]

    def test_legacy_submission_keeps_bare_urls(self, service):
        status, headers, body = _request(
            "POST", f"{service}/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        assert status == 201
        assert headers.get("Deprecation") == "true"
        assert body["status_url"] == f"/jobs/{body['job_id']}"

    def test_full_job_lifecycle_on_v1(self, service):
        _, _, body = _request(
            "POST", f"{service}/v1/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        job_id = body["job_id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status, headers, snap = _request(
                "GET", f"{service}/v1/jobs/{job_id}"
            )
            assert status == 200 and "Deprecation" not in headers
            if snap["state"] == "done":
                break
            time.sleep(0.02)
        assert snap["state"] == "done"
        status, _, result = _request(
            "GET", f"{service}/v1/jobs/{job_id}/result"
        )
        assert status == 200
        assert result["result"]["results"][0]["n_writes"] == 400

    def test_delete_works_on_both_prefixes(self, service):
        for prefix in ("/v1", ""):
            _, _, body = _request(
                "POST",
                f"{service}{prefix or ''}/jobs",
                {"kind": "run", "config": RUN_CONFIG},
            )
            status, headers, snap = _request(
                "DELETE", f"{service}{prefix}/jobs/{body['job_id']}"
            )
            assert status == 200
            assert snap["cancel_requested"] is True
            assert ("Deprecation" in headers) == (prefix == "")

    def test_unknown_route_under_v1_is_404(self, service):
        status, headers, _ = _request("GET", f"{service}/v1/nope")
        assert status == 404
        assert "Deprecation" not in headers
