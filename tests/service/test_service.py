"""End-to-end HTTP service tests over a live socket.

An in-process :class:`SimulationServer` (ephemeral port) covers the JSON
API; a subprocess test covers ``deuce-sim serve`` + SIGTERM drain.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Session
from repro.service.jobs import JobManager
from repro.service.server import SimulationServer
from repro.sim.config import SimConfig


def _request(method: str, url: str, payload: dict | None = None):
    """(status, decoded-JSON body) for one request; HTTP errors returned."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


def _poll_terminal(base: str, job_id: str, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _request("GET", f"{base}/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not settle within {timeout}s")


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port; yields (base_url, session)."""
    session = Session(ledger=tmp_path / "runs")
    manager = JobManager(
        session, job_workers=4, queue_size=16, max_sweep_workers=2
    ).start()
    server = SimulationServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}", session
    finally:
        manager.drain(10, cancel=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


RUN_CONFIG = {"workload": "mcf", "scheme": "deuce", "n_writes": 400, "seed": 7}


class TestEndpoints:
    def test_healthz(self, service):
        base, _ = service
        status, body = _request("GET", f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["job_workers"] == 4
        assert body["ledger"]
        # Telemetry enrichment: uptime plus queue/completion counters.
        assert body["uptime_s"] >= 0.0
        assert body["queue_depth"] == 0
        assert body["in_flight"] == 0
        assert body["jobs_completed"] == 0
        assert body["queue_capacity"] == 16

    def test_submit_run_result_bit_identical(self, service):
        base, session = service
        status, body = _request(
            "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        assert status == 201
        job_id = body["job_id"]
        final = _poll_terminal(base, job_id)
        assert final["state"] == "done", final["error"]
        status, body = _request("GET", f"{base}/jobs/{job_id}/result")
        assert status == 200
        via_http = body["result"]["results"][0]
        direct = Session(ledger=False).run(SimConfig.from_dict(RUN_CONFIG))
        expected = direct.to_dict()
        for side in (via_http, expected):
            side.pop("wall_time_s", None)
            side.pop("run_id", None)
            side["summary"].pop("wall_s", None)
        assert via_http == expected
        # The ledger holds the manifest the job reported.
        run_id = body["result"]["run_ids"][0]
        assert session.ledger.get(run_id).kind == "run"

    def test_sweep_job_with_events_stream(self, service):
        base, session = service
        configs = [dict(RUN_CONFIG, seed=i) for i in range(3)]
        status, body = _request(
            "POST",
            f"{base}/jobs",
            {"kind": "sweep", "configs": configs, "workers": 1,
             "label": "e2e"},
        )
        assert status == 201
        job_id = body["job_id"]
        # Follow the chunked JSONL stream until the terminal line.
        lines = []
        with urllib.request.urlopen(
            f"{base}/jobs/{job_id}/events", timeout=60
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            for raw in resp:
                lines.append(json.loads(raw))
                if lines[-1].get("kind") == "end":
                    break
        assert lines[-1]["state"] == "done"
        assert [e["kind"] for e in lines].count("done") == 3
        manifests = session.ledger.list(kind="sweep-cell", label="e2e")
        assert len(manifests) == 3

    def test_events_page_without_follow(self, service):
        base, _ = service
        _, body = _request(
            "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        job_id = body["job_id"]
        _poll_terminal(base, job_id)
        with urllib.request.urlopen(
            f"{base}/jobs/{job_id}/events?follow=0", timeout=30
        ) as resp:
            lines = [json.loads(raw) for raw in resp]
        assert lines[-1]["kind"] == "end"

    def test_cancel_running_job(self, service):
        base, _ = service
        big = [dict(RUN_CONFIG, n_writes=500_000, seed=i) for i in range(4)]
        _, body = _request(
            "POST", f"{base}/jobs", {"kind": "sweep", "configs": big,
                                     "workers": 1}
        )
        job_id = body["job_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, status_body = _request("GET", f"{base}/jobs/{job_id}")
            if status_body["state"] == "running":
                break
            time.sleep(0.01)
        status, body = _request("DELETE", f"{base}/jobs/{job_id}")
        assert status == 200
        assert body["cancel_requested"]
        final = _poll_terminal(base, job_id)
        assert final["state"] == "cancelled"
        status, _ = _request("GET", f"{base}/jobs/{job_id}/result")
        assert status == 409

    def test_result_pending_is_202(self, service):
        base, _ = service
        _, body = _request(
            "POST",
            f"{base}/jobs",
            {"kind": "run",
             "config": dict(RUN_CONFIG, n_writes=2_000_000)},
        )
        job_id = body["job_id"]
        status, _ = _request("GET", f"{base}/jobs/{job_id}/result")
        assert status == 202
        _request("DELETE", f"{base}/jobs/{job_id}")
        _poll_terminal(base, job_id)

    def test_bad_payload_is_400(self, service):
        base, _ = service
        status, body = _request(
            "POST",
            f"{base}/jobs",
            {"kind": "run",
             "config": dict(RUN_CONFIG, n_write=10)},
        )
        assert status == 400
        assert "n_writes" in body["error"]  # did-you-mean from from_dict

    def test_unknown_job_is_404(self, service):
        base, _ = service
        status, _ = _request("GET", f"{base}/jobs/job-nope")
        assert status == 404
        status, _ = _request("DELETE", f"{base}/jobs/job-nope")
        assert status == 404

    def test_runs_query(self, service):
        base, _ = service
        _, body = _request(
            "POST", f"{base}/jobs",
            {"kind": "run", "config": RUN_CONFIG, "label": "query-me"},
        )
        _poll_terminal(base, body["job_id"])
        status, body = _request(
            "GET", f"{base}/runs?label=query-me&scheme=deuce"
        )
        assert status == 200
        assert len(body["runs"]) == 1
        assert body["runs"][0]["workload"] == "mcf"

    def test_jobs_listing(self, service):
        base, _ = service
        _, body = _request(
            "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        _poll_terminal(base, body["job_id"])
        status, listing = _request("GET", f"{base}/jobs")
        assert status == 200
        assert any(j["job_id"] == body["job_id"] for j in listing["jobs"])


class TestBackpressure:
    def test_429_when_queue_full(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1, queue_size=1)
        # Workers not started: the queue fills deterministically.
        server = SimulationServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, _ = _request(
                "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
            )
            assert status == 201
            status, body = _request(
                "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
            )
            assert status == 429
            assert "queue" in body["error"]
            # The rejection lands in the dedicated backpressure counter
            # (recorded just after the response is written — poll briefly).
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                bp = next(
                    s for s in server.telemetry.snapshot()
                    if s["name"] == "deuce_http_backpressure_total"
                )
                if bp["value"]:
                    break
                time.sleep(0.01)
            assert bp["value"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_503_when_draining(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1).start()
        manager.drain(5)
        server = SimulationServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, _ = _request(
                "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
            )
            assert status == 503
            status, body = _request("GET", f"{base}/healthz")
            assert body["status"] == "draining"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestMetricsEndpoint:
    def test_metrics_json(self, service):
        base, _ = service
        _request("GET", f"{base}/v1/healthz")  # generate one request first
        status, body = _request("GET", f"{base}/v1/metrics")
        assert status == 200
        assert body["api_version"] == "v1"
        assert body["uptime_s"] >= 0.0
        names = {m["name"] for m in body["metrics"]}
        assert "deuce_http_requests_total" in names
        assert "deuce_queue_depth" in names
        req = next(
            m for m in body["metrics"]
            if m["name"] == "deuce_http_requests_total"
            and m.get("labels", {}).get("route") == "/healthz"
        )
        assert req["labels"]["status"] == "200"
        assert req["value"] >= 1

    def test_metrics_prometheus_format_param(self, service):
        base, _ = service
        with urllib.request.urlopen(
            f"{base}/v1/metrics?format=prometheus", timeout=30
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in resp.headers["Content-Type"]
            text = resp.read().decode()
        assert "# TYPE deuce_metrics_scrapes_total counter" in text
        assert "deuce_queue_capacity 16" in text

    def test_metrics_prometheus_accept_header(self, service):
        base, _ = service
        req = urllib.request.Request(
            f"{base}/v1/metrics", headers={"Accept": "text/plain"}
        )
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")

    def test_request_latency_labeled_by_route_template(self, service):
        base, _ = service
        _, body = _request(
            "POST", f"{base}/v1/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        _poll_terminal(base, body["job_id"])
        _, metrics = _request("GET", f"{base}/v1/metrics")
        routes = {
            m["labels"]["route"]
            for m in metrics["metrics"]
            if m["name"] == "deuce_http_requests_total"
        }
        # Raw job ids never appear as label values — bounded cardinality.
        assert "/jobs/{id}" in routes
        assert not any(body["job_id"] in r for r in routes)

    def test_job_phase_histograms_populate(self, service):
        base, _ = service
        _, body = _request(
            "POST", f"{base}/v1/jobs", {"kind": "run", "config": RUN_CONFIG}
        )
        _poll_terminal(base, body["job_id"])
        _, metrics = _request("GET", f"{base}/v1/metrics")
        phases = {
            m["name"]: m
            for m in metrics["metrics"]
            if m["name"].startswith("deuce_job_")
            and m.get("labels", {}).get("kind") == "run"
        }
        assert phases["deuce_job_queue_wait_seconds"]["count"] >= 1
        assert phases["deuce_job_exec_seconds"]["count"] >= 1
        assert phases["deuce_job_total_seconds"]["count"] >= 1
        # healthz enrichment agrees once the job settled.
        _, health = _request("GET", f"{base}/v1/healthz")
        assert health["jobs_completed"] >= 1


class TestServeProcess:
    def test_sigterm_drains_cleanly(self, tmp_path):
        """`deuce-sim serve` + SIGTERM: drain, exit 0, no orphans."""
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        env["DEUCE_RUNS_DIR"] = str(tmp_path / "runs")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--job-workers", "1", "--drain-timeout", "20"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            cwd=tmp_path,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no port in banner: {banner!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            status, _ = _request("GET", f"{base}/healthz")
            assert status == 200
            status, body = _request(
                "POST", f"{base}/jobs", {"kind": "run", "config": RUN_CONFIG}
            )
            assert status == 201
            _poll_terminal(base, body["job_id"])
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "drained, bye" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        # The job's manifest survived in the ledger directory.
        index = tmp_path / "runs" / "index.jsonl"
        assert index.exists() and index.read_text().strip()
