"""CPU access-stream to writeback-trace derivation tests."""

from __future__ import annotations

import pytest

from repro.crypto.pads import Blake2PadSource
from repro.schemes import make_scheme
from repro.workloads.cpu import CpuWorkload, collect_writebacks
from repro.workloads.stats import analyze_trace


class TestCollection:
    def test_object_pattern_produces_sparse_writebacks(self):
        trace, hierarchy = collect_writebacks(
            CpuWorkload(pattern="object", working_set_bytes=256 * 1024),
            n_accesses=30_000,
        )
        assert trace.n_writes > 50
        stats = analyze_trace(trace)
        # Header-field updates: few words per writeback.
        assert stats.avg_words_modified < 8

    def test_stream_pattern_produces_dense_writebacks(self):
        trace, _ = collect_writebacks(
            CpuWorkload(pattern="stream", working_set_bytes=256 * 1024),
            n_accesses=10_000,
        )
        assert trace.n_writes > 50
        stats = analyze_trace(trace)
        assert stats.avg_words_modified > 24  # full-line rewrites

    def test_deterministic(self):
        wl = CpuWorkload(pattern="mixed", seed=5)
        a, _ = collect_writebacks(wl, n_accesses=5_000)
        b, _ = collect_writebacks(wl, n_accesses=5_000)
        assert [r.data for r in a.records] == [r.data for r in b.records]

    def test_cache_stats_exposed(self):
        _, hierarchy = collect_writebacks(
            CpuWorkload(pattern="object"), n_accesses=5_000
        )
        l1 = hierarchy.first.stats
        assert l1.accesses > 0
        assert 0.0 <= l1.hit_rate <= 1.0

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            collect_writebacks(CpuWorkload(pattern="wave"), n_accesses=10)

    def test_flush_at_end_adds_writebacks(self):
        wl = CpuWorkload(pattern="object", seed=2)
        plain, _ = collect_writebacks(wl, n_accesses=5_000)
        flushed, _ = collect_writebacks(wl, n_accesses=5_000, flush_at_end=True)
        assert flushed.n_writes > plain.n_writes


class TestSchemesOnOrganicTraces:
    def test_trace_installs_and_replays_through_deuce(self):
        trace, _ = collect_writebacks(
            CpuWorkload(pattern="object", working_set_bytes=128 * 1024),
            n_accesses=15_000,
        )
        scheme = make_scheme("deuce", Blake2PadSource(b"organic-trace-16"))
        for addr in trace.addresses():
            scheme.install(addr, trace.initial[addr])
        total = 0
        for rec in trace.records:
            total += scheme.write(rec.address, rec.data).total_flips
            assert scheme.read(rec.address) == rec.data
        # Organic sparse writebacks: far below the 50% avalanche.
        assert total / max(1, trace.n_writes) / 512 < 0.40

    def test_dense_organic_trace_defeats_deuce(self):
        trace, _ = collect_writebacks(
            CpuWorkload(pattern="stream", working_set_bytes=128 * 1024),
            n_accesses=8_000,
        )
        scheme = make_scheme("deuce", Blake2PadSource(b"organic-trace-16"))
        for addr in trace.addresses():
            scheme.install(addr, trace.initial[addr])
        total = sum(
            scheme.write(r.address, r.data).total_flips for r in trace.records
        )
        assert total / max(1, trace.n_writes) / 512 > 0.40
