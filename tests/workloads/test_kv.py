"""The KV request engine (:mod:`repro.workloads.kv`).

Determinism is the load-bearing property: a profile + seed must fully
determine the request stream, and a request stream must fully determine
the engine's writeback trace — that is what makes on-disk suites
replayable and lets every scheme see the identical stream.
"""

from __future__ import annotations

import pytest

from repro.memory.cache import MemoryHierarchy
from repro.workloads.kv import (
    KV_PROFILES,
    KeyspaceLayout,
    KvEngine,
    KvProfile,
    KvRequest,
    drive_requests,
    generate_kv_trace,
    request_stream,
)
from repro.workloads.trace import generate_trace

# 256 keys x ~112B slots = a ~28KB working set over an 8KB last level —
# enough pressure that steady-state puts keep evicting dirty lines.
SMALL = KvProfile(
    "kv-test", n_keys=256, value_bytes=48, value_sigma=0.2,
    zipf_alpha=0.9, get_weight=50.0, put_weight=50.0, cache_kb=8,
)


def take(stream, n):
    return [next(stream) for _ in range(n)]


class TestRequestStream:
    def test_populate_puts_every_key_once(self):
        reqs = take(request_stream(SMALL, seed=1), SMALL.n_keys)
        assert all(r.op == "put" for r in reqs)
        assert sorted(r.key for r in reqs) == list(range(SMALL.n_keys))

    def test_steady_state_mix_follows_weights(self):
        stream = request_stream(SMALL, seed=1)
        take(stream, SMALL.n_keys)
        ops = [r.op for r in take(stream, 4000)]
        get_frac = ops.count("get") / len(ops)
        assert 0.4 < get_frac < 0.6  # 50/50 mix
        assert ops.count("delete") == 0

    def test_same_seed_same_stream(self):
        a = take(request_stream(SMALL, seed=7), 500)
        b = take(request_stream(SMALL, seed=7), 500)
        assert a == b

    def test_different_seed_different_stream(self):
        a = take(request_stream(SMALL, seed=7), 500)
        b = take(request_stream(SMALL, seed=8), 500)
        assert a != b

    def test_zipf_skew_concentrates_keys(self):
        skewed = KvProfile(
            "skew", n_keys=256, zipf_alpha=1.4, get_weight=100.0,
            put_weight=0.0,
        )
        stream = request_stream(skewed, seed=3)
        take(stream, skewed.n_keys)
        from collections import Counter

        counts = Counter(r.key for r in take(stream, 5000))
        top = sum(c for _, c in counts.most_common(8))
        assert top > 0.3 * 5000  # 3% of keys draw >30% of traffic

    def test_no_positive_weight_raises(self):
        dead = KvProfile(
            "dead", n_keys=16, get_weight=0.0, put_weight=0.0,
            delete_weight=0.0,
        )
        stream = request_stream(dead, seed=0)
        take(stream, dead.n_keys)
        with pytest.raises(ValueError, match="no positive mix weight"):
            next(stream)

    def test_value_sizes_recorded_on_put(self):
        reqs = take(request_stream(SMALL, seed=2), SMALL.n_keys)
        assert all(r.value_size >= 1 for r in reqs)
        capacity = max(SMALL.value_bytes * 2, 8)
        assert all(r.value_size <= capacity for r in reqs)


class TestKeyspaceLayout:
    def test_slots_disjoint_and_aligned(self):
        layout = KeyspaceLayout(SMALL, seed=0)
        addresses = {layout.slot_address(k) for k in range(SMALL.n_keys)}
        assert len(addresses) == SMALL.n_keys
        assert all(a % 8 == 0 for a in addresses)

    def test_shuffle_is_seeded(self):
        a = KeyspaceLayout(SMALL, seed=0)
        b = KeyspaceLayout(SMALL, seed=0)
        c = KeyspaceLayout(SMALL, seed=1)
        assert [a.slot_address(k) for k in range(8)] == [
            b.slot_address(k) for k in range(8)
        ]
        assert [a.slot_address(k) for k in range(64)] != [
            c.slot_address(k) for k in range(64)
        ]


class TestKvEngine:
    def test_writebacks_are_organic_dirty_evictions(self):
        engine = KvEngine(SMALL, seed=0)
        stream = request_stream(SMALL, seed=0)
        for req in take(stream, SMALL.n_keys + 500):
            engine.apply(req)
        assert engine.records  # capacity evictions happened
        # every writeback is a full line in line-address space
        assert all(len(r.data) == 64 for r in engine.records)
        assert all(r.address >= 0 for r in engine.records)

    def test_deterministic_replay_through_fresh_engine(self):
        reqs = take(request_stream(SMALL, seed=5), SMALL.n_keys + 800)
        a = KvEngine(SMALL, seed=5)
        b = KvEngine(SMALL, seed=5)
        for r in reqs:
            a.apply(r)
        for r in reqs:
            b.apply(r)
        assert a.records == b.records
        assert a.backing == b.backing

    def test_flush_drains_dirty_lines_deterministically(self):
        a = KvEngine(SMALL, seed=1)
        b = KvEngine(SMALL, seed=1)
        reqs = take(request_stream(SMALL, seed=1), SMALL.n_keys)
        for e in (a, b):
            for r in reqs:
                e.apply(r)
            e.flush()
        assert a.records == b.records
        # after a full flush nothing is dirty: flushing again adds nothing
        before = len(a.records)
        a.flush()
        assert len(a.records) == before

    def test_get_touches_without_dirtying(self):
        engine = KvEngine(SMALL, seed=2)
        reqs = take(request_stream(SMALL, seed=2), SMALL.n_keys)
        for r in reqs:
            engine.apply(r)
        engine.flush()
        clean = len(engine.records)
        key = reqs[0].key
        engine.apply(KvRequest("get", key))
        engine.flush()
        assert len(engine.records) == clean  # loads never dirty lines

    def test_cache_stats_mpki_under_kv_stream(self):
        engine = KvEngine(SMALL, seed=3)
        stream = request_stream(SMALL, seed=3)
        for r in take(stream, SMALL.n_keys + 2000):
            engine.apply(r)
        stats = engine.cache_stats()
        assert len(stats) == 3  # two fixed levels + profile-sized LLC
        for s in stats:
            assert s.accesses > 0
            assert 0.0 <= s.mpki <= 1000.0  # misses per kilo-access
            assert s.hits + s.misses == s.accesses
        # a second identically-seeded engine reproduces the exact stats
        engine2 = KvEngine(SMALL, seed=3)
        for r in take(request_stream(SMALL, seed=3), SMALL.n_keys + 2000):
            engine2.apply(r)
        for s1, s2 in zip(stats, engine2.cache_stats()):
            assert (s1.accesses, s1.misses, s1.writebacks) == (
                s2.accesses, s2.misses, s2.writebacks
            )

    def test_store_spans_split_at_line_boundaries(self):
        # A value that straddles lines must not raise (SetAssociativeCache
        # rejects line-crossing stores; the engine splits them).
        profile = KvProfile(
            "straddle", n_keys=32, value_bytes=100, value_sigma=0.0,
            cache_kb=8,
        )
        engine = KvEngine(profile, seed=0)
        for r in take(request_stream(profile, seed=0), profile.n_keys):
            engine.apply(r)  # must not raise

    def test_hierarchy_writeback_ordering_is_outermost_last(self):
        # MemoryHierarchy.flush_all drains inner levels first so dirty
        # inner lines funnel through the last level; the engine's sink
        # only ever sees last-level evictions.
        sink: list[tuple[int, bytes]] = []
        backing: dict[int, bytes] = {}
        hierarchy = MemoryHierarchy(
            [(1024, 2), (4096, 2)],
            backing,
            writeback_sink=lambda a, d: sink.append((a, d)),
            line_bytes=64,
        )
        for i in range(256):
            hierarchy.store(i * 64, bytes([i % 256]) * 64)
        n_evicted = len(sink)
        hierarchy.flush_all()
        assert len(sink) > n_evicted
        # every surviving line landed in backing exactly as written
        for addr, data in sink:
            assert backing.get(addr) is not None


class TestGenerateKvTrace:
    def test_trace_has_phases_and_exact_length(self):
        trace = generate_kv_trace(SMALL, 1500, seed=0)
        assert trace.n_writes == 1500
        assert trace.phases[0] == ("populate", 0)
        assert trace.phases[1][0] == "steady"
        assert 0 < trace.phases[1][1] <= 1500

    def test_bit_identical_across_generations(self):
        a = generate_kv_trace(SMALL, 1200, seed=9)
        b = generate_kv_trace(SMALL, 1200, seed=9)
        assert a.records == b.records
        assert a.initial == b.initial
        assert a.phases == b.phases

    def test_registry_dispatch_via_generate_trace(self):
        # The polymorphic hook: generate_trace("kv-...") must route to the
        # engine, not the statistical generator.
        t = generate_trace("kv-udb", 1000, seed=2)
        assert t.phases and t.phases[0][0] == "populate"
        direct = KV_PROFILES["kv-udb"].generate_trace(1000, seed=2)
        assert t.records == direct.records

    def test_workload_params_override_profile(self):
        # long enough to reach the steady phase, where zipf_alpha matters
        base = generate_trace("kv-udb", 4000, seed=0)
        skew = generate_trace(
            "kv-udb", 4000, seed=0, params={"zipf_alpha": 0.0}
        )
        assert dict(base.phases)["steady"] < 4000
        assert base.records != skew.records

    def test_impossible_length_fails_with_guidance(self):
        tiny = KvProfile(
            "tiny", n_keys=16, value_bytes=16, get_weight=100.0,
            put_weight=0.0, cache_kb=64,
        )
        # 16 small keys fit entirely in cache: only the populate flush
        # produces writebacks, far fewer than requested.
        with pytest.raises(ValueError, match="raise n_keys"):
            generate_kv_trace(tiny, 5000, seed=0)

    def test_abort_interrupts_generation(self):
        from repro.obs.instruments import RunAborted

        calls = {"n": 0}

        def abort() -> bool:
            calls["n"] += 1
            return calls["n"] > 2

        with pytest.raises(RunAborted):
            generate_kv_trace(SMALL, 2000, seed=0, abort=abort, abort_every=64)

    def test_drive_requests_collect_records_applied_prefix(self):
        collected: list[KvRequest] = []
        from itertools import islice

        stream = islice(request_stream(SMALL, seed=4), 100_000)
        trace, engine = drive_requests(
            SMALL, 4, 64, stream, 900, collect=collected
        )
        assert trace.n_writes == 900
        # replaying exactly the collected prefix reproduces the trace
        replay, _ = drive_requests(SMALL, 4, 64, collected, 900)
        assert replay.records == trace.records
        assert replay.phases == trace.phases


class TestCannedProfiles:
    def test_all_profiles_reach_steady_state_at_10k(self):
        for name in KV_PROFILES:
            trace = generate_trace(name, 10_000, seed=0)
            steady_start = dict(trace.phases)["steady"]
            assert 0 < steady_start < 10_000, name
