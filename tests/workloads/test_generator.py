"""Trace-generator tests: determinism, structure, and statistics."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.memory import bitops
from repro.workloads.generator import (
    TraceGenerator,
    _bit_probabilities,
    _poisson,
    _zipf_cumulative,
)
from repro.workloads.profiles import get_profile

import random


@pytest.fixture
def profile():
    return get_profile("mcf")


class TestDeterminism:
    def test_same_seed_same_trace(self, profile):
        a = TraceGenerator(profile, seed=7)
        b = TraceGenerator(profile, seed=7)
        for _ in range(50):
            ra, rb = a.next_write(), b.next_write()
            assert ra.address == rb.address
            assert ra.data == rb.data

    def test_different_seeds_differ(self, profile):
        a = TraceGenerator(profile, seed=1)
        b = TraceGenerator(profile, seed=2)
        assert any(
            a.next_write().data != b.next_write().data for _ in range(10)
        )

    def test_initial_lines_deterministic(self, profile):
        a = TraceGenerator(profile, seed=3).initial_lines()
        b = TraceGenerator(profile, seed=3).initial_lines()
        assert a == b


class TestStructure:
    def test_addresses_within_working_set(self, profile):
        gen = TraceGenerator(profile, seed=0)
        for rec in gen.writes(200):
            assert 0 <= rec.address < profile.working_set_lines

    def test_every_write_changes_its_line(self, profile):
        gen = TraceGenerator(profile, seed=0)
        previous = {a: d for a, d in gen.initial_lines().items()}
        for rec in gen.writes(200):
            assert rec.data != previous[rec.address]
            previous[rec.address] = rec.data

    def test_record_length(self, profile):
        gen = TraceGenerator(profile, seed=0, line_bytes=64)
        assert all(len(r.data) == 64 for r in gen.writes(20))

    def test_current_line_tracks_ground_truth(self, profile):
        gen = TraceGenerator(profile, seed=0)
        rec = gen.next_write()
        assert gen.current_line(rec.address) == rec.data

    def test_writes_generated_counter(self, profile):
        gen = TraceGenerator(profile, seed=0)
        list(gen.writes(17))
        assert gen.writes_generated == 17


class TestWorkloadCharacter:
    def test_dense_profile_touches_every_word(self):
        gems = get_profile("Gems")
        gen = TraceGenerator(gems, seed=0)
        prev = dict(gen.initial_lines())
        for rec in gen.writes(30):
            changed = bitops.changed_words(prev[rec.address], rec.data, 2)
            assert len(changed) == 32
            prev[rec.address] = rec.data

    def test_sparse_profile_touches_few_words(self):
        libq = get_profile("libq")
        gen = TraceGenerator(libq, seed=0)
        prev = dict(gen.initial_lines())
        counts = []
        for rec in gen.writes(100):
            counts.append(
                len(bitops.changed_words(prev[rec.address], rec.data, 2))
            )
            prev[rec.address] = rec.data
        assert sum(counts) / len(counts) < 4

    def test_footprints_are_stable(self):
        """Writes to one line keep hitting the same word positions."""
        profile = replace(get_profile("mcf"), working_set_lines=4)
        gen = TraceGenerator(profile, seed=0)
        prev = dict(gen.initial_lines())
        touched: dict[int, set[int]] = {}
        for rec in gen.writes(300):
            words = bitops.changed_words(prev[rec.address], rec.data, 2)
            touched.setdefault(rec.address, set()).update(words)
            prev[rec.address] = rec.data
        for words in touched.values():
            # Far fewer distinct positions than 300 random draws would hit.
            assert len(words) <= 2.5 * profile.footprint_mean

    def test_lsb_bias(self):
        """Counter-like workloads flip low-order bits far more often."""
        libq = get_profile("libq")
        gen = TraceGenerator(libq, seed=0)
        prev = dict(gen.initial_lines())
        low = high = 0
        for rec in gen.writes(300):
            delta = bitops.xor(prev[rec.address], rec.data)
            for w in range(32):
                value = int.from_bytes(delta[w * 2: w * 2 + 2], "little")
                low += bin(value & 0xFF).count("1")
                high += bin(value >> 8).count("1")
            prev[rec.address] = rec.data
        assert low > 2 * high


class TestHelpers:
    def test_zipf_cumulative_monotone(self):
        cum = _zipf_cumulative(10, 1.0)
        assert all(b > a for a, b in zip(cum, cum[1:]))
        assert len(cum) == 10

    def test_bit_probabilities_hit_requested_mean(self):
        probs = _bit_probabilities(6.0, 0.95, 16)
        assert sum(probs) == pytest.approx(6.0, abs=0.05)
        assert all(0 < p <= 0.99 for p in probs)

    def test_bit_probabilities_decay(self):
        probs = _bit_probabilities(4.0, 0.8, 16)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_bit_probabilities_cap(self):
        probs = _bit_probabilities(15.9, 0.999, 16)
        assert max(probs) <= 0.99

    def test_bit_probabilities_errors(self):
        with pytest.raises(ValueError):
            _bit_probabilities(0.0, 0.9, 16)
        with pytest.raises(ValueError):
            _bit_probabilities(4.0, 0.0, 16)

    def test_poisson_mean(self):
        rng = random.Random(42)
        samples = [_poisson(rng, 3.0) for _ in range(3000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, abs=0.2)

    def test_poisson_zero_lambda(self):
        assert _poisson(random.Random(0), 0.0) == 0
