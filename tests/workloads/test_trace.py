"""Trace container and file-format tests."""

from __future__ import annotations

import pytest

from repro.workloads.trace import Trace, generate_trace


class TestGenerateTrace:
    def test_by_name(self):
        trace = generate_trace("mcf", 50, seed=1)
        assert trace.profile_name == "mcf"
        assert trace.n_writes == 50
        assert trace.line_bytes == 64

    def test_initial_covers_working_set(self):
        trace = generate_trace("mcf", 10, seed=1)
        assert len(trace.initial) == 2048
        assert all(len(d) == 64 for d in trace.initial.values())

    def test_records_reference_installed_lines(self):
        trace = generate_trace("libq", 100, seed=2)
        for rec in trace.records:
            assert rec.address in trace.initial

    def test_deterministic(self):
        a = generate_trace("wrf", 30, seed=5)
        b = generate_trace("wrf", 30, seed=5)
        assert [r.data for r in a.records] == [r.data for r in b.records]


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        trace = generate_trace("mcf", 40, seed=3)
        path = tmp_path / "mcf.trc"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.profile_name == trace.profile_name
        assert loaded.seed == trace.seed
        assert loaded.line_bytes == trace.line_bytes
        assert loaded.initial == trace.initial
        assert loaded.records == trace.records

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.trc"
        path.write_bytes(b"NOTATRACE" * 4)
        with pytest.raises(ValueError, match="not a DEUCE trace"):
            Trace.load(path)

    def test_addresses_sorted(self):
        trace = generate_trace("mcf", 5, seed=0)
        addrs = trace.addresses()
        assert addrs == sorted(addrs)
