"""Workload-profile registry tests."""

from __future__ import annotations

import pytest

from repro.workloads.profiles import (
    PAPER_TARGETS,
    PROFILES,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)

# Table 2 of the paper, verbatim.
TABLE2 = {
    "libq": (22.9, 9.78),
    "mcf": (16.2, 8.78),
    "lbm": (14.6, 7.25),
    "Gems": (14.4, 7.14),
    "milc": (19.6, 6.80),
    "omnetpp": (10.8, 4.71),
    "leslie3d": (12.8, 4.38),
    "soplex": (25.5, 3.97),
    "zeusmp": (4.65, 1.97),
    "wrf": (3.85, 1.67),
    "xalanc": (1.85, 1.61),
    "astar": (1.84, 1.29),
}


class TestRegistry:
    def test_all_twelve_workloads_present(self):
        assert len(WORKLOAD_NAMES) == 12
        assert set(WORKLOAD_NAMES) == set(TABLE2)

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_table2_values_verbatim(self, name):
        mpki, wbpki = TABLE2[name]
        profile = get_profile(name)
        assert profile.read_mpki == mpki
        assert profile.wbpki == wbpki

    def test_all_have_at_least_one_wbpki(self):
        """Section 3.2's selection criterion."""
        assert all(p.wbpki >= 1.0 for p in PROFILES.values())

    def test_ordered_by_wbpki_descending(self):
        """Table 2 lists workloads by writeback intensity."""
        wbpkis = [PROFILES[n].wbpki for n in WORKLOAD_NAMES]
        assert wbpkis == sorted(wbpkis, reverse=True)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_profile("gcc")

    def test_dense_writers_flagged(self):
        assert PROFILES["Gems"].dense_write_prob == 1.0
        assert PROFILES["soplex"].dense_write_prob >= 0.5
        assert PROFILES["libq"].dense_write_prob == 0.0


class TestParameterSanity:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_parameters_in_valid_ranges(self, name):
        p = get_profile(name)
        assert p.working_set_lines > 0
        assert 0 < p.footprint_mean <= 32
        assert 0 < p.words_per_write_mean <= 32
        assert 0 < p.bits_per_word_mean <= 16
        assert 0 < p.bit_decay <= 1
        assert 0 <= p.dense_write_prob <= 1
        assert 0 <= p.block_affinity <= 1
        assert 0 <= p.single_byte_prob <= 1

    def test_profiles_are_frozen(self):
        with pytest.raises(AttributeError):
            get_profile("mcf").wbpki = 1.0


class TestPaperTargets:
    def test_headline_targets_present(self):
        for key in (
            "avg_dcw_noencr_pct",
            "avg_deuce_pct",
            "avg_dyndeuce_pct",
            "lifetime_deuce_hwl",
            "speedup_deuce",
        ):
            assert key in PAPER_TARGETS

    def test_encryption_overhead_is_4x(self):
        ratio = (
            PAPER_TARGETS["avg_dcw_encr_pct"]
            / PAPER_TARGETS["avg_dcw_noencr_pct"]
        )
        assert 3.5 <= ratio <= 4.5
