"""Trace-statistics analyzer tests."""

from __future__ import annotations

import pytest

from repro.workloads.generator import WriteRecord
from repro.workloads.stats import analyze_trace, recommend_scheme
from repro.workloads.trace import Trace, generate_trace


def hand_trace(records, initial=None, line_bytes=64):
    return Trace(
        profile_name="hand",
        seed=0,
        line_bytes=line_bytes,
        initial=initial or {0: bytes(line_bytes)},
        records=records,
    )


class TestHandCraftedTraces:
    def test_single_bit_write(self):
        new = b"\x01" + bytes(63)
        stats = analyze_trace(hand_trace([WriteRecord(0, new)]))
        assert stats.n_writes == 1
        assert stats.avg_bits_flipped == 1.0
        assert stats.avg_words_modified == 1.0
        assert stats.avg_blocks_touched == 1.0
        assert stats.avg_regions_touched == 1.0
        assert stats.position_writes[7] == 1  # LSB of byte 0, MSB-first

    def test_two_words_in_different_blocks(self):
        new = bytearray(64)
        new[0] = 0xFF  # word 0, block 0
        new[32] = 0xFF  # word 16, block 2
        stats = analyze_trace(hand_trace([WriteRecord(0, bytes(new))]))
        assert stats.avg_words_modified == 2.0
        assert stats.avg_blocks_touched == 2.0
        assert stats.avg_bits_per_modified_word == 8.0

    def test_footprint_accumulates_across_writes(self):
        a = bytearray(64)
        a[0] = 1
        b = bytearray(bytes(a))
        b[10] = 1
        stats = analyze_trace(
            hand_trace([WriteRecord(0, bytes(a)), WriteRecord(0, bytes(b))])
        )
        assert stats.footprint_sizes[0] == 2
        assert stats.avg_footprint_size == 2.0

    def test_flip_fraction(self):
        new = b"\xff" * 32 + bytes(32)  # 256 of 512 bits
        stats = analyze_trace(hand_trace([WriteRecord(0, new)]))
        assert stats.flip_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        stats = analyze_trace(hand_trace([]))
        assert stats.n_writes == 0
        assert stats.flip_fraction == 0.0
        assert stats.bit_position_skew == 0.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            analyze_trace(hand_trace([]), word_bytes=3)


class TestGeneratedTraces:
    def test_matches_calibration_for_mcf(self):
        trace = generate_trace("mcf", 1500, seed=0)
        stats = analyze_trace(trace)
        # The calibrated profile: sparse writes, stable footprints.
        assert 3.0 <= stats.avg_words_modified <= 8.0
        assert 5.0 <= stats.avg_bits_per_modified_word <= 11.0
        assert stats.bit_position_skew > 3.0

    def test_dense_workload_characterized(self):
        trace = generate_trace("Gems", 300, seed=0)
        stats = analyze_trace(trace)
        assert stats.avg_words_modified == pytest.approx(32.0)
        assert stats.avg_blocks_touched == pytest.approx(4.0)

    def test_summary_keys(self):
        trace = generate_trace("libq", 300, seed=0)
        summary = analyze_trace(trace).summary()
        for key in ("flip_pct", "words_per_write", "skew", "footprint"):
            assert key in summary


class TestRecommendation:
    def test_sparse_gets_deuce(self):
        trace = generate_trace("libq", 500, seed=0)
        scheme, why = recommend_scheme(analyze_trace(trace))
        assert scheme == "deuce"
        assert "sparse" in why

    def test_dense_gets_fnw(self):
        trace = generate_trace("Gems", 300, seed=0)
        scheme, _ = recommend_scheme(analyze_trace(trace))
        assert scheme == "encr-fnw"

    def test_mixed_gets_dyndeuce(self):
        trace = generate_trace("soplex", 300, seed=0)
        stats = analyze_trace(trace)
        scheme, _ = recommend_scheme(stats)
        assert scheme in ("dyndeuce", "encr-fnw")
