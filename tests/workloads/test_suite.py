"""On-disk KV request suites (:mod:`repro.workloads.suite`)."""

from __future__ import annotations

import json

import pytest

from repro.workloads.kv import KvProfile, KvRequest
from repro.workloads.suite import (
    CANNED_SUITES,
    RequestSuite,
    build_canned_suite,
    load_suite,
    record_suite,
    replay_suite,
)

PROFILE = KvProfile(
    "kv-suite-test", n_keys=256, value_bytes=64, value_sigma=0.3,
    zipf_alpha=1.0, get_weight=40.0, put_weight=60.0, cache_kb=8,
)


def assert_traces_identical(a, b):
    assert a.records == b.records
    assert a.initial == b.initial
    assert a.phases == b.phases
    assert (a.profile_name, a.seed, a.line_bytes) == (
        b.profile_name, b.seed, b.line_bytes
    )


class TestRecordReplay:
    def test_replay_is_bit_identical(self):
        suite, trace = record_suite(PROFILE, 600, seed=3)
        assert_traces_identical(replay_suite(suite, profile=PROFILE), trace)

    def test_registry_profile_by_name(self):
        suite, trace = record_suite("kv-udb", 1200, seed=5)
        assert suite.profile_name == "kv-udb"
        assert_traces_identical(replay_suite(suite), trace)

    def test_params_travel_with_the_suite(self):
        suite, trace = record_suite(
            "kv-udb", 1000, seed=2, params={"zipf_alpha": 1.6}
        )
        assert suite.params == {"zipf_alpha": 1.6}
        # replay resolves the profile with the stored overrides
        assert_traces_identical(replay_suite(suite), trace)

    def test_non_kv_workload_rejected(self):
        with pytest.raises(ValueError, match="not a KV profile"):
            record_suite("mcf", 100)


class TestPersistence:
    @pytest.mark.parametrize("ext", ["jsonl", "npz"])
    def test_save_load_replay_round_trip(self, tmp_path, ext):
        suite, trace = record_suite(PROFILE, 500, seed=7)
        path = tmp_path / f"suite.{ext}"
        suite.save(path)
        loaded = load_suite(path)
        assert loaded == suite
        assert_traces_identical(replay_suite(loaded, profile=PROFILE), trace)

    def test_jsonl_is_line_oriented_and_greppable(self, tmp_path):
        suite, _ = record_suite(PROFILE, 300, seed=1)
        path = tmp_path / "s.jsonl"
        suite.save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == "deuce-kv-suite"
        assert header["n_requests"] == len(lines) - 1
        op, key, size = json.loads(lines[1])
        assert op == "put"  # populate phase leads

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a deuce-kv-suite"):
            load_suite(path)

    def test_future_version_rejected(self, tmp_path):
        suite, _ = record_suite(PROFILE, 200, seed=0)
        header = suite._header()
        header["version"] = 99
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="unsupported suite version"):
            load_suite(path)

    def test_truncated_file_rejected(self, tmp_path):
        suite, _ = record_suite(PROFILE, 200, seed=0)
        path = tmp_path / "s.jsonl"
        suite.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(ValueError, match="truncated suite"):
            load_suite(path)


class TestCannedSuites:
    def test_recipes_record_and_replay(self):
        # etc-smoke is the shortest recipe; the others are covered by the
        # CI kv-smoke job so the unit run stays fast.
        suite, trace = build_canned_suite("etc-smoke")
        spec = CANNED_SUITES["etc-smoke"]
        assert suite.profile_name == spec["profile"]
        assert trace.n_writes == spec["n_writes"]
        assert dict(trace.phases)["steady"] > 0
        assert_traces_identical(replay_suite(suite), trace)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown canned suite"):
            build_canned_suite("nope")

    def test_all_recipes_reference_registered_profiles(self):
        from repro.workloads.kv import KV_PROFILES

        for spec in CANNED_SUITES.values():
            assert spec["profile"] in KV_PROFILES


class TestRequestSuiteValue:
    def test_requests_are_value_objects(self):
        suite = RequestSuite(
            "p", seed=0, line_bytes=64, n_writes=1,
            requests=(KvRequest("put", 3, 10),),
        )
        again = RequestSuite(
            "p", seed=0, line_bytes=64, n_writes=1,
            requests=(KvRequest("put", 3, 10),),
        )
        assert suite == again
