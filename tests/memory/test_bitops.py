"""Bit-utility tests, including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import bitops

lines = st.binary(min_size=0, max_size=64)
pairs = st.integers(min_value=1, max_value=64).flatmap(
    lambda n: st.tuples(
        st.binary(min_size=n, max_size=n), st.binary(min_size=n, max_size=n)
    )
)


class TestPopcount:
    def test_empty(self):
        assert bitops.popcount(b"") == 0

    def test_all_ones(self):
        assert bitops.popcount(b"\xff" * 4) == 32

    def test_single_bit(self):
        assert bitops.popcount(b"\x01") == 1

    @given(data=lines)
    @settings(max_examples=50, deadline=None)
    def test_matches_python_reference(self, data):
        assert bitops.popcount(data) == sum(bin(b).count("1") for b in data)


class TestBitFlips:
    def test_identical_lines_zero_flips(self):
        assert bitops.bit_flips(b"abc", b"abc") == 0

    def test_complement_flips_all(self):
        assert bitops.bit_flips(b"\x00" * 8, b"\xff" * 8) == 64

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bitops.bit_flips(b"ab", b"a")

    @given(pair=pairs)
    @settings(max_examples=50, deadline=None)
    def test_equals_popcount_of_xor(self, pair):
        a, b = pair
        assert bitops.bit_flips(a, b) == bitops.popcount(bitops.xor(a, b))

    @given(pair=pairs)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert bitops.bit_flips(a, b) == bitops.bit_flips(b, a)


class TestXor:
    def test_xor_round_trip(self):
        a, b = b"\x12\x34", b"\xab\xcd"
        assert bitops.xor(bitops.xor(a, b), b) == a

    def test_empty(self):
        assert bitops.xor(b"", b"") == b""

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bitops.xor(b"a", b"ab")


class TestChangedWords:
    def test_no_change(self):
        assert bitops.changed_words(b"abcd", b"abcd", 2) == []

    def test_single_word(self):
        assert bitops.changed_words(b"abcd", b"abce", 2) == [1]

    def test_all_words(self):
        assert bitops.changed_words(b"\x00" * 8, b"\xff" * 8, 2) == [0, 1, 2, 3]

    def test_word_size_must_divide(self):
        with pytest.raises(ValueError):
            bitops.changed_words(b"abc", b"abd", 2)

    def test_bad_word_size(self):
        with pytest.raises(ValueError):
            bitops.changed_words(b"ab", b"ab", 0)

    @given(pair=pairs, word_bytes=st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_consistent_with_flip_counts(self, pair, word_bytes):
        a, b = pair
        if len(a) % word_bytes:
            return
        changed = set(bitops.changed_words(a, b, word_bytes))
        counts = bitops.word_flip_counts(a, b, word_bytes)
        assert changed == {w for w, c in enumerate(counts) if c > 0}

    @given(
        words=st.integers(min_value=0, max_value=32),
        word_bytes=st.sampled_from([1, 2, 4, 8]),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_vectorized_matches_reference(self, words, word_bytes, data):
        """The array kernel is a drop-in for the original slice-loop."""
        n = words * word_bytes
        a = data.draw(st.binary(min_size=n, max_size=n))
        b = data.draw(st.binary(min_size=n, max_size=n))
        assert bitops.changed_words(a, b, word_bytes) == (
            bitops.changed_words_reference(a, b, word_bytes)
        )

    def test_reference_agrees_on_full_lines(self):
        rng = np.random.default_rng(7)
        for word_bytes in (1, 2, 4, 8):
            old = rng.integers(0, 256, 64, dtype=np.uint8).tobytes()
            new = bytearray(old)
            for i in rng.integers(0, 64, 5):
                new[i] ^= 0x5A
            new = bytes(new)
            assert bitops.changed_words(old, new, word_bytes) == (
                bitops.changed_words_reference(old, new, word_bytes)
            )


class TestWordFlipCounts:
    def test_counts_sum_to_total(self):
        a, b = b"\x00" * 8, b"\x0f\x00\xff\x00\x00\x00\x00\x01"
        counts = bitops.word_flip_counts(a, b, 2)
        assert sum(counts) == bitops.bit_flips(a, b)
        assert counts == [4, 8, 0, 1]


class TestBitArrays:
    def test_round_trip(self):
        data = bytes(range(16))
        assert bitops.from_bit_array(bitops.to_bit_array(data)) == data

    def test_empty(self):
        assert bitops.to_bit_array(b"").size == 0

    def test_bad_length(self):
        with pytest.raises(ValueError):
            bitops.from_bit_array(np.ones(7, dtype=np.uint8))

    def test_msb_first_convention(self):
        bits = bitops.to_bit_array(b"\x80")
        assert bits[0] == 1
        assert bits[1:].sum() == 0


class TestFlippedPositions:
    def test_positions_of_known_diff(self):
        old = b"\x00\x00"
        new = b"\x80\x01"
        positions = bitops.flipped_positions(old, new)
        assert positions.tolist() == [0, 15]

    def test_no_diff(self):
        assert bitops.flipped_positions(b"ab", b"ab").size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bitops.flipped_positions(b"a", b"ab")


class TestRotation:
    def test_zero_rotation_is_identity(self):
        data = bytes(range(8))
        assert bitops.rotate_bits(data, 0) == data

    def test_full_rotation_is_identity(self):
        data = bytes(range(8))
        assert bitops.rotate_bits(data, 64) == data

    def test_rotate_by_one(self):
        # MSB of byte 0 moves out, everything shifts left by one.
        assert bitops.rotate_bits(b"\x80\x00", 1) == b"\x00\x01"

    @given(
        data=st.binary(min_size=1, max_size=32),
        amount=st.integers(min_value=-300, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_unrotate_inverts(self, data, amount):
        rotated = bitops.rotate_bits(data, amount)
        assert bitops.unrotate_bits(rotated, amount) == data

    @given(data=st.binary(min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_rotation_preserves_popcount(self, data):
        assert bitops.popcount(bitops.rotate_bits(data, 5)) == bitops.popcount(
            data
        )


class TestInvert:
    def test_invert(self):
        assert bitops.invert(b"\x00\xff\x0f") == b"\xff\x00\xf0"

    def test_double_invert_is_identity(self):
        data = bytes(range(10))
        assert bitops.invert(bitops.invert(data)) == data

    def test_empty(self):
        assert bitops.invert(b"") == b""


class TestHammingFraction:
    def test_all_ones(self):
        assert bitops.hamming_weight_fraction(b"\xff") == 1.0

    def test_empty(self):
        assert bitops.hamming_weight_fraction(b"") == 0.0

    def test_half(self):
        assert bitops.hamming_weight_fraction(b"\x0f") == 0.5


class TestDirectionalFlips:
    def test_pure_sets(self):
        assert bitops.directional_flips(b"\x00", b"\x0f") == (4, 0)

    def test_pure_resets(self):
        assert bitops.directional_flips(b"\xff", b"\xf0") == (0, 4)

    def test_mixed(self):
        # 0b0101 -> 0b0011: one set (bit1), one reset (bit2).
        assert bitops.directional_flips(b"\x05", b"\x03") == (1, 1)

    def test_empty(self):
        assert bitops.directional_flips(b"", b"") == (0, 0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bitops.directional_flips(b"a", b"ab")

    @given(pair=pairs)
    @settings(max_examples=50, deadline=None)
    def test_sum_equals_bit_flips(self, pair):
        a, b = pair
        sets, resets = bitops.directional_flips(a, b)
        assert sets + resets == bitops.bit_flips(a, b)

    @given(pair=pairs)
    @settings(max_examples=50, deadline=None)
    def test_antisymmetry(self, pair):
        a, b = pair
        sets, resets = bitops.directional_flips(a, b)
        assert bitops.directional_flips(b, a) == (resets, sets)
