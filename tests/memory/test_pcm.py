"""PCM array tests: write-slot accounting and per-bit wear tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.pcm import (
    SLOT_BITS,
    PcmArray,
    slots_for_positions,
    slots_for_write,
)
from repro.schemes.base import WriteOutcome


def outcome(address=0, data_positions=(), meta_positions=()):
    dp = np.array(data_positions, dtype=np.int64)
    mp = np.array(meta_positions, dtype=np.int64)
    return WriteOutcome(
        address=address,
        data_flips=len(dp),
        metadata_flips=len(mp),
        flipped_data_positions=dp,
        flipped_meta_positions=mp,
    )


class TestSlotsForPositions:
    def test_no_flips_no_slots(self):
        assert slots_for_positions(np.array([], dtype=np.int64), 512) == 0

    def test_single_flip_one_slot(self):
        assert slots_for_positions(np.array([5]), 512) == 1

    def test_flips_in_one_region(self):
        assert slots_for_positions(np.array([0, 64, 127]), 512) == 1

    def test_flips_spanning_regions(self):
        assert slots_for_positions(np.array([0, 128, 256, 384]), 512) == 4

    def test_region_boundary(self):
        assert slots_for_positions(np.array([127, 128]), 512) == 2

    def test_metadata_positions_fold_into_last_region(self):
        # Positions beyond the data bits ride with the last region.
        assert slots_for_positions(np.array([512, 520]), 512) == 1
        assert slots_for_positions(np.array([384, 520]), 512) == 1


class TestSlotsForWrite:
    def test_combines_data_and_meta(self):
        out = outcome(data_positions=[0], meta_positions=[3])
        # data in region 0, meta rides region 3 -> 2 slots
        assert slots_for_write(out, 512) == 2

    def test_meta_only_write(self):
        out = outcome(meta_positions=[0, 1])
        assert slots_for_write(out, 512) == 1

    def test_encrypted_line_uses_all_slots(self):
        out = outcome(data_positions=list(range(0, 512, 2)))
        assert slots_for_write(out, 512) == 4


class TestPcmArray:
    def test_wear_accumulates_positions(self):
        pcm = PcmArray(line_bytes=64, meta_bits=0)
        pcm.apply_write(outcome(address=1, data_positions=[0, 5]))
        pcm.apply_write(outcome(address=1, data_positions=[5]))
        assert pcm.position_writes[0] == 1
        assert pcm.position_writes[5] == 2
        assert pcm.total_writes == 2
        assert pcm.total_flips == 3

    def test_meta_positions_offset_past_data(self):
        pcm = PcmArray(line_bytes=64, meta_bits=32)
        pcm.apply_write(outcome(address=0, meta_positions=[0]))
        assert pcm.position_writes[512] == 1

    def test_rotation_moves_positions(self):
        pcm = PcmArray(line_bytes=64, meta_bits=0)
        pcm.apply_write(outcome(address=0, data_positions=[0]), rotation=10)
        assert pcm.position_writes[10] == 1
        assert pcm.position_writes[0] == 0

    def test_rotation_wraps(self):
        pcm = PcmArray(line_bytes=64, meta_bits=32)
        pcm.apply_write(outcome(address=0, data_positions=[540]), rotation=10)
        assert pcm.position_writes[(540 + 10) % 544] == 1

    def test_per_line_wear(self):
        pcm = PcmArray(line_bytes=64, meta_bits=0, track_per_line=True)
        pcm.apply_write(outcome(address=7, data_positions=[3, 4]))
        wear = pcm.line_wear(7)
        assert wear[3] == 1
        assert wear[4] == 1
        assert pcm.line_wear(99).sum() == 0

    def test_per_line_disabled_raises(self):
        pcm = PcmArray(track_per_line=False)
        with pytest.raises(RuntimeError):
            pcm.line_wear(0)

    def test_summary_max_over_mean(self):
        pcm = PcmArray(line_bytes=64, meta_bits=0)
        for _ in range(4):
            pcm.apply_write(outcome(address=0, data_positions=[9]))
        summary = pcm.summary()
        assert summary.max_line_bit_writes == 4
        assert summary.max_over_mean == pytest.approx(4 / (4 / 512))

    def test_summary_empty(self):
        summary = PcmArray().summary()
        assert summary.total_writes == 0
        assert summary.max_over_mean == 0.0

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            PcmArray(line_bytes=0)
        with pytest.raises(ValueError):
            PcmArray(meta_bits=-1)

    def test_slot_bits_constant(self):
        assert SLOT_BITS == 128
