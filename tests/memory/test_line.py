"""StoredLine container tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.line import StoredLine, make_meta, meta_flips


class TestMakeMeta:
    def test_zeroed(self):
        meta = make_meta(32)
        assert meta.size == 32
        assert not meta.any()

    def test_zero_bits(self):
        assert make_meta(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_meta(-1)


class TestMetaFlips:
    def test_no_flips(self):
        assert meta_flips(make_meta(8), make_meta(8)) == 0

    def test_counts_differences(self):
        old = make_meta(8)
        new = old.copy()
        new[[1, 5]] = 1
        assert meta_flips(old, new) == 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            meta_flips(make_meta(8), make_meta(4))


class TestStoredLine:
    def test_data_coerced_to_bytes(self):
        line = StoredLine(bytearray(b"abcd"))
        assert isinstance(line.data, bytes)

    def test_bit_counts(self):
        line = StoredLine(bytes(64), make_meta(32))
        assert line.n_data_bits == 512
        assert line.n_meta_bits == 32

    def test_copy_is_independent(self):
        line = StoredLine(bytes(4), make_meta(4), counter=7)
        dup = line.copy()
        dup.meta[0] = 1
        assert line.meta[0] == 0
        assert dup.counter == 7

    def test_meta_dtype_normalized(self):
        line = StoredLine(b"ab", np.array([1, 0], dtype=np.int64))
        assert line.meta.dtype == np.uint8
