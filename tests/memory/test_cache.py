"""Write-back cache hierarchy tests."""

from __future__ import annotations

import random

import pytest

from repro.memory.cache import MemoryHierarchy, SetAssociativeCache


def make_cache(size=1024, ways=2, line=64, backing=None, sink=None):
    backing = backing if backing is not None else {}
    writebacks = []

    def fetch(addr):
        return backing.get(addr, bytes(line))

    def default_sink(addr, data):
        backing[addr] = data
        writebacks.append((addr, data))

    cache = SetAssociativeCache(
        size, ways, line, fetch, sink or default_sink, name="T"
    )
    return cache, backing, writebacks


class TestBasicOperation:
    def test_load_miss_then_hit(self):
        cache, backing, _ = make_cache()
        backing[5] = b"x" * 64
        assert cache.load(5) == b"x" * 64
        assert cache.load(5) == b"x" * 64
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_store_makes_line_dirty_and_visible(self):
        cache, _, _ = make_cache()
        cache.store(3, 0, b"hi")
        assert cache.load(3)[:2] == b"hi"

    def test_store_offset(self):
        cache, _, _ = make_cache()
        cache.store(3, 10, b"zz")
        line = cache.load(3)
        assert line[10:12] == b"zz"
        assert line[:10] == bytes(10)

    def test_store_across_line_boundary_rejected(self):
        cache, _, _ = make_cache()
        with pytest.raises(ValueError, match="line boundary"):
            cache.store(0, 63, b"ab")


class TestEviction:
    def test_lru_victim_is_evicted(self):
        # 2-way, 1024B/64B = 16 lines, 8 sets: tags t, t+8 share a set... n_sets=8.
        cache, backing, writebacks = make_cache(size=1024, ways=2)
        # Three lines mapping to set 0: line addresses 0, 8, 16.
        cache.store(0, 0, b"a")
        cache.store(8, 0, b"b")
        cache.load(0)  # make 8 the LRU
        cache.store(16, 0, b"c")  # evicts 8
        assert writebacks and writebacks[0][0] == 8
        assert backing[8][:1] == b"b"

    def test_clean_eviction_writes_nothing(self):
        cache, backing, writebacks = make_cache(size=1024, ways=2)
        backing[0] = b"x" * 64
        cache.load(0)
        cache.load(8)
        cache.load(16)  # evicts clean line 0
        assert writebacks == []

    def test_flush_writes_all_dirty(self):
        cache, backing, writebacks = make_cache()
        cache.store(1, 0, b"a")
        cache.store(2, 0, b"b")
        cache.load(3)
        assert cache.flush() == 2
        assert len(writebacks) == 2
        assert backing[1][:1] == b"a"


class TestGeometry:
    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            make_cache(size=0)
        with pytest.raises(ValueError):
            make_cache(size=100, ways=3)

    def test_set_count(self):
        cache, _, _ = make_cache(size=2048, ways=4)
        assert cache.n_sets == 8


class TestHierarchy:
    def test_final_state_equals_store_replay(self):
        """Functional fidelity: flushing the hierarchy reproduces exactly
        the result of applying every store to the initial memory."""
        rng = random.Random(0)
        n_lines = 64
        backing = {a: rng.randbytes(64) for a in range(n_lines)}
        reference = {a: bytearray(d) for a, d in backing.items()}
        sink_records = []
        hierarchy = MemoryHierarchy(
            [(512, 2), (2048, 4)],
            backing,
            writeback_sink=lambda a, d: sink_records.append((a, d)),
        )
        for _ in range(2000):
            addr = rng.randrange(n_lines * 64)
            if rng.random() < 0.5:
                data = rng.randbytes(2)
                line, off = divmod(addr, 64)
                if off > 62:
                    off = 62
                hierarchy.store(line * 64 + off, data)
                reference[line][off: off + 2] = data
            else:
                hierarchy.load(addr)
        hierarchy.flush_all()
        for addr, expected in reference.items():
            assert backing[addr] == bytes(expected), f"line {addr}"

    def test_loads_see_stores_through_all_levels(self):
        backing = {}
        hierarchy = MemoryHierarchy([(512, 2), (2048, 4)], backing, lambda a, d: None)
        hierarchy.store(100, b"hello")
        assert hierarchy.load(100)[36:41] == b"hello"

    def test_bigger_last_level_reduces_writebacks(self):
        rng = random.Random(1)
        accesses = [
            (rng.randrange(2048 * 64), rng.randbytes(2)) for _ in range(6000)
        ]

        def run(l2_size):
            backing = {}
            count = [0]
            hierarchy = MemoryHierarchy(
                [(512, 2), (l2_size, 8)],
                backing,
                lambda a, d: count.__setitem__(0, count[0] + 1),
            )
            for addr, data in accesses:
                line, off = divmod(addr, 64)
                hierarchy.store(line * 64 + min(off, 62), data)
            return count[0]

        assert run(8 * 1024) > run(96 * 1024)

    def test_requires_a_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([], {}, lambda a, d: None)
