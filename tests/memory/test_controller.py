"""SecureMemoryController facade tests."""

from __future__ import annotations

import pytest

from repro.memory.controller import SecureMemoryController
from tests.conftest import mutate_words, random_line

KEY = b"controller-key16"


@pytest.fixture
def controller():
    return SecureMemoryController(scheme="deuce", key=KEY, wear_leveling="hwl")


class TestDataPath:
    def test_install_on_first_touch(self, controller):
        data = bytes(64)
        assert controller.write(0x100, data) is None  # install
        assert controller.stats.installs == 1
        assert controller.stats.writes == 0

    def test_read_returns_written_data(self, controller, rng):
        data = random_line(rng)
        controller.write(0x100, data)
        assert controller.read(0x100) == data

    def test_writeback_returns_outcome(self, controller, rng):
        data = random_line(rng)
        controller.write(0x100, data)
        new = mutate_words(rng, data, 2)
        outcome = controller.write(0x100, new)
        assert outcome is not None
        assert outcome.total_flips > 0
        assert controller.read(0x100) == new

    def test_many_lines_round_trip(self, controller, rng):
        contents = {}
        for i in range(20):
            data = random_line(rng)
            controller.write(i * 64, data)
            contents[i * 64] = data
        for addr, data in contents.items():
            assert controller.read(addr) == data

    def test_contains(self, controller):
        assert not controller.contains(0)
        controller.write(0, bytes(64))
        assert controller.contains(0)


class TestStats:
    def test_flip_accounting(self, controller, rng):
        data = random_line(rng)
        controller.write(0, data)
        out = controller.write(0, mutate_words(rng, data, 1))
        assert controller.stats.total_flips == out.total_flips
        assert controller.stats.avg_flips_per_write == out.total_flips
        assert controller.stats.avg_slots_per_write >= 1

    def test_empty_stats(self, controller):
        assert controller.stats.avg_flips_per_write == 0.0
        assert controller.stats.avg_slots_per_write == 0.0


class TestWearAndLifetime:
    def test_lifetime_report_after_writes(self, rng):
        mc = SecureMemoryController(
            scheme="deuce", key=KEY, wear_leveling="hwl",
            region_lines=16, gap_write_interval=1,
        )
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(200):
            data = mutate_words(rng, data, 2)
            mc.write(0, data)
        report = mc.lifetime()
        assert report.normalized > 0
        assert report.perfect_leveling >= report.normalized * 0.99

    def test_wear_summary_counts(self, controller, rng):
        data = random_line(rng)
        controller.write(0, data)
        controller.write(0, mutate_words(rng, data, 1))
        assert controller.wear_summary().total_writes == 1


class TestConfiguration:
    def test_unencrypted_scheme_needs_no_key(self):
        mc = SecureMemoryController(scheme="noencr-dcw", wear_leveling="none")
        mc.write(0, bytes(64))
        assert mc.read(0) == bytes(64)

    def test_encrypted_scheme_requires_key(self):
        with pytest.raises(ValueError, match="needs a non-empty key"):
            SecureMemoryController(scheme="deuce")

    def test_unknown_wear_leveling(self):
        with pytest.raises(ValueError, match="wear_leveling"):
            SecureMemoryController(
                scheme="noencr-dcw", wear_leveling="magic"
            )

    def test_aes_pad_kind(self, rng):
        mc = SecureMemoryController(scheme="deuce", key=KEY, pad_kind="aes")
        data = random_line(rng)
        mc.write(0, data)
        new = mutate_words(rng, data, 1)
        mc.write(0, new)
        assert mc.read(0) == new

    def test_hashed_hwl_mode(self, rng):
        mc = SecureMemoryController(
            scheme="deuce", key=KEY, wear_leveling="hwl-hashed"
        )
        data = random_line(rng)
        mc.write(0, data)
        mc.write(0, mutate_words(rng, data, 1))
        assert mc.wear_summary().total_writes == 1


class TestIntegrityProtection:
    def test_honest_operation_verifies(self, rng):
        mc = SecureMemoryController(
            scheme="deuce", key=KEY, integrity=True, region_lines=64
        )
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(10):
            data = mutate_words(rng, data, 2)
            mc.write(0, data)
            assert mc.read(0) == data
        assert mc.stats.integrity_checks == 10

    def test_counter_reset_attack_detected(self, rng):
        from repro.security.merkle import IntegrityError

        mc = SecureMemoryController(
            scheme="deuce", key=KEY, integrity=True, region_lines=64
        )
        data = random_line(rng)
        mc.write(0, data)
        mc.write(0, mutate_words(rng, data, 1))
        # Adversary resets the counter stored in the (untrusted) array.
        mc.scheme._lines[0].counter = 0
        import pytest as _pytest

        with _pytest.raises(IntegrityError, match="does not match"):
            mc.read(0)

    def test_tree_capacity_enforced(self, rng):
        mc = SecureMemoryController(
            scheme="deuce", key=KEY, integrity=True, region_lines=2
        )
        mc.write(0, bytes(64))
        mc.write(64, bytes(64))
        import pytest as _pytest

        with _pytest.raises(ValueError, match="integrity tree is full"):
            mc.write(128, bytes(64))


class TestAttackDetection:
    def test_hammering_raises_flag_and_throttles(self, rng):
        mc = SecureMemoryController(
            scheme="deuce", key=KEY, attack_detection=True,
            wear_leveling="none",
        )
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(5000):
            data = mutate_words(rng, data, 1)
            mc.write(0, data)
        assert mc.under_attack
        assert mc.stats.throttle_slots > 0

    def test_detector_off_by_default(self, rng):
        mc = SecureMemoryController(scheme="deuce", key=KEY)
        data = random_line(rng)
        mc.write(0, data)
        mc.write(0, mutate_words(rng, data, 1))
        assert not mc.under_attack
        assert mc.stats.throttle_slots == 0
