"""Run ledger: manifest round-trips, queries, diff, retention GC."""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import (
    LedgerError,
    PhaseAccumulator,
    RunLedger,
    RunManifest,
    build_manifest,
    config_dict,
    config_hash,
    default_runs_dir,
    manifest_from_result,
    new_run_id,
)
from repro.obs.tracing import ListSink, Tracer
from repro.sim.config import SimConfig
from repro.sim.runner import run


def small_config(scheme: str = "deuce", workload: str = "mcf") -> SimConfig:
    return SimConfig(workload=workload, scheme=scheme, n_writes=150, seed=0)


def make_manifest(
    scheme: str = "deuce",
    workload: str = "mcf",
    kind: str = "run",
    label: str = "",
    flips_pct: float = 10.0,
) -> RunManifest:
    return build_manifest(
        kind=kind,
        label=label,
        workload=workload,
        scheme=scheme,
        n_writes=150,
        wall_time_s=0.5,
        summary={"flips_pct": flips_pct, "scheme": scheme},
    )


class TestManifest:
    def test_run_ids_sort_and_never_collide(self):
        ids = {new_run_id() for _ in range(50)}
        assert len(ids) == 50
        one = new_run_id()
        assert len(one.split("-")) == 2

    def test_config_hash_is_stable_and_json_safe(self):
        config = small_config()
        d1, d2 = config_dict(config), config_dict(config)
        assert d1 == d2
        assert isinstance(d1["key"], str)  # bytes hexified for JSON
        json.dumps(d1)
        assert config_hash(d1) == config_hash(d2)
        other = config_dict(small_config(scheme="encr-dcw"))
        assert config_hash(d1) != config_hash(other)

    def test_build_manifest_fills_provenance(self):
        manifest = make_manifest()
        assert manifest.run_id
        assert manifest.created_utc.endswith("Z")
        assert manifest.python_version.count(".") == 2
        assert manifest.numpy_version
        assert manifest.writes_per_s == pytest.approx(150 / 0.5)

    def test_manifest_from_result_carries_summary(self):
        config = small_config()
        result = run(config)
        manifest = manifest_from_result(result, config)
        assert manifest.scheme == "deuce"
        assert manifest.workload == "mcf"
        assert manifest.n_writes == 150
        assert manifest.config_hash == config_hash(config_dict(config))
        assert manifest.summary["flips_pct"] == result.summary_row()["flips_pct"]
        assert manifest.wall_time_s > 0  # runner stamps wall time

    def test_dict_round_trip_ignores_unknown_keys(self):
        manifest = make_manifest()
        data = manifest.to_dict()
        data["future_field"] = "tolerated"
        assert RunManifest.from_dict(data) == manifest


class TestRunLedger:
    def test_default_root_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("DEUCE_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert default_runs_dir() == tmp_path / "elsewhere"
        assert RunLedger().root == tmp_path / "elsewhere"

    def test_record_list_get_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        recorded = ledger.record(make_manifest())
        assert len(ledger) == 1
        listed = ledger.list()
        assert [m.run_id for m in listed] == [recorded.run_id]
        fetched = ledger.get(recorded.run_id)
        assert fetched == recorded
        # Both the index line and the per-run manifest.json exist.
        assert (ledger.root / "index.jsonl").exists()
        assert (ledger.run_dir(recorded.run_id) / "manifest.json").exists()

    def test_get_falls_back_to_index(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        recorded = ledger.record(make_manifest())
        (ledger.run_dir(recorded.run_id) / "manifest.json").unlink()
        assert ledger.get(recorded.run_id).run_id == recorded.run_id

    def test_get_unknown_run_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        with pytest.raises(LedgerError, match="not found"):
            ledger.get("nope")

    def test_artifact_text_and_copies(self, tmp_path):
        source = tmp_path / "trace.jsonl"
        source.write_text('{"type":"span"}\n')
        ledger = RunLedger(tmp_path / "runs")
        manifest = ledger.record(
            make_manifest(),
            artifacts={"trace": source},
            artifact_text={"metrics.jsonl": '{"c":1}\n'},
        )
        run_dir = ledger.run_dir(manifest.run_id)
        assert manifest.artifacts["metrics"] == "metrics.jsonl"
        assert (run_dir / "metrics.jsonl").read_text() == '{"c":1}\n'
        assert (run_dir / manifest.artifacts["trace"]).read_text() == (
            source.read_text()
        )

    def test_filters_and_latest(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(make_manifest(scheme="deuce"))
        ledger.record(make_manifest(scheme="encr-dcw"))
        newest = ledger.record(make_manifest(scheme="deuce", label="second"))
        assert len(ledger.list(scheme="deuce")) == 2
        assert len(ledger.list(scheme="encr-dcw", workload="mcf")) == 1
        assert ledger.list(workload="gems") == []
        assert ledger.latest(scheme="deuce").run_id == newest.run_id
        assert ledger.latest(scheme="ble") is None
        assert ledger.list(limit=1)[0].run_id == newest.run_id

    def test_diff_reports_numeric_deltas(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        a = ledger.record(make_manifest(flips_pct=10.0))
        b = ledger.record(make_manifest(scheme="encr-dcw", flips_pct=50.0))
        deltas = ledger.diff(a.run_id, b.run_id)
        assert deltas["flips_pct"] == {"a": 10.0, "b": 50.0, "delta": 40.0}
        assert "wall_time_s" in deltas
        # Non-numeric values that differ are surfaced with delta=None.
        assert deltas["scheme"]["delta"] is None

    def test_gc_keeps_newest_and_prunes_dirs(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        manifests = [ledger.record(make_manifest()) for _ in range(5)]
        removed = ledger.gc(keep=2)
        assert removed == [m.run_id for m in manifests[:3]]
        assert len(ledger) == 2
        kept = {m.run_id for m in ledger.list()}
        assert kept == {m.run_id for m in manifests[3:]}
        for run_id in removed:
            assert not ledger.run_dir(run_id).exists()
        assert ledger.gc(keep=2) == []  # idempotent

    def test_gc_rejects_negative_keep(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "runs").gc(keep=-1)

    def test_gc_crash_leaves_no_orphaned_dirs(self, tmp_path, monkeypatch):
        """Regression: gc once rewrote the index *before* deleting the
        pruned artifact dirs, so a crash in between leaked the dirs
        forever (no index row ever points at them again).  The fixed
        ordering deletes dirs first — a crash then leaves dangling index
        rows, which the next gc prunes."""
        from pathlib import Path

        ledger = RunLedger(tmp_path / "runs")
        manifests = [ledger.record(make_manifest()) for _ in range(4)]

        real_replace = Path.replace

        def crash_on_index_rewrite(self, target):
            if str(target).endswith("index.jsonl"):
                raise OSError("simulated crash mid-gc")
            return real_replace(self, target)

        monkeypatch.setattr(Path, "replace", crash_on_index_rewrite)
        with pytest.raises(OSError, match="simulated crash"):
            ledger.gc(keep=1)
        monkeypatch.undo()

        # Artifact dirs of the pruned runs are already gone ...
        for manifest in manifests[:3]:
            assert not ledger.run_dir(manifest.run_id).exists()
        # ... and the (dangling) index rows survive and re-prune cleanly.
        assert len(ledger) == 4
        assert ledger.gc(keep=1) == [m.run_id for m in manifests[:3]]
        assert {m.run_id for m in ledger.list()} == {manifests[3].run_id}


class TestPhaseAccumulator:
    def test_sums_span_durations_by_name(self):
        acc = PhaseAccumulator()
        tracer = Tracer(acc)
        with tracer.span("scheme.write"):
            pass
        with tracer.span("scheme.write"):
            pass
        with tracer.span("pcm.apply"):
            pass
        tracer.event("epoch.reset")  # events are not phases
        assert set(acc.totals) == {"scheme.write", "pcm.apply"}
        assert acc.totals["scheme.write"] >= 0.0

    def test_tees_records_to_inner_sink(self):
        inner = ListSink()
        tracer = Tracer(PhaseAccumulator(inner=inner))
        with tracer.span("install"):
            pass
        tracer.close()
        assert [r["name"] for r in inner.records] == ["install"]


class TestLedgerThroughRunner:
    def test_record_result_persists_a_runnable_manifest(self, tmp_path):
        config = small_config()
        result = run(config)
        ledger = RunLedger(tmp_path / "runs")
        manifest = ledger.record_result(result, config, label="unit")
        fetched = ledger.get(manifest.run_id)
        assert fetched.label == "unit"
        assert fetched.config["scheme"] == "deuce"
        assert fetched.summary["flips_pct"] > 0
