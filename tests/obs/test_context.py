"""TraceContext minting, child derivation, and wall-clock anchoring."""

from __future__ import annotations

import os
import pickle
import time

from repro.obs.context import TraceContext


class TestMinting:
    def test_new_mints_ids_and_anchor(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 16
        assert len(ctx.span_id) == 16
        assert ctx.parent_id == ""
        assert ctx.pid == os.getpid()
        assert ctx.epoch_unix > 1.6e9

    def test_new_contexts_are_distinct(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id


class TestChildAndReanchor:
    def test_child_shares_trace_and_parents_under_self(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_reanchor_keeps_ids_refreshes_clock(self):
        root = TraceContext.new()
        time.sleep(0.005)
        again = root.reanchor()
        assert again.trace_id == root.trace_id
        assert again.span_id == root.span_id
        assert again.parent_id == root.parent_id
        assert again.perf_origin > root.perf_origin


class TestAlignment:
    def test_to_wall_maps_perf_counter_onto_wall_clock(self):
        ctx = TraceContext.new()
        ts = time.perf_counter()
        wall = ctx.to_wall(ts)
        # The mapped instant must sit within a breath of time.time() now.
        assert abs(wall - time.time()) < 0.25

    def test_two_fresh_anchors_agree_on_wall_time(self):
        # Two contexts minted moments apart (stand-ins for two processes)
        # must map the same perf_counter instant to nearly the same wall
        # time — this is the property lane merging relies on.
        a = TraceContext.new()
        time.sleep(0.002)
        b = TraceContext.new()
        ts = time.perf_counter()
        assert abs(a.to_wall(ts) - b.to_wall(ts)) < 0.05


class TestSerialization:
    def test_dict_round_trip(self):
        ctx = TraceContext.new().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_picklable_for_worker_payloads(self):
        ctx = TraceContext.new()
        assert pickle.loads(pickle.dumps(ctx)) == ctx
