"""Metrics registry: instruments, snapshots, and the null backend."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("writes")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_snapshot(self):
        c = Counter("writes")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "name": "writes", "value": 3}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("epoch")
        g.set(3.0)
        g.set(7.5)
        assert g.value == 7.5
        assert g.snapshot()["value"] == 7.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("flips")
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 9.0
        assert h.mean == pytest.approx(5.0)

    def test_empty_snapshot_is_finite(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0 and snap["mean"] == 0.0


class TestTimer:
    def test_context_manager_records_duration(self):
        t = Timer("phase")
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_snapshot_type(self):
        assert Timer("x").snapshot()["type"] == "timer"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert len(m) == 1

    def test_name_collision_across_types_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("x")

    def test_snapshot_preserves_registration_order(self):
        m = MetricsRegistry()
        m.counter("b")
        m.gauge("a")
        assert [s["name"] for s in m.snapshot()] == ["b", "a"]

    def test_dump_jsonl_round_trips(self, tmp_path):
        m = MetricsRegistry()
        m.counter("writes").inc(7)
        m.timer("write_s").observe(0.25)
        path = m.dump_jsonl(tmp_path / "metrics.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0] == {"type": "counter", "name": "writes", "value": 7}
        assert parsed[1]["mean"] == pytest.approx(0.25)


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_instruments_are_shared_noops(self):
        c = NULL_METRICS.counter("writes")
        assert c is NULL_METRICS.gauge("anything")
        c.inc(100)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        with NULL_METRICS.timer("t").time():
            pass
        assert NULL_METRICS.snapshot() == []
        assert c.value == 0
