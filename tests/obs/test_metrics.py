"""Metrics registry: instruments, snapshots, and the null backend."""

from __future__ import annotations

import json
from bisect import bisect_left

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    NULL_METRICS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("writes")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_snapshot(self):
        c = Counter("writes")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "name": "writes", "value": 3}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("epoch")
        g.set(3.0)
        g.set(7.5)
        assert g.value == 7.5
        assert g.snapshot()["value"] == 7.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("flips")
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 9.0
        assert h.mean == pytest.approx(5.0)

    def test_empty_snapshot_is_finite(self):
        snap = Histogram("empty").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0 and snap["mean"] == 0.0


class TestBucketHistogram:
    def test_le_semantics_value_on_bound_counts_in_that_bucket(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 9.0):
            h.observe(v)
        assert h.counts == [2, 1, 1, 1]  # last slot = +Inf overflow
        assert h.cumulative() == [2, 3, 4, 5]

    def test_overflow_bucket_catches_values_past_last_bound(self):
        h = BucketHistogram("lat", buckets=(1.0,))
        h.observe(100.0)
        assert h.counts == [0, 1]
        assert h.quantile(0.99) == 100.0  # overflow reports observed max

    def test_empty_histogram_is_finite(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0))
        assert h.quantile(0.99) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["p99"] == 0.0

    def test_snapshot_buckets_are_cumulative_with_inf_terminal(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 1], [2.0, 2], ["+Inf", 3]]
        assert snap["type"] == "bucket_histogram"
        assert {"p50", "p95", "p99"} <= set(snap)

    def test_exemplars_link_buckets_to_trace_ids(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5, exemplar="aaa")
        h.observe(0.7, exemplar="bbb")  # same bucket: last exemplar wins
        h.observe(9.0, exemplar="slow")  # overflow bucket
        h.observe(1.5)  # no exemplar: bucket counted, nothing stored
        snap = h.snapshot()
        assert snap["exemplars"] == [
            {"le": 1.0, "value": 0.7, "trace_id": "bbb"},
            {"le": "+Inf", "value": 9.0, "trace_id": "slow"},
        ]

    def test_no_exemplars_key_when_none_recorded(self):
        h = BucketHistogram("lat", buckets=(1.0,))
        h.observe(0.5)
        assert "exemplars" not in h.snapshot()

    def test_quantile_interpolates_within_bucket(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0))
        for _ in range(100):
            h.observe(1.5)  # all mass in the (1, 2] bucket
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert 1.0 <= h.quantile(0.99) <= 2.0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BucketHistogram("x", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            BucketHistogram("x", buckets=())
        with pytest.raises(ValueError, match="finite"):
            BucketHistogram("x", buckets=(1.0, float("inf")))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            BucketHistogram("x", buckets=(1.0,)).quantile(1.5)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=9.99), min_size=1, max_size=80
        ),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_quantile_within_one_bucket_width_of_numpy(self, values, q):
        # The estimator interpolates inside the bucket holding the target
        # rank, so it can never drift more than one bucket width from the
        # rank-based reference quantile (numpy's inverted_cdf).
        buckets = (0.5, 1.0, 2.0, 4.0, 8.0, 10.0)
        h = BucketHistogram("lat", buckets=buckets)
        for v in values:
            h.observe(v)
        reference = float(np.quantile(values, q, method="inverted_cdf"))
        j = bisect_left(buckets, reference)
        width = buckets[j] - (buckets[j - 1] if j else 0.0)
        assert abs(h.quantile(q) - reference) <= width + 1e-9


class TestRegistryLabels:
    def test_same_labels_return_same_instrument(self):
        m = MetricsRegistry()
        a = m.counter("req", {"route": "/jobs"})
        assert m.counter("req", {"route": "/jobs"}) is a

    def test_different_labels_are_distinct_series(self):
        m = MetricsRegistry()
        a = m.counter("req", {"route": "/jobs"})
        b = m.counter("req", {"route": "/runs"})
        assert a is not b
        a.inc(3)
        assert b.value == 0
        assert len(m) == 2

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        a = m.counter("req", {"a": "1", "b": "2"})
        assert m.counter("req", {"b": "2", "a": "1"}) is a

    def test_snapshot_carries_labels_only_when_present(self):
        m = MetricsRegistry()
        m.counter("plain").inc()
        m.counter("tagged", {"k": "v"}).inc()
        plain, tagged = m.snapshot()
        assert "labels" not in plain
        assert tagged["labels"] == {"k": "v"}

    def test_type_collision_with_labels_rejected(self):
        m = MetricsRegistry()
        m.counter("x", {"a": "1"})
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("x", {"a": "1"})

    def test_bucket_histogram_get_or_create(self):
        m = MetricsRegistry()
        h = m.bucket_histogram("lat", buckets=(1.0, 2.0))
        assert m.bucket_histogram("lat") is h
        assert h.buckets == (1.0, 2.0)  # creation-time bounds win


class TestTimer:
    def test_context_manager_records_duration(self):
        t = Timer("phase")
        with t.time():
            pass
        assert t.count == 1
        assert t.total >= 0.0

    def test_snapshot_type(self):
        assert Timer("x").snapshot()["type"] == "timer"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert len(m) == 1

    def test_name_collision_across_types_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            m.gauge("x")

    def test_snapshot_preserves_registration_order(self):
        m = MetricsRegistry()
        m.counter("b")
        m.gauge("a")
        assert [s["name"] for s in m.snapshot()] == ["b", "a"]

    def test_dump_jsonl_round_trips(self, tmp_path):
        m = MetricsRegistry()
        m.counter("writes").inc(7)
        m.timer("write_s").observe(0.25)
        path = m.dump_jsonl(tmp_path / "metrics.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0] == {"type": "counter", "name": "writes", "value": 7}
        assert parsed[1]["mean"] == pytest.approx(0.25)


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_instruments_are_shared_noops(self):
        c = NULL_METRICS.counter("writes")
        assert c is NULL_METRICS.gauge("anything")
        c.inc(100)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        with NULL_METRICS.timer("t").time():
            pass
        assert NULL_METRICS.snapshot() == []
        assert c.value == 0
