"""Lane loading, Chrome trace-event export, and the text report."""

from __future__ import annotations

import json

import pytest

from repro.obs.context import TraceContext
from repro.obs.traceexport import (
    build_report,
    export_chrome_trace,
    load_lane,
    load_trace,
    to_chrome_trace,
)
from repro.obs.tracing import JsonlSink, Tracer


def _lane(path, ctx, name, spans, *, events=()):
    """Write one lane file with the given (name, ts, dur) spans."""
    sink = JsonlSink(path, meta={**ctx.to_dict(), "lane": name})
    tracer = Tracer(sink)
    for span_name, ts, dur in spans:
        tracer.span_event(span_name, ts, dur)
    for event_name in events:
        tracer.event(event_name)
    tracer.close()
    return ctx


class TestLoadLane:
    def test_meta_record_sets_anchor_and_identity(self, tmp_path):
        ctx = TraceContext.new()
        _lane(tmp_path / "sweep.jsonl", ctx, "sweep", [("sweep", 1.0, 2.0)])
        lane = load_lane(tmp_path / "sweep.jsonl")
        assert lane.name == "sweep"
        assert lane.trace_id == ctx.trace_id
        assert lane.span_id == ctx.span_id
        assert lane.pid == ctx.pid
        assert lane.epoch_unix == ctx.epoch_unix
        assert len(lane.records) == 1  # meta is absorbed, not a record

    def test_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "lane.jsonl"
        _lane(path, TraceContext.new(), "lane", [("a", 0.0, 1.0)])
        with open(path, "a") as fh:
            fh.write('{"type":"span","name":"torn","ts":')  # crash mid-write
        lane = load_lane(path)
        assert [r["name"] for r in lane.records] == ["a"]

    def test_reads_rotated_generations_oldest_first(self, tmp_path):
        path = tmp_path / "lane.jsonl"
        sink = JsonlSink(
            path,
            flush_every=1,
            flush_interval_s=None,
            rotate_bytes=200,
            rotate_keep=3,
            meta=TraceContext.new().to_dict(),
        )
        for i in range(30):
            sink.emit({"type": "event", "name": f"e{i}", "ts": float(i)})
        sink.close()
        names = [r["name"] for r in load_lane(path).records]
        # Ordered across generations; the newest record always survives.
        assert names == sorted(names, key=lambda n: int(n[1:]))
        assert names[-1] == "e29"


class TestLoadTrace:
    def test_directory_loads_all_lanes_roots_first(self, tmp_path):
        root = TraceContext.new()
        _lane(tmp_path / "job.jsonl", root, "job", [("job.exec", 0.0, 5.0)])
        _lane(
            tmp_path / "cell-0.jsonl",
            root.child(),
            "cell-0",
            [("cell.run", 1.0, 2.0)],
        )
        lanes = load_trace(tmp_path)
        assert [ln.name for ln in lanes] == ["job", "cell-0"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.jsonl")
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path)  # exists but holds no lane files


class TestChromeExport:
    def _trace_dir(self, tmp_path):
        root = TraceContext.new()
        _lane(
            tmp_path / "sweep.jsonl",
            root,
            "sweep",
            [("sweep", root.perf_origin, 4.0)],
        )
        for i in range(2):
            child = root.child()
            _lane(
                tmp_path / f"cell-{i}.jsonl",
                child,
                f"cell-{i}",
                [("cell.run", child.perf_origin, 1.0 + i)],
                events=("cell.start",),
            )
        return tmp_path

    def test_export_is_valid_chrome_trace_json(self, tmp_path):
        out = tmp_path / "out" / "trace.json"
        export_chrome_trace(self._trace_dir(tmp_path), out)
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        # Complete events carry microsecond ts/dur and land on a thread.
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"sweep", "cell.run"}
        assert all(e["ts"] >= 0 and e["dur"] > 0 for e in spans)
        assert trace["otherData"]["lanes"] == 3

    def test_lanes_share_one_wall_axis(self, tmp_path):
        trace = to_chrome_trace(load_trace(self._trace_dir(tmp_path)))
        spans = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        sweep = spans["sweep"]
        # Cells started after the sweep span's start on the merged axis
        # (children were minted later in wall time).
        cell_ts = [
            e["ts"]
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "cell.run"
        ]
        assert all(ts >= sweep["ts"] for ts in cell_ts)

    def test_thread_names_expose_parentage(self, tmp_path):
        trace = to_chrome_trace(load_trace(self._trace_dir(tmp_path)))
        thread_names = [
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert any("(parent " in n for n in thread_names)


class TestReport:
    def test_report_names_critical_path_and_stragglers(self, tmp_path):
        root = TraceContext.new()
        _lane(tmp_path / "sweep.jsonl", root, "sweep",
              [("sweep", root.perf_origin, 10.0)])
        durations = {"cell-0": 1.0, "cell-1": 9.0, "cell-2": 1.2}
        for name, dur in durations.items():
            child = root.child()
            _lane(tmp_path / f"{name}.jsonl", child, name,
                  [("cell.run", child.perf_origin, dur)])
        report = build_report(load_trace(tmp_path))
        assert f"trace {root.trace_id}" in report
        assert "critical path:" in report
        assert "* sweep" in report  # the root of the causality tree
        assert "<-- straggler" in report  # cell-1 is ~7x the median
        straggler_line = next(
            l for l in report.splitlines() if "<--" in l
        )
        assert "cell-1" in straggler_line

    def test_single_lane_report_has_no_straggler_table(self, tmp_path):
        ctx = TraceContext.new()
        _lane(tmp_path / "run.jsonl", ctx, "run",
              [("scheme.write", ctx.perf_origin, 0.5)])
        report = build_report(load_trace(tmp_path / "run.jsonl"))
        assert "stragglers" not in report
        assert "scheme.write" in report
