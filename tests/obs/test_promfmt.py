"""Prometheus text exposition: escaping, families, bucket rendering."""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import BucketHistogram, MetricsRegistry
from repro.obs.promfmt import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render_prometheus,
    sanitize_label_name,
    sanitize_metric_name,
)


def _samples(text: str) -> dict[str, float]:
    """``{sample_line_key: value}`` for every non-comment line."""
    out = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value)
    return out


class TestSanitization:
    def test_metric_name_invalid_chars_fold(self):
        assert sanitize_metric_name("http.request-count") == \
            "http_request_count"
        assert sanitize_metric_name("a:b_c9") == "a:b_c9"

    def test_metric_name_cannot_start_with_digit(self):
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"

    def test_label_name_has_no_colons(self):
        assert sanitize_label_name("a:b") == "a_b"
        assert sanitize_label_name("7th") == "_7th"


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_escaped_value_renders_on_one_line(self):
        m = MetricsRegistry()
        m.counter("hits", {"path": 'we"ird\nvalue'}).inc()
        text = render_prometheus(m)
        assert len(text.strip().splitlines()) == 2  # TYPE + one sample
        assert '\\"' in text and "\\n" in text


class TestFormatValue:
    @pytest.mark.parametrize(
        ("value", "expected"),
        [
            (True, "1"),
            (False, "0"),
            (42, "42"),
            (3.0, "3"),
            (0.25, "0.25"),
            (math.nan, "NaN"),
            (math.inf, "+Inf"),
            (-math.inf, "-Inf"),
        ],
    )
    def test_values(self, value, expected):
        assert format_value(value) == expected


class TestRendering:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("jobs_total", {"kind": "run"}).inc(3)
        m.gauge("depth").set(2.5)
        text = render_prometheus(m)
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="run"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert text.endswith("\n")

    def test_labels_render_sorted(self):
        m = MetricsRegistry()
        m.counter("c", {"z": "1", "a": "2"}).inc()
        assert 'c{a="2",z="1"} 1' in render_prometheus(m)

    def test_plain_histogram_becomes_summary(self):
        m = MetricsRegistry()
        h = m.histogram("phase_s")
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus(m)
        assert "# TYPE phase_s summary" in text
        samples = _samples(text)
        assert samples["phase_s_sum"] == 2.0
        assert samples["phase_s_count"] == 2

    def test_bucket_histogram_renders_cumulative_buckets(self):
        m = MetricsRegistry()
        h = m.bucket_histogram("lat", buckets=(0.1, 0.5, 1.0))
        for v in (0.05, 0.05, 0.3, 0.7, 9.0):
            h.observe(v)
        text = render_prometheus(m)
        assert "# TYPE lat histogram" in text
        samples = _samples(text)
        assert samples['lat_bucket{le="0.1"}'] == 2
        assert samples['lat_bucket{le="0.5"}'] == 3
        assert samples['lat_bucket{le="1"}'] == 4
        assert samples['lat_bucket{le="+Inf"}'] == 5
        assert samples["lat_count"] == 5
        assert samples["lat_sum"] == pytest.approx(10.1)

    def test_bucket_counts_are_monotone_nondecreasing(self):
        h = BucketHistogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        text = render_prometheus([h.snapshot()])
        cums = [
            float(line.rpartition(" ")[2])
            for line in text.splitlines()
            if "_bucket" in line
        ]
        assert cums == sorted(cums)

    def test_family_grouping_keeps_samples_contiguous(self):
        # Label variants registered interleaved with another family must
        # still render under a single # TYPE line.
        m = MetricsRegistry()
        m.counter("req", {"route": "/a"}).inc()
        m.gauge("depth").set(1)
        m.counter("req", {"route": "/b"}).inc(2)
        text = render_prometheus(m)
        assert text.count("# TYPE req counter") == 1
        lines = text.strip().splitlines()
        i = lines.index("# TYPE req counter")
        assert lines[i + 1].startswith("req{")
        assert lines[i + 2].startswith("req{")

    def test_snapshot_list_and_registry_agree(self):
        m = MetricsRegistry()
        m.counter("c").inc(5)
        assert render_prometheus(m) == render_prometheus(m.snapshot())

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_monotonic_across_scrapes(self):
        m = MetricsRegistry()
        c = m.counter("events_total")
        c.inc(3)
        first = _samples(render_prometheus(m))
        c.inc(2)
        second = _samples(render_prometheus(m))
        for key, value in first.items():
            assert second[key] >= value
        assert second["events_total"] == 5

    def test_content_type_pins_exposition_version(self):
        assert re.search(r"version=0\.0\.4", CONTENT_TYPE)
