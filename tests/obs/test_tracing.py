"""Tracer spans/events and the JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_span_records_name_timing_and_attrs(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("install", lines=12):
            pass
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "install"
        assert record["lines"] == 12
        assert record["dur"] >= 0.0

    def test_span_event_uses_given_timing(self):
        sink = ListSink()
        Tracer(sink).span_event("scheme.write", 10.0, 0.5, write=3)
        assert sink.records[0]["ts"] == 10.0
        assert sink.records[0]["dur"] == 0.5
        assert sink.records[0]["write"] == 3

    def test_event_is_instant(self):
        sink = ListSink()
        Tracer(sink).event("epoch.reset", write=64, addr=0x40)
        (record,) = sink.records
        assert record["type"] == "event"
        assert "dur" not in record
        assert record["addr"] == 0x40

    def test_spans_emitted_in_completion_order(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r["name"] for r in sink.records] == ["inner", "outer"]


class TestJsonlSink:
    def test_every_line_parses(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("a", k=1):
                tracer.event("b")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"a", "b"}

    def test_tracer_close_closes_sink(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink)
        tracer.event("x")
        tracer.close()
        assert sink._fh.closed


class TestJsonlSinkBuffering:
    def test_records_buffer_until_batch_size(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=3, flush_interval_s=None)
        sink.emit({"n": 1})
        sink.emit({"n": 2})
        assert path.read_text() == ""  # still buffered
        sink.emit({"n": 3})  # batch boundary
        assert len(path.read_text().splitlines()) == 3
        sink.close()

    def test_close_flushes_partial_buffer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=None)
        sink.emit({"n": 1})
        sink.close()
        assert json.loads(path.read_text()) == {"n": 1}

    def test_interval_forces_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=0.0)
        sink.emit({"n": 1})  # interval 0: every emit flushes
        assert len(path.read_text().splitlines()) == 1
        sink.close()

    def test_explicit_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, flush_every=1000,
                       flush_interval_s=None) as sink:
            sink.emit({"n": 7})
            sink.flush()
            assert len(path.read_text().splitlines()) == 1


class TestJsonlSinkRotation:
    def test_rotation_caps_growth_and_keeps_two_generations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1, flush_interval_s=None,
                         rotate_bytes=64)
        for i in range(20):
            sink.emit({"n": i, "pad": "x" * 10})
        sink.close()
        assert sink.rotated_path.exists()
        assert path.stat().st_size <= 64 + 32  # one batch of slack
        # Every surviving line still parses; newest records are in `path`.
        current = [json.loads(l) for l in path.read_text().splitlines()]
        rotated = [
            json.loads(l) for l in sink.rotated_path.read_text().splitlines()
        ]
        assert current and rotated
        assert current[-1]["n"] == 19
        assert rotated[-1]["n"] == current[0]["n"] - 1

    def test_oversized_single_batch_never_rotates_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=None,
                         rotate_bytes=8)
        sink.emit({"big": "y" * 100})
        sink.close()
        assert not sink.rotated_path.exists()
        assert json.loads(path.read_text())["big"] == "y" * 100

    def test_rotation_disabled_by_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, flush_every=1, flush_interval_s=None) as sink:
            for i in range(100):
                sink.emit({"n": i})
        assert not sink.rotated_path.exists()
        assert len(path.read_text().splitlines()) == 100

    def test_negative_rotate_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_bytes"):
            JsonlSink(tmp_path / "t.jsonl", rotate_bytes=-1)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", a=1):
            NULL_TRACER.event("ignored")
        NULL_TRACER.span_event("x", 0.0, 0.0)
        NULL_TRACER.close()
