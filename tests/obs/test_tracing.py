"""Tracer spans/events and the JSONL sink."""

from __future__ import annotations

import json

from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_span_records_name_timing_and_attrs(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("install", lines=12):
            pass
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "install"
        assert record["lines"] == 12
        assert record["dur"] >= 0.0

    def test_span_event_uses_given_timing(self):
        sink = ListSink()
        Tracer(sink).span_event("scheme.write", 10.0, 0.5, write=3)
        assert sink.records[0]["ts"] == 10.0
        assert sink.records[0]["dur"] == 0.5
        assert sink.records[0]["write"] == 3

    def test_event_is_instant(self):
        sink = ListSink()
        Tracer(sink).event("epoch.reset", write=64, addr=0x40)
        (record,) = sink.records
        assert record["type"] == "event"
        assert "dur" not in record
        assert record["addr"] == 0x40

    def test_spans_emitted_in_completion_order(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r["name"] for r in sink.records] == ["inner", "outer"]


class TestJsonlSink:
    def test_every_line_parses(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("a", k=1):
                tracer.event("b")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"a", "b"}

    def test_tracer_close_closes_sink(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink)
        tracer.event("x")
        tracer.close()
        assert sink._fh.closed


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", a=1):
            NULL_TRACER.event("ignored")
        NULL_TRACER.span_event("x", 0.0, 0.0)
        NULL_TRACER.close()
