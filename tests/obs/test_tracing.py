"""Tracer spans/events and the JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
)


class TestTracer:
    def test_span_records_name_timing_and_attrs(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("install", lines=12):
            pass
        (record,) = sink.records
        assert record["type"] == "span"
        assert record["name"] == "install"
        assert record["lines"] == 12
        assert record["dur"] >= 0.0

    def test_span_event_uses_given_timing(self):
        sink = ListSink()
        Tracer(sink).span_event("scheme.write", 10.0, 0.5, write=3)
        assert sink.records[0]["ts"] == 10.0
        assert sink.records[0]["dur"] == 0.5
        assert sink.records[0]["write"] == 3

    def test_event_is_instant(self):
        sink = ListSink()
        Tracer(sink).event("epoch.reset", write=64, addr=0x40)
        (record,) = sink.records
        assert record["type"] == "event"
        assert "dur" not in record
        assert record["addr"] == 0x40

    def test_spans_emitted_in_completion_order(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r["name"] for r in sink.records] == ["inner", "outer"]


def _records(path):
    """All parsed records in a lane file, excluding the meta header."""
    return [
        r
        for r in (json.loads(l) for l in path.read_text().splitlines())
        if r.get("type") != "meta"
    ]


class TestJsonlSink:
    def test_every_line_parses(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("a", k=1):
                tracer.event("b")
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(records) == 3  # meta + span + event
        assert {r["name"] for r in records if r["type"] != "meta"} == {"a", "b"}

    def test_opens_with_meta_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonlSink(path).close()
        (meta,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert meta["type"] == "meta"
        assert meta["pid"] == __import__("os").getpid()
        assert meta["epoch_unix"] > 1.6e9  # a sane unix wall clock
        assert meta["perf_origin"] >= 0.0

    def test_caller_meta_merges_and_wins(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonlSink(path, meta={"lane": "sweep", "pid": 42}).close()
        (meta,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert meta["lane"] == "sweep"
        assert meta["pid"] == 42  # caller override beats the default
        assert "epoch_unix" in meta

    def test_tracer_close_closes_sink(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink)
        tracer.event("x")
        tracer.close()
        assert sink._fh.closed


class TestJsonlSinkBuffering:
    def test_records_buffer_until_batch_size(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=3, flush_interval_s=None)
        sink.emit({"n": 1})
        sink.emit({"n": 2})
        assert _records(path) == []  # still buffered (only the meta header)
        sink.emit({"n": 3})  # batch boundary
        assert len(_records(path)) == 3
        sink.close()

    def test_close_flushes_partial_buffer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=None)
        sink.emit({"n": 1})
        sink.close()
        assert _records(path) == [{"n": 1}]

    def test_interval_forces_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=0.0)
        sink.emit({"n": 1})  # interval 0: every emit flushes
        assert len(_records(path)) == 1
        sink.close()

    def test_explicit_flush(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, flush_every=1000,
                       flush_interval_s=None) as sink:
            sink.emit({"n": 7})
            sink.flush()
            assert len(_records(path)) == 1


class TestJsonlSinkRotation:
    def test_rotation_caps_growth_and_keeps_two_generations(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1, flush_interval_s=None,
                         rotate_bytes=220)
        meta_len = len(sink._meta_line)
        for i in range(20):
            sink.emit({"n": i, "pad": "x" * 10})
        sink.close()
        assert sink.rotated_path.exists()
        # Cap + the re-emitted meta header + one batch of slack.
        assert path.stat().st_size <= 220 + meta_len + 32
        # Every surviving line still parses; newest records are in `path`.
        current = _records(path)
        rotated = _records(sink.rotated_path)
        assert current and rotated
        assert current[-1]["n"] == 19
        assert rotated[-1]["n"] == current[0]["n"] - 1

    def test_multi_generation_rotation_under_buffered_writes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=4, flush_interval_s=None,
                         rotate_bytes=120, rotate_keep=3)
        for i in range(40):
            sink.emit({"n": i})
        sink.close()
        generations = [sink.generation_path(n) for n in (1, 2, 3)]
        assert all(g.exists() for g in generations)
        assert not sink.generation_path(4).exists()  # oldest dropped
        # Each surviving file opens with its own meta anchor, and record
        # order is preserved across the generation chain (oldest .3 ->
        # newest in the current file).
        ordered = []
        for p in (generations[2], generations[1], generations[0], path):
            first = json.loads(p.read_text().splitlines()[0])
            assert first["type"] == "meta"
            ordered.extend(r["n"] for r in _records(p))
        assert ordered == sorted(ordered)
        assert ordered[-1] == 39

    def test_oversized_single_batch_never_rotates_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1000, flush_interval_s=None,
                         rotate_bytes=8)
        sink.emit({"big": "y" * 100})
        sink.close()
        assert not sink.rotated_path.exists()
        (record,) = _records(path)
        assert record["big"] == "y" * 100

    def test_rotation_disabled_by_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, flush_every=1, flush_interval_s=None) as sink:
            for i in range(100):
                sink.emit({"n": i})
        assert not sink.rotated_path.exists()
        assert len(_records(path)) == 100

    def test_negative_rotate_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_bytes"):
            JsonlSink(tmp_path / "t.jsonl", rotate_bytes=-1)

    def test_rotate_keep_below_one_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_keep"):
            JsonlSink(tmp_path / "t.jsonl", rotate_keep=0)


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("anything", a=1):
            NULL_TRACER.event("ignored")
        NULL_TRACER.span_event("x", 0.0, 0.0)
        NULL_TRACER.close()
