"""Progress tally, formatting, and the in-place line renderer."""

from __future__ import annotations

import io

from repro.obs.progress import (
    DONE,
    HEARTBEAT,
    START,
    ProgressEvent,
    ProgressRenderer,
    ProgressState,
    format_eta,
    format_progress,
)


def ev(kind: str, cell: int, writes_done: int = 0, n_writes: int = 100):
    return ProgressEvent(
        kind=kind,
        cell=cell,
        n_cells=4,
        writes_done=writes_done,
        n_writes=n_writes,
        workload="mcf",
        scheme="deuce",
    )


class TestProgressState:
    def test_lifecycle_tally(self):
        state = ProgressState()
        state.apply(ev(START, 0))
        state.apply(ev(START, 1))
        assert state.n_cells == 4
        assert len(state.in_flight) == 2
        state.apply(ev(HEARTBEAT, 0, writes_done=50))
        assert state.in_flight[0] == (50, 100)
        state.apply(ev(DONE, 0, writes_done=100))
        assert state.done == 1
        assert 0 not in state.in_flight

    def test_completed_cells_gives_fractional_credit(self):
        state = ProgressState()
        state.apply(ev(START, 0))
        state.apply(ev(DONE, 0, writes_done=100))
        state.apply(ev(START, 1))
        state.apply(ev(HEARTBEAT, 1, writes_done=25))
        assert state.completed_cells == 1.25

    def test_eta_projects_linearly(self):
        state = ProgressState()
        state.apply(ev(START, 0))
        state.apply(ev(DONE, 0, writes_done=100))
        # 1 of 4 cells in 10s -> 30s remain.
        assert state.eta_seconds(10.0) == 30.0

    def test_eta_none_before_any_signal(self):
        state = ProgressState()
        assert state.eta_seconds(5.0) is None
        state.apply(ev(START, 0))
        assert state.eta_seconds(5.0) is None


class TestFormatting:
    def test_format_eta(self):
        assert format_eta(12.4) == "ETA 12s"
        assert format_eta(120.0) == "ETA 2.0m"
        assert format_eta(2 * 3600.0) == "ETA 2.0h"

    def test_format_eta_unknown_renders_placeholder(self):
        # None (no signal yet) and absurd projections must render the
        # placeholder, not crash or print multi-day garbage.
        assert format_eta(None) == "ETA --:--"
        assert format_eta(float("nan")) == "ETA --:--"
        assert format_eta(float("inf")) == "ETA --:--"
        assert format_eta(-1.0) == "ETA --:--"
        assert format_eta(100 * 3600.0) == "ETA --:--"
        # The 99h boundary itself is still rendered.
        assert format_eta(99 * 3600.0) == "ETA 99.0h"

    def test_format_progress_zero_completed(self):
        # Zero cells and zero completions: 0% and the ETA placeholder.
        line = format_progress(ProgressState(), 5.0)
        assert line == "[0/0 done, 0 in-flight, 0% | ETA --:--]"

    def test_format_progress_line(self):
        state = ProgressState()
        state.apply(ev(START, 0))
        state.apply(ev(DONE, 0, writes_done=100))
        state.apply(ev(START, 1))
        line = format_progress(state, 10.0, label="fig10")
        assert line == "[fig10  1/4 done, 1 in-flight, 25% | ETA 30s]"

    def test_format_progress_without_label(self):
        line = format_progress(ProgressState(), 0.0)
        assert line.startswith("[0/0 done")


class TestProgressRenderer:
    def _renderer(
        self, min_redraw_s: float = 0.0, interactive: bool | None = True
    ):
        stream = io.StringIO()
        now = [0.0]
        renderer = ProgressRenderer(
            label="x",
            stream=stream,
            clock=lambda: now[0],
            min_redraw_s=min_redraw_s,
            interactive=interactive,
        )
        return renderer, stream, now

    def test_draws_carriage_return_lines_and_final_newline(self):
        renderer, stream, _ = self._renderer()
        renderer(ev(START, 0))
        renderer(ev(DONE, 0, writes_done=100))
        renderer.close()
        out = stream.getvalue()
        assert out.count("\r") == 2
        assert out.endswith("1/4 done, 0 in-flight, 25% | ETA 0s]\n")

    def test_heartbeats_are_throttled_but_transitions_draw(self):
        renderer, stream, now = self._renderer(min_redraw_s=1.0)
        renderer(ev(START, 0))
        renderer(ev(HEARTBEAT, 0, writes_done=10))  # within 1s: suppressed
        renderer(ev(HEARTBEAT, 0, writes_done=20))
        assert stream.getvalue().count("\r") == 1
        now[0] = 2.0
        renderer(ev(HEARTBEAT, 0, writes_done=30))  # past the floor: drawn
        assert stream.getvalue().count("\r") == 2
        renderer(ev(DONE, 0, writes_done=100))  # terminal: always drawn
        assert stream.getvalue().count("\r") == 3
        # Suppressed heartbeats still update the tally.
        assert renderer.state.done == 1

    def test_close_without_drawing_writes_nothing(self):
        renderer, stream, _ = self._renderer()
        renderer.close()
        assert stream.getvalue() == ""

    def test_non_tty_stream_degrades_to_line_per_event(self):
        # StringIO.isatty() is False, so auto-detection must pick the
        # newline mode: no carriage returns, one line per drawn event.
        renderer, stream, now = self._renderer(interactive=None)
        assert renderer.interactive is False
        renderer(ev(START, 0))
        now[0] = 5.0
        renderer(ev(DONE, 0, writes_done=100))
        renderer.close()
        out = stream.getvalue()
        assert "\r" not in out
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[x  ") for line in lines)
        assert out.endswith("]\n")  # close() adds nothing extra

    def test_non_tty_floors_heartbeat_redraws(self):
        renderer, stream, now = self._renderer(
            min_redraw_s=0.0, interactive=None
        )
        renderer(ev(START, 0))
        renderer(ev(HEARTBEAT, 0, writes_done=10))  # within 1s: suppressed
        assert len(stream.getvalue().splitlines()) == 1
        now[0] = 2.0
        renderer(ev(HEARTBEAT, 0, writes_done=20))  # past the floor: drawn
        assert len(stream.getvalue().splitlines()) == 2
