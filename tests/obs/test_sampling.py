"""Interval sampler: deltas, tail handling, and row flattening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.pcm import PcmArray
from repro.obs.sampling import IntervalSampler, TimeSeries
from repro.sim.results import RunResult


def make_result(**kw) -> RunResult:
    defaults = dict(
        workload="mcf", scheme="deuce", n_writes=100, line_bits=512, meta_bits=32
    )
    defaults.update(kw)
    return RunResult(**defaults)


class FakeCache:
    def __init__(self):
        self.hits = 0
        self.misses = 0


class TestIntervalSampler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(0, make_result(), PcmArray())

    def test_samples_are_deltas_not_cumulative(self):
        result = make_result()
        pcm = PcmArray(track_per_line=False)
        cache = FakeCache()
        sampler = IntervalSampler(10, result, pcm, cache)

        result.total_flips = 100
        result.data_flips = 90
        result.meta_flips = 10
        cache.hits, cache.misses = 6, 4
        first = sampler.record(10)
        assert first.flips == 100
        assert first.pad_hit_rate == pytest.approx(0.6)

        result.total_flips = 130
        result.data_flips = 115
        result.meta_flips = 15
        cache.hits, cache.misses = 10, 10
        second = sampler.record(20)
        assert second.flips == 30
        assert second.data_flips == 25
        assert second.pad_hits == 4 and second.pad_misses == 6
        assert second.interval_writes == 10

    def test_mode_deltas_track_histogram_changes(self):
        result = make_result()
        sampler = IntervalSampler(5, result, PcmArray(track_per_line=False))
        result.mode_histogram["deuce"] += 5
        s1 = sampler.record(5)
        assert s1.mode_deltas == {"deuce": 5}
        result.mode_histogram["deuce"] += 2
        result.mode_histogram["fnw"] += 3
        s2 = sampler.record(10)
        assert s2.mode_deltas == {"deuce": 2, "fnw": 3}

    def test_wear_percentiles_read_pcm_profile(self):
        result = make_result()
        pcm = PcmArray(track_per_line=False)
        pcm.position_writes[:] = np.arange(pcm.bits_per_line)
        sampler = IntervalSampler(1, result, pcm)
        s = sampler.record(1)
        assert s.wear_max == pcm.bits_per_line - 1
        assert s.wear_p50 == pytest.approx((pcm.bits_per_line - 1) / 2)
        assert s.wear_p50 <= s.wear_p90 <= s.wear_p99 <= s.wear_max

    def test_finalize_emits_partial_tail_once(self):
        result = make_result()
        sampler = IntervalSampler(10, result, PcmArray(track_per_line=False))
        sampler.on_write(10)
        result.total_flips = 7
        series = sampler.finalize(13)
        assert [s.write_index for s in series] == [10, 13]
        assert series.samples[-1].interval_writes == 3
        assert series.samples[-1].flips == 7
        # A run that ends exactly on a boundary gets no empty tail.
        assert len(sampler.finalize(13)) == 2

    def test_on_write_only_fires_on_boundaries(self):
        result = make_result()
        sampler = IntervalSampler(4, result, PcmArray(track_per_line=False))
        for i in range(1, 9):
            sampler.on_write(i)
        assert [s.write_index for s in sampler.series] == [4, 8]


class TestTimeSeries:
    def _series(self) -> TimeSeries:
        result = make_result()
        pcm = PcmArray(track_per_line=False)
        sampler = IntervalSampler(10, result, pcm)
        result.total_flips = 40
        result.mode_histogram["deuce"] += 10
        sampler.record(10)
        result.total_flips = 100
        result.mode_histogram["fnw"] += 4
        sampler.record(20)
        return sampler.series

    def test_total_reconciles(self):
        series = self._series()
        assert series.total("flips") == 100
        assert series.mode_totals() == {"deuce": 10, "fnw": 4}

    def test_rows_have_uniform_columns(self):
        rows = self._series().as_rows()
        assert len(rows) == 2
        assert set(rows[0]) == set(rows[1])
        assert rows[0]["mode_deuce"] == 10
        assert rows[0]["mode_fnw"] == 0
        assert rows[1]["mode_fnw"] == 4
        assert rows[1]["flip_rate"] == pytest.approx(6.0)
