"""Regression gate: tolerance math, missing baselines, pinning."""

from __future__ import annotations

import json

import pytest

from repro.obs.gate import (
    GateError,
    check_flips,
    check_perf,
    evaluate_gate,
    load_baselines,
    pin_baselines,
)
from repro.obs.ledger import RunLedger, build_manifest


def manifest_for(
    scheme: str,
    flips_pct: float | None = 10.0,
    workload: str = "mcf",
    wall_time_s: float = 1.0,
):
    summary = {} if flips_pct is None else {"flips_pct": flips_pct}
    return build_manifest(
        kind="run",
        workload=workload,
        scheme=scheme,
        n_writes=2000,
        wall_time_s=wall_time_s,
        summary=summary,
    )


def write_baselines(
    directory,
    schemes: dict[str, float],
    tolerance_pct: float = 2.0,
    min_writes_per_s: float | None = 500.0,
):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "flip_rates.json").write_text(
        json.dumps(
            {
                "suite": {"workload": "mcf", "n_writes": 2000, "seed": 0},
                "schemes": {
                    s: {"flips_pct": v, "tolerance_pct": tolerance_pct}
                    for s, v in schemes.items()
                },
            }
        )
    )
    if min_writes_per_s is not None:
        (directory / "perf.json").write_text(
            json.dumps({"min_writes_per_s": min_writes_per_s})
        )
    return directory


class TestToleranceMath:
    def test_pass_inside_band(self):
        baseline = {"flips_pct": 10.0, "tolerance_pct": 2.0}
        for value in (8.0, 10.0, 12.0, 9.3):
            check = check_flips(manifest_for("deuce", value), baseline)
            assert check.passed, value
            assert (check.lo, check.hi) == (8.0, 12.0)

    def test_fail_outside_band(self):
        baseline = {"flips_pct": 10.0, "tolerance_pct": 2.0}
        for value in (7.99, 12.01, 50.0, 0.0):
            check = check_flips(manifest_for("deuce", value), baseline)
            assert not check.passed, value
            assert "FAIL" in check.render()

    def test_tolerance_scale_widens_or_tightens(self):
        baseline = {"flips_pct": 10.0, "tolerance_pct": 2.0}
        drifted = manifest_for("deuce", 13.0)  # outside +/-2, inside +/-4
        assert not check_flips(drifted, baseline).passed
        assert check_flips(drifted, baseline, tolerance_scale=2.0).passed
        exact = manifest_for("deuce", 10.0005)
        assert not check_flips(
            exact, baseline, tolerance_scale=0.0001
        ).passed

    def test_missing_flips_metric_is_an_error(self):
        with pytest.raises(GateError, match="flips_pct"):
            check_flips(
                manifest_for("deuce", None), {"flips_pct": 10.0}
            )

    def test_perf_floor(self):
        fast = manifest_for("deuce", wall_time_s=0.1)  # 20k writes/s
        slow = manifest_for("deuce", wall_time_s=100.0)  # 20 writes/s
        assert check_perf(fast, 500.0).passed
        assert not check_perf(slow, 500.0).passed


class TestEvaluateGate:
    def test_missing_baseline_file_is_explicit_error(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        with pytest.raises(GateError, match="missing baseline file"):
            evaluate_gate(ledger, baselines_dir=tmp_path / "nope")
        with pytest.raises(GateError):
            load_baselines(tmp_path / "nope")

    def test_empty_schemes_is_an_error(self, tmp_path):
        directory = tmp_path / "baselines"
        directory.mkdir()
        (directory / "flip_rates.json").write_text('{"schemes": {}}')
        with pytest.raises(GateError, match="no 'schemes'"):
            load_baselines(directory)

    def test_gates_latest_run_per_scheme(self, tmp_path):
        baselines = write_baselines(tmp_path / "b", {"deuce": 10.0})
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(manifest_for("deuce", 55.0))  # stale regression
        ledger.record(manifest_for("deuce", 10.5, wall_time_s=0.1))  # newest
        report = evaluate_gate(ledger, baselines_dir=baselines)
        assert report.passed
        assert [c.kind for c in report.checks] == ["flips", "perf"]

    def test_regression_fails_and_reports(self, tmp_path):
        baselines = write_baselines(tmp_path / "b", {"deuce": 10.0})
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(manifest_for("deuce", 30.0, wall_time_s=0.1))
        report = evaluate_gate(ledger, baselines_dir=baselines)
        assert not report.passed
        assert len(report.failures) == 1
        assert "REGRESSION" in report.render()

    def test_no_matching_run_is_an_error(self, tmp_path):
        baselines = write_baselines(tmp_path / "b", {"deuce": 10.0})
        ledger = RunLedger(tmp_path / "runs")
        with pytest.raises(GateError, match="no ledger run"):
            evaluate_gate(ledger, baselines_dir=baselines)
        # A run for the wrong workload doesn't satisfy the suite pin.
        ledger.record(manifest_for("deuce", 10.0, workload="gems"))
        with pytest.raises(GateError):
            evaluate_gate(ledger, baselines_dir=baselines)

    def test_explicit_run_ids_without_baseline_entry_error(self, tmp_path):
        baselines = write_baselines(tmp_path / "b", {"deuce": 10.0})
        ledger = RunLedger(tmp_path / "runs")
        good = ledger.record(manifest_for("deuce", 10.0, wall_time_s=0.1))
        orphan = ledger.record(manifest_for("ble", 3.0))
        report = evaluate_gate(
            ledger, baselines_dir=baselines, run_ids=[good.run_id]
        )
        assert report.passed
        with pytest.raises(GateError, match="no baseline entry"):
            evaluate_gate(
                ledger, baselines_dir=baselines, run_ids=[orphan.run_id]
            )


class TestPinBaselines:
    def test_pin_rewrites_measurements_only(self, tmp_path):
        baselines = write_baselines(
            tmp_path / "b", {"deuce": 99.0}, tolerance_pct=1.5
        )
        ledger = RunLedger(tmp_path / "runs")
        manifest = ledger.record(manifest_for("deuce", 10.609))
        path = pin_baselines(ledger, baselines_dir=baselines)
        pinned = json.loads(path.read_text())
        entry = pinned["schemes"]["deuce"]
        assert entry["flips_pct"] == 10.609
        assert entry["tolerance_pct"] == 1.5  # preserved, never auto-rewritten
        assert entry["pinned_run_id"] == manifest.run_id
        # The freshly pinned baselines gate clean by construction.
        assert evaluate_gate(ledger, baselines_dir=baselines).passed

    def test_pin_without_runs_is_an_error(self, tmp_path):
        baselines = write_baselines(tmp_path / "b", {"deuce": 10.0})
        with pytest.raises(GateError, match="cannot pin"):
            pin_baselines(RunLedger(tmp_path / "runs"), baselines_dir=baselines)


class TestRepoBaselines:
    def test_checked_in_baselines_are_loadable(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        baselines = load_baselines(root / "baselines")
        schemes = baselines["flips"]["schemes"]
        assert "deuce" in schemes and "encr-dcw" in schemes
        for entry in schemes.values():
            assert 0.0 < entry["flips_pct"] < 100.0
            assert entry["tolerance_pct"] > 0
        # The paper's headline ordering is pinned: DEUCE far below Encr.
        assert (
            schemes["deuce"]["flips_pct"]
            < schemes["encr-fnw"]["flips_pct"]
            < schemes["encr-dcw"]["flips_pct"]
        )
        assert float(baselines["perf"]["min_writes_per_s"]) > 0
