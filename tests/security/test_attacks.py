"""Attack-model tests: which encryption configuration defeats which attack."""

from __future__ import annotations

import pytest

from repro.crypto.pads import Blake2PadSource
from repro.memory import bitops
from repro.security.attacks import (
    AddressTweakedMemory,
    BusSnooper,
    CounterModeMemory,
    CounterResetMemory,
    GlobalKeyMemory,
)

KEY = b"attack-demo-key!"
SECRET = b"top secret data!" * 4


@pytest.fixture
def pads():
    return Blake2PadSource(KEY)


class TestDictionaryAttack:
    def test_global_key_leaks_equal_lines(self, pads):
        mem = GlobalKeyMemory(pads)
        mem.write(0x00, SECRET)
        mem.write(0x40, SECRET)  # same plaintext elsewhere
        mem.write(0x80, bytes(64))
        groups = mem.snapshot().equal_content_groups()
        assert [0x00, 0x40] in groups

    def test_address_tweak_defeats_dictionary_attack(self, pads):
        mem = AddressTweakedMemory(pads)
        mem.write(0x00, SECRET)
        mem.write(0x40, SECRET)
        assert mem.snapshot().equal_content_groups() == []

    def test_counter_mode_defeats_dictionary_attack(self, pads):
        mem = CounterModeMemory(pads)
        mem.write(0x00, SECRET)
        mem.write(0x40, SECRET)
        assert mem.snapshot().equal_content_groups() == []


class TestBusSnooping:
    def _drive(self, mem, snooper, values):
        for value in values:
            snooper.observe(0x40, mem.write(0x40, value))

    def test_address_tweak_leaks_value_recurrence(self, pads):
        mem = AddressTweakedMemory(pads)
        snooper = BusSnooper()
        self._drive(mem, snooper, [SECRET, bytes(64), SECRET])
        # The snooper sees the first ciphertext repeat: the value came back.
        assert snooper.repeated_ciphertexts(0x40) == 1

    def test_counter_mode_hides_value_recurrence(self, pads):
        mem = CounterModeMemory(pads)
        snooper = BusSnooper()
        self._drive(mem, snooper, [SECRET, bytes(64), SECRET])
        assert snooper.repeated_ciphertexts(0x40) == 0

    def test_counter_mode_consecutive_ciphertexts_look_random(self, pads):
        mem = CounterModeMemory(pads)
        snooper = BusSnooper()
        # Identical plaintext on every write; XOR of ciphertexts is the XOR
        # of two fresh pads — about half the bits set.
        self._drive(mem, snooper, [SECRET] * 5)
        for diff in snooper.xor_pairs(0x40):
            weight = bitops.hamming_weight_fraction(diff)
            assert 0.38 <= weight <= 0.62


class TestPadReuseExploit:
    def test_counter_reset_leaks_plaintext_xor(self, pads):
        """Footnote 1: resetting the counter makes pad reuse exploitable."""
        mem = CounterResetMemory(pads)
        snooper = BusSnooper()
        a = SECRET
        b = bytes(64)
        snooper.observe(0x40, mem.write(0x40, a))
        snooper.observe(0x40, mem.write(0x40, b))
        leaked = snooper.xor_pairs(0x40)[0]
        assert leaked == bitops.xor(a, b)  # attacker recovers the data diff

    def test_proper_counter_mode_does_not_leak_xor(self, pads):
        mem = CounterModeMemory(pads)
        snooper = BusSnooper()
        a, b = SECRET, bytes(64)
        snooper.observe(0x40, mem.write(0x40, a))
        snooper.observe(0x40, mem.write(0x40, b))
        assert snooper.xor_pairs(0x40)[0] != bitops.xor(a, b)


class TestStolenDimm:
    def test_no_plaintext_visible_in_any_configuration(self, pads):
        for mem_cls in (GlobalKeyMemory, AddressTweakedMemory, CounterModeMemory):
            mem = mem_cls(pads)
            mem.write(0x00, SECRET)
            snapshot = mem.snapshot()
            assert snapshot.lines[0x00] != SECRET
