"""Pad-uniqueness auditing tests — the DEUCE security argument (4.3.5)."""

from __future__ import annotations

from repro.schemes.deuce import Deuce
from repro.security.invariants import PadUsageAuditor, audit_deuce_write_path
from repro.workloads.generator import WriteRecord
from tests.conftest import mutate_words, random_line


class TestAuditor:
    def test_clean_on_distinct_counters(self):
        auditor = PadUsageAuditor()
        auditor.record_encryption(0, 1, b"ab")
        auditor.record_encryption(0, 2, b"cd")
        assert auditor.is_clean

    def test_same_data_same_pad_is_allowed(self):
        # Leaving an unmodified word in place is not pad reuse.
        auditor = PadUsageAuditor()
        auditor.record_encryption(0, 1, b"ab")
        auditor.record_encryption(0, 1, b"ab")
        assert auditor.is_clean

    def test_detects_reuse_with_different_data(self):
        auditor = PadUsageAuditor()
        auditor.record_encryption(0, 1, b"ab")
        auditor.record_encryption(0, 1, b"xb")
        assert not auditor.is_clean
        violation = auditor.violations[0]
        assert violation.counter == 1
        assert violation.offset == 0
        assert (violation.first_plaintext, violation.second_plaintext) == (
            ord("a"),
            ord("x"),
        )

    def test_offset_distinguishes_words(self):
        auditor = PadUsageAuditor()
        auditor.record_encryption(0, 1, b"ab", offset=0)
        auditor.record_encryption(0, 1, b"cd", offset=2)
        assert auditor.is_clean

    def test_addresses_are_independent(self):
        auditor = PadUsageAuditor()
        auditor.record_encryption(0, 1, b"ab")
        auditor.record_encryption(1, 1, b"cd")
        assert auditor.is_clean
        assert auditor.n_uses == 4


class TestDeuceNeverReusesPads:
    def test_sparse_write_stream(self, pads, rng):
        scheme = Deuce(pads, epoch_interval=4)
        data = random_line(rng)
        scheme.install(0, data)
        records = []
        for _ in range(50):
            data = mutate_words(rng, data, 2)
            records.append(WriteRecord(0, data))
        auditor = audit_deuce_write_path(scheme, records)
        assert auditor.is_clean, auditor.violations[:3]

    def test_dense_write_stream(self, pads, rng):
        scheme = Deuce(pads, epoch_interval=8)
        data = random_line(rng)
        scheme.install(0, data)
        records = []
        for _ in range(40):
            data = mutate_words(rng, data, 32)
            records.append(WriteRecord(0, data))
        auditor = audit_deuce_write_path(scheme, records)
        assert auditor.is_clean

    def test_multiple_lines(self, pads, rng):
        scheme = Deuce(pads, epoch_interval=4)
        lines = {}
        for addr in range(4):
            lines[addr] = random_line(rng)
            scheme.install(addr, lines[addr])
        records = []
        for i in range(60):
            addr = i % 4
            lines[addr] = mutate_words(rng, lines[addr], 1 + i % 3)
            records.append(WriteRecord(addr, lines[addr]))
        auditor = audit_deuce_write_path(scheme, records)
        assert auditor.is_clean

    def test_auditor_catches_a_broken_scheme(self, pads, rng):
        """Sanity: the harness does detect violations when counters stall."""

        class BrokenDeuce(Deuce):
            def _write(self, address, plaintext):
                outcome = super()._write(address, plaintext)
                line = self._lines[address]
                # Sabotage: freeze the counter, so the next write reuses
                # the same leading pad with different data.
                line.counter -= 1
                return outcome

        scheme = BrokenDeuce(pads, epoch_interval=32)
        data = random_line(rng)
        scheme.install(0, data)
        records = []
        for _ in range(6):
            data = mutate_words(rng, data, 2)
            records.append(WriteRecord(0, data))
        auditor = audit_deuce_write_path(scheme, records)
        assert not auditor.is_clean
