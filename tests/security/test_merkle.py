"""Merkle-tree integrity tests (footnote 1's bus-tampering defence)."""

from __future__ import annotations

import pytest

from repro.security.merkle import (
    IntegrityError,
    MerkleTree,
    TamperedCounterStore,
)


class TestHonestOperation:
    def test_fresh_tree_verifies(self):
        tree = MerkleTree(8)
        for i in range(8):
            assert tree.read(i).verified
            assert tree.read(i).counter == 0

    def test_update_then_read(self):
        tree = MerkleTree(8)
        tree.update(3, 17)
        assert tree.read_or_raise(3) == 17
        # Other leaves still verify.
        assert tree.read(0).verified
        assert tree.read(7).verified

    def test_increment_sequence(self):
        tree = MerkleTree(4)
        for expected in range(1, 6):
            assert tree.increment(2) == expected
        assert tree.read_or_raise(2) == 5

    def test_non_power_of_two_leaves(self):
        tree = MerkleTree(5)
        tree.update(4, 9)
        assert tree.read_or_raise(4) == 9
        assert tree.read(0).verified

    def test_single_leaf(self):
        tree = MerkleTree(1)
        tree.update(0, 3)
        assert tree.read_or_raise(0) == 3

    def test_root_changes_on_update(self):
        tree = MerkleTree(8)
        before = tree.root
        tree.update(0, 1)
        assert tree.root != before


class TestTamperDetection:
    def test_counter_reset_detected(self):
        """The footnote-1 attack: reset a counter to force pad reuse."""
        tree = MerkleTree(8)
        tree.update(5, 100)
        tree.tamper_counter(5, 0)  # adversary resets the counter
        assert not tree.read(5).verified
        with pytest.raises(IntegrityError, match="counter-reset"):
            tree.read_or_raise(5)

    def test_stale_counter_replay_detected(self):
        tree = MerkleTree(8)
        tree.update(2, 7)
        stale = 7
        tree.update(2, 8)
        tree.tamper_counter(2, stale)
        assert not tree.read(2).verified

    def test_internal_node_tamper_detected(self):
        tree = MerkleTree(8)
        tree.update(1, 42)
        tree.tamper_node(2, b"\x00" * 16)  # corrupt an internal node
        assert not tree.read(1).verified

    def test_update_through_corrupt_path_refused(self):
        tree = MerkleTree(8)
        tree.tamper_counter(4, 99)
        with pytest.raises(IntegrityError, match="refusing to update"):
            tree.update(4, 100)

    def test_tampering_one_leaf_does_not_break_others(self):
        tree = MerkleTree(8)
        tree.tamper_counter(0, 50)
        assert not tree.read(0).verified
        assert tree.read(1).verified

    def test_failure_counter(self):
        tree = MerkleTree(4)
        tree.tamper_counter(0, 9)
        tree.read(0)
        tree.read(1)
        assert tree.failures == 1
        assert tree.verifications == 2

    def test_different_keys_different_roots(self):
        assert MerkleTree(8, key=b"k1").root != MerkleTree(8, key=b"k2").root


class TestValidation:
    def test_zero_leaves(self):
        with pytest.raises(ValueError):
            MerkleTree(0)

    def test_out_of_range_leaf(self):
        with pytest.raises(ValueError):
            MerkleTree(4).read(4)

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            MerkleTree(4).tamper_node(0, b"")


class TestTamperedCounterStore:
    def test_replays_stale_counter_when_armed(self):
        store = TamperedCounterStore()
        store.write(7, 3)
        store.capture(7)
        store.write(7, 9)
        assert store.read(7) == 9
        store.arm(7)
        assert store.read(7) == 3  # the stale value: pad reuse bait

    def test_unarmed_lines_unaffected(self):
        store = TamperedCounterStore()
        store.write(1, 5)
        store.arm(2)
        assert store.read(1) == 5
