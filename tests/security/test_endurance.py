"""Endurance-attack detector tests (section 7.3)."""

from __future__ import annotations

import random

import pytest

from repro.security.endurance import ThrottlingGuard, WriteStreamDetector
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile


def feed(detector, addresses):
    reports = []
    for addr in addresses:
        report = detector.on_write(addr)
        if report is not None:
            reports.append(report)
    return reports


class TestDetection:
    def test_hammering_one_line_is_detected(self):
        detector = WriteStreamDetector(table_size=16, window=1000)
        reports = feed(detector, [0x40] * 1000)
        assert len(reports) == 1
        assert reports[0].attack_detected
        assert 0x40 in reports[0].suspects

    def test_uniform_stream_is_clean(self):
        rng = random.Random(0)
        detector = WriteStreamDetector(table_size=16, window=1000)
        reports = feed(
            detector, [rng.randrange(4096) for _ in range(3000)]
        )
        assert len(reports) == 3
        assert not any(r.attack_detected for r in reports)

    def test_attack_hidden_in_background_traffic(self):
        """20% of writes to one line among uniform noise is still caught."""
        rng = random.Random(1)
        detector = WriteStreamDetector(
            table_size=64, window=2000, threshold_share=0.05
        )
        stream = [
            0xBAD if rng.random() < 0.2 else rng.randrange(100_000)
            for _ in range(2000)
        ]
        (report,) = feed(detector, stream)
        assert report.attack_detected
        assert 0xBAD in report.suspects

    def test_multiple_attack_lines(self):
        rng = random.Random(2)
        detector = WriteStreamDetector(table_size=64, window=2000)
        stream = []
        for _ in range(2000):
            r = rng.random()
            if r < 0.15:
                stream.append(0xA)
            elif r < 0.30:
                stream.append(0xB)
            else:
                stream.append(rng.randrange(100_000))
        (report,) = feed(detector, stream)
        assert {0xA, 0xB} <= set(report.suspects)

    def test_real_workload_traffic_is_clean(self):
        """Calibrated SPEC-like streams must not trip the detector."""
        gen = TraceGenerator(get_profile("mcf"), seed=0)
        detector = WriteStreamDetector(table_size=64, window=2000)
        reports = feed(detector, (gen.next_write().address for _ in range(4000)))
        assert not any(r.attack_detected for r in reports)

    def test_window_state_resets(self):
        detector = WriteStreamDetector(table_size=8, window=100)
        feed(detector, [7] * 100)  # attack window
        rng = random.Random(3)
        reports = feed(detector, [rng.randrange(10_000) for _ in range(100)])
        assert not reports[0].attack_detected
        assert detector.windows_completed == 2

    def test_under_attack_property(self):
        detector = WriteStreamDetector(table_size=8, window=50)
        assert not detector.under_attack
        feed(detector, [1] * 50)
        assert detector.under_attack


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"table_size": 0},
            {"window": 0},
            {"threshold_share": 0.0},
            {"threshold_share": 1.5},
        ],
    )
    def test_bad_parameters(self, kw):
        with pytest.raises(ValueError):
            WriteStreamDetector(**kw)


class TestThrottlingGuard:
    def test_no_delay_for_clean_traffic(self):
        guard = ThrottlingGuard(WriteStreamDetector(table_size=8, window=100))
        rng = random.Random(4)
        delays = [guard.on_write(rng.randrange(10_000)) for _ in range(300)]
        assert all(d == 0 for d in delays)

    def test_attack_line_gets_throttled(self):
        guard = ThrottlingGuard(WriteStreamDetector(table_size=8, window=100))
        for _ in range(100):
            guard.on_write(0xBAD)  # first window flags it
        assert guard.on_write(0xBAD) > 0

    def test_delay_escalates_across_windows(self):
        guard = ThrottlingGuard(WriteStreamDetector(table_size=8, window=100))
        for _ in range(100):
            guard.on_write(0xBAD)
        first = guard.on_write(0xBAD)
        for _ in range(99):
            guard.on_write(0xBAD)  # second window, still hammering
        second = guard.on_write(0xBAD)
        assert second == 2 * first

    def test_cooling_down_resets(self):
        guard = ThrottlingGuard(WriteStreamDetector(table_size=8, window=100))
        for _ in range(100):
            guard.on_write(0xBAD)
        rng = random.Random(5)
        for _ in range(100):
            guard.on_write(rng.randrange(10_000))  # clean window
        assert guard.on_write(0xBAD) == 0

    def test_base_delay_validation(self):
        with pytest.raises(ValueError):
            ThrottlingGuard(WriteStreamDetector(), base_delay_slots=0)
