"""The ``repro.api`` facade: Session entry points and SimConfig round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ObsOptions, Session
from repro.obs.instruments import RunAborted
from repro.obs.ledger import RunLedger
from repro.sim.config import ConfigError, SimConfig
from repro.sim.parallel import SweepCancelled
from repro.sim.runner import run


CFG = SimConfig("mcf", "deuce", n_writes=400, seed=7)


class TestSessionRun:
    def test_matches_direct_runner(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        direct = run(CFG)
        via_session = session.run(CFG)
        assert via_session.total_flips == direct.total_flips
        assert via_session.slot_histogram == direct.slot_histogram
        assert via_session.summary_row() == direct.summary_row()

    def test_records_manifest(self, tmp_path):
        session = Session(ledger=tmp_path / "runs", label="api-test")
        result = session.run(CFG)
        assert result.manifest is not None
        assert result.manifest.kind == "run"
        assert result.manifest.label == "api-test"
        assert session.ledger.get(result.manifest.run_id).scheme == "deuce"

    def test_ledger_off_no_manifest(self):
        result = Session(ledger=False).run(CFG)
        assert result.manifest is None

    def test_ledger_accepts_instance_and_path(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        assert Session(ledger=ledger).ledger is ledger
        assert Session(ledger=str(tmp_path / "other")).ledger.root == (
            tmp_path / "other"
        )

    def test_accepts_config_dict(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        result = session.run(
            {"workload": "mcf", "scheme": "deuce", "n_writes": 400, "seed": 7}
        )
        assert result.total_flips == run(CFG).total_flips

    def test_progress_events(self):
        events = []
        Session(ledger=False).run(CFG, progress=events.append)
        kinds = [e.kind for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "done"
        assert events[-1].writes_done == CFG.n_writes

    def test_should_stop_aborts(self):
        with pytest.raises(RunAborted):
            Session(ledger=False).run(CFG, should_stop=lambda: True)

    def test_obs_outputs(self, tmp_path):
        session = Session(ledger=False)
        result = session.run(
            CFG,
            obs=ObsOptions(
                metrics_out=str(tmp_path / "m.jsonl"),
                series_out=str(tmp_path / "s.csv"),
            ),
        )
        assert (tmp_path / "m.jsonl").exists()
        assert (tmp_path / "s.csv").exists()
        assert result.series is not None


class TestSessionSweep:
    def test_bit_identical_to_run(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        configs = [
            SimConfig("mcf", s, n_writes=300, seed=1)
            for s in ("deuce", "encr-fnw")
        ]
        swept = session.sweep(configs, workers=1)
        for config, result in zip(configs, swept):
            assert result.to_dict()["total_flips"] == (
                Session(ledger=False).run(config).total_flips
            )
            assert result.manifest is not None
            assert result.manifest.kind == "sweep-cell"

    def test_should_stop_cancels(self, tmp_path):
        session = Session(ledger=False)
        configs = [SimConfig("mcf", "deuce", n_writes=300, seed=i)
                   for i in range(4)]
        with pytest.raises(SweepCancelled):
            session.sweep(configs, workers=1, should_stop=lambda: True)


class TestSessionExperiment:
    def test_runs_and_records(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        result = session.experiment("fig10", n_writes=300)
        assert result.rows
        assert result.manifest is not None
        assert result.manifest.kind == "experiment"
        assert result.manifest.label == "fig10"

    def test_table2_signature_filtering(self):
        # table2 takes no kwargs; Session must drop the uniform knobs.
        result = Session(ledger=False).experiment("table2", n_writes=123)
        assert result.rows

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            Session(ledger=False).experiment("fig999")


class TestConfigRoundTrip:
    def test_to_dict_hex_key(self):
        d = CFG.to_dict()
        assert d["key"] == CFG.key.hex()
        assert SimConfig.from_dict(d) == CFG

    def test_with_accepts_hex_string_key(self):
        c = CFG.with_(key="00ff" * 8)
        assert c.key == bytes.fromhex("00ff" * 8)

    def test_bad_hex_key(self):
        with pytest.raises(ConfigError, match="hex"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce", "key": "zz"}
            )

    def test_unknown_key_did_you_mean(self):
        with pytest.raises(ConfigError, match="n_writes"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce", "n_write": 10}
            )

    def test_missing_required(self):
        with pytest.raises(ConfigError, match="workload"):
            SimConfig.from_dict({"scheme": "deuce"})

    def test_wrong_type(self):
        with pytest.raises(ConfigError, match="n_writes"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce", "n_writes": "many"}
            )

    def test_bool_rejected_for_int(self):
        with pytest.raises(ConfigError):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce", "n_writes": True}
            )

    @settings(max_examples=50, deadline=None)
    @given(
        n_writes=st.integers(min_value=1, max_value=10**6),
        seed=st.integers(min_value=0, max_value=2**31),
        epoch_interval=st.integers(min_value=1, max_value=512),
        key=st.binary(min_size=1, max_size=32),
        scheme=st.sampled_from(["deuce", "encr-fnw", "dyndeuce"]),
        wear_leveling=st.sampled_from(["none", "hwl", "sr-hwl"]),
    )
    def test_round_trip_property(
        self, n_writes, seed, epoch_interval, key, scheme, wear_leveling
    ):
        config = SimConfig(
            "mcf",
            scheme,
            n_writes=n_writes,
            seed=seed,
            epoch_interval=epoch_interval,
            key=key,
            wear_leveling=wear_leveling,
        )
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_json_safe(self):
        import json

        assert json.loads(json.dumps(CFG.to_dict())) == CFG.to_dict()
