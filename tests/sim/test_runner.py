"""Simulation runner tests."""

from __future__ import annotations

import pytest

from repro.sim.config import SimConfig
from repro.sim.runner import build_scheme, cached_trace, run
from repro.workloads.trace import generate_trace


class TestRun:
    def test_basic_run_shape(self):
        result = run(SimConfig("mcf", "deuce", n_writes=200))
        assert result.n_writes == 200
        assert result.workload == "mcf"
        assert result.scheme == "deuce"
        assert result.total_flips > 0
        assert result.wear is not None
        assert result.lifetime is not None

    def test_flip_totals_consistent(self):
        result = run(SimConfig("mcf", "deuce", n_writes=200))
        assert result.total_flips == result.data_flips + result.meta_flips
        assert result.wear.total_flips == result.total_flips
        assert result.wear.total_writes == 200

    def test_slot_histogram_sums_to_writes(self):
        result = run(SimConfig("libq", "encr-dcw", n_writes=150))
        assert sum(result.slot_histogram.values()) == 150
        assert result.total_slots == sum(
            s * c for s, c in result.slot_histogram.items()
        )

    def test_deterministic(self):
        a = run(SimConfig("wrf", "dyndeuce", n_writes=150))
        b = run(SimConfig("wrf", "dyndeuce", n_writes=150))
        assert a.total_flips == b.total_flips
        assert a.slot_histogram == b.slot_histogram

    def test_explicit_trace(self):
        trace = generate_trace("mcf", 100, seed=9)
        result = run(SimConfig("mcf", "deuce", n_writes=100, seed=9), trace=trace)
        assert result.n_writes == 100

    def test_schemes_share_cached_trace(self):
        t1 = cached_trace("mcf", 64, 0, 64)
        t2 = cached_trace("mcf", 64, 0, 64)
        assert t1 is t2

    def test_wear_leveling_modes(self):
        for mode in ("none", "hwl", "hwl-hashed"):
            result = run(
                SimConfig(
                    "mcf",
                    "deuce",
                    n_writes=100,
                    wear_leveling=mode,
                    gap_write_interval=1,
                    hwl_region_lines=8,
                )
            )
            assert result.total_flips > 0

    def test_bad_wear_leveling(self):
        with pytest.raises(ValueError, match="wear_leveling"):
            run(SimConfig("mcf", "deuce", n_writes=10, wear_leveling="nope"))

    def test_hwl_preserves_flip_counts(self):
        """Rotation only relocates wear; flip totals are identical."""
        plain = run(SimConfig("mcf", "deuce", n_writes=150))
        hwl = run(
            SimConfig(
                "mcf",
                "deuce",
                n_writes=150,
                wear_leveling="hwl",
                gap_write_interval=1,
            )
        )
        assert plain.total_flips == hwl.total_flips


class TestBuildScheme:
    def test_encrypted_scheme_gets_pads(self):
        scheme = build_scheme(SimConfig("mcf", "deuce"))
        assert scheme.pads is not None

    def test_plain_scheme_has_no_pads(self):
        scheme = build_scheme(SimConfig("mcf", "noencr-dcw"))
        assert not hasattr(scheme, "pads")

    def test_parameters_forwarded(self):
        scheme = build_scheme(
            SimConfig("mcf", "deuce", word_bytes=4, epoch_interval=8)
        )
        assert scheme.word_bytes == 4
        assert scheme.epoch_interval == 8

    def test_aes_pad_kind(self):
        scheme = build_scheme(SimConfig("mcf", "deuce", pad_kind="aes"))
        from repro.crypto.pads import AesPadSource, CachingPadSource

        assert isinstance(scheme.pads, CachingPadSource)
        assert isinstance(scheme.pads.inner, AesPadSource)

    def test_pad_cache_wraps_by_default(self):
        from repro.crypto.pads import Blake2PadSource, CachingPadSource

        scheme = build_scheme(SimConfig("mcf", "deuce"))
        assert isinstance(scheme.pads, CachingPadSource)
        assert scheme.pads.capacity == SimConfig("mcf", "deuce").pad_cache_lines
        assert isinstance(scheme.pads.inner, Blake2PadSource)

    def test_pad_cache_disabled(self):
        from repro.crypto.pads import Blake2PadSource

        scheme = build_scheme(SimConfig("mcf", "deuce", pad_cache_lines=0))
        assert isinstance(scheme.pads, Blake2PadSource)

    def test_run_reports_pad_cache_stats(self):
        result = run(SimConfig("mcf", "deuce", n_writes=300))
        assert result.pad_hits + result.pad_misses > 0
        assert 0.0 <= result.pad_hit_rate <= 1.0

    def test_cached_and_uncached_runs_agree(self):
        cached = run(SimConfig("mcf", "deuce", n_writes=300))
        plain = run(SimConfig("mcf", "deuce", n_writes=300, pad_cache_lines=0))
        assert cached.total_flips == plain.total_flips
        assert cached.slot_histogram == plain.slot_histogram
        assert plain.pad_hits == 0 and plain.pad_misses == 0


class TestConfig:
    def test_with_creates_modified_copy(self):
        base = SimConfig("mcf", "deuce")
        other = base.with_(scheme="ble", n_writes=7)
        assert other.scheme == "ble"
        assert other.n_writes == 7
        assert base.scheme == "deuce"

    def test_config_hashable(self):
        assert hash(SimConfig("mcf", "deuce")) == hash(SimConfig("mcf", "deuce"))


class TestDirectionalAccounting:
    def test_set_plus_reset_equals_data_flips(self):
        result = run(SimConfig("mcf", "deuce", n_writes=150))
        assert result.set_flips + result.reset_flips == result.data_flips

    def test_encrypted_writes_are_direction_balanced(self):
        """Fresh pads randomize stored bits, so SETs ~= RESETs."""
        result = run(SimConfig("mcf", "encr-dcw", n_writes=150))
        ratio = result.set_flips / max(1, result.reset_flips)
        assert 0.9 <= ratio <= 1.1
