"""KV workloads end to end: config dict -> run -> phases, on every surface.

The acceptance criteria for the KV engine as an API:

* a named profile plus a ``workload_params`` dict is all any surface
  needs (``SimConfig.from_dict``, :class:`repro.api.Session`, ``/v1``
  ``JobSpec.decode``);
* all execution paths (serial, chunked, instrumented, checkpoint/resume,
  shared-memory sweep) produce bit-identical results including the
  per-phase aggregates;
* an invalid ``workload_params`` field is rejected with the *same*
  field-path message on every surface.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.obs.instruments import Instruments
from repro.obs.ledger import RunLedger
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import JobError, JobSpec
from repro.sim.config import ConfigError, SimConfig
from repro.sim.runner import cached_trace, run

# Small keyspace + small cache so traces build in milliseconds while
# still crossing the populate -> steady boundary well before n_writes.
KV_PARAMS = {"n_keys": 256, "cache_kb": 8, "value_bytes": 48}
CONFIG = {
    "workload": "kv-udb",
    "scheme": "deuce",
    "n_writes": 2000,
    "seed": 3,
    "workload_params": KV_PARAMS,
}

BAD_CONFIG = dict(CONFIG, workload_params={"zipf_alpha": "hi"})
FIELD_PATH_MSG = "workload_params.zipf_alpha: expected float, got str ('hi')"


def result_payload(result):
    d = result.to_dict()
    d.pop("wall_time_s")
    d.pop("run_id")
    d.pop("config")  # runs below vary execution knobs, not simulation ones
    return d


class TestEndToEnd:
    def test_config_dict_runs_and_reports_phases(self):
        config = SimConfig.from_dict(dict(CONFIG))
        result = run(config)
        assert set(result.phase_stats) == {"populate", "steady"}
        rows = result.phase_summary()
        assert [r["phase"] for r in rows] == ["populate", "steady"]
        assert sum(r["writes"] for r in rows) == config.n_writes
        assert rows[0]["start"] == 0
        assert rows[1]["start"] == rows[0]["end"]
        row = result.summary_row()
        assert "phase_steady_flips_pct" in row
        assert row["phase_populate_writes"] == rows[0]["writes"]

    def test_phaseless_workloads_stay_phaseless(self):
        config = SimConfig.from_dict(
            {"workload": "mcf", "scheme": "deuce", "n_writes": 300, "seed": 0}
        )
        result = run(config)
        assert result.phase_stats == {}
        assert not any(k.startswith("phase_") for k in result.summary_row())

    def test_chunked_and_instrumented_match_serial(self):
        config = SimConfig.from_dict(dict(CONFIG))
        serial = run(SimConfig.from_dict(dict(CONFIG, chunk_size=0)))
        chunked = run(SimConfig.from_dict(dict(CONFIG, chunk_size=128)))
        instrumented = run(
            config, instruments=Instruments(metrics=MetricsRegistry())
        )
        assert result_payload(serial) == result_payload(chunked)
        assert result_payload(serial) == result_payload(instrumented)

    def test_checkpoint_resume_crosses_phase_boundary(self, tmp_path):
        # checkpoint lands mid-steady; the resumed run must restore the
        # populate snapshot verbatim and re-record only what follows.
        ckpt = tmp_path / "ckpt"
        full = run(SimConfig.from_dict(dict(CONFIG)))
        run(
            SimConfig.from_dict(dict(CONFIG)),
            checkpoint_dir=ckpt, checkpoint_every=700,
        )
        resumed = run(resume_from=str(ckpt))
        assert result_payload(resumed) == result_payload(full)
        assert resumed.phase_stats == full.phase_stats

    def test_shared_memory_sweep_carries_phases(self):
        from repro.sim.shm import TracePublisher, attach_trace

        config = SimConfig.from_dict(dict(CONFIG))
        reference = cached_trace(
            config.workload, config.n_writes, config.seed,
            config.line_bytes, params=config.workload_params,
        )
        with TracePublisher() as publisher:
            spec = publisher.publish(config)
            assert spec is not None
            assert spec.phases == reference.phases
            attached = attach_trace(spec)
            assert attached.phases == reference.phases
            # attached records are an array-backed view; compare contents
            assert [(r.address, r.data) for r in attached.records] == [
                (r.address, r.data) for r in reference.records
            ]


class TestErrorParityAcrossSurfaces:
    """One invalid field, three surfaces, one message."""

    def test_from_dict_surface(self):
        with pytest.raises(ConfigError) as err:
            SimConfig.from_dict(dict(BAD_CONFIG))
        assert FIELD_PATH_MSG in str(err.value)

    def test_session_surface(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        with pytest.raises(ConfigError) as err:
            session.run(dict(BAD_CONFIG))
        assert FIELD_PATH_MSG in str(err.value)

    def test_v1_decode_surface(self):
        with pytest.raises(JobError) as err:
            JobSpec.decode({"kind": "run", "config": dict(BAD_CONFIG)})
        assert FIELD_PATH_MSG in str(err.value)

    def test_unknown_profile_names_the_known_ones(self):
        with pytest.raises(ConfigError) as err:
            SimConfig.from_dict(dict(CONFIG, workload="kv-bogus"))
        assert "kv-udb" in str(err.value)

    def test_out_of_range_param_reports_bounds(self):
        with pytest.raises(ConfigError) as err:
            SimConfig.from_dict(
                dict(CONFIG, workload_params={"n_keys": 4})
            )
        assert "workload_params.n_keys" in str(err.value)

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError) as err:
            SimConfig.from_dict(
                dict(CONFIG, workload_params={"zipf": 1.0})
            )
        assert "workload_params.zipf" in str(err.value)


class TestSessionAndDashboard:
    def test_session_run_manifests_phase_summary(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        result = session.run(dict(CONFIG))
        assert result.manifest is not None
        assert result.manifest.summary.get("phase_steady_writes", 0) > 0

        from repro.analysis.dashboard import render_dashboard

        html = render_dashboard(RunLedger(tmp_path / "runs"))
        assert "KV service phases" in html
        assert "kv-udb" in html
        assert "populate" in html and "steady" in html

    def test_dashboard_empty_state_without_phased_runs(self, tmp_path):
        from repro.analysis.dashboard import render_dashboard

        html = render_dashboard(RunLedger(tmp_path / "runs"))
        assert "KV service phases" in html  # panel renders its empty state
