"""Report generator tests."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_subset_of_experiments(self):
        text = generate_report(n_writes=300, experiments=["table2", "fig12"])
        assert "# DEUCE reproduction report" in text
        assert "table2" in text
        assert "fig12" in text
        assert "fig10" not in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            generate_report(experiments=["fig99"])

    def test_progress_callback_invoked(self):
        seen = []
        generate_report(
            n_writes=300, experiments=["table2"], progress=seen.append
        )
        assert seen == ["running table2 ..."]

    def test_write_report_creates_file(self, tmp_path):
        path = write_report(
            tmp_path / "r.md", n_writes=300, experiments=["table2"]
        )
        assert path.exists()
        assert "Table 2" in path.read_text()
