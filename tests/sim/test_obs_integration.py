"""Observability end-to-end: bit-identity, reconciliation, live progress.

These are the acceptance tests for the ``repro.obs`` subsystem:

* a run with the null backend (or a fully live one) is bit-for-bit
  identical to an uninstrumented run — instrumentation is read-only;
* the null backend stays within a small timing envelope of baseline;
* the sampled time-series *reconciles*: summing every delta column over
  all samples reproduces the run's final aggregates;
* the JSONL trace parses line-by-line and contains the pipeline's spans;
* parallel sweeps stream start/heartbeat/done events per cell without
  changing results.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np
import pytest

from repro.obs import (
    DISABLED,
    Instruments,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    Tracer,
)
from repro.obs.progress import DONE, HEARTBEAT, START
from repro.sim.config import SimConfig
from repro.sim.parallel import run_suite_parallel
from repro.sim.runner import run, run_suite


def assert_bit_identical(a, b) -> None:
    """Every aggregate field of two RunResults must match exactly."""
    assert a.total_flips == b.total_flips
    assert a.data_flips == b.data_flips
    assert a.meta_flips == b.meta_flips
    assert a.set_flips == b.set_flips
    assert a.reset_flips == b.reset_flips
    assert a.total_slots == b.total_slots
    assert a.total_words_reencrypted == b.total_words_reencrypted
    assert a.full_reencryptions == b.full_reencryptions
    assert a.epoch_resets == b.epoch_resets
    assert a.mode_switches == b.mode_switches
    assert a.slot_histogram == b.slot_histogram
    assert a.mode_histogram == b.mode_histogram
    assert a.pad_hits == b.pad_hits
    assert a.pad_misses == b.pad_misses
    assert np.array_equal(a.wear.position_writes, b.wear.position_writes)
    assert a.wear.total_writes == b.wear.total_writes
    assert a.lifetime.normalized == b.lifetime.normalized


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", ["deuce", "dyndeuce", "encr-fnw"])
    def test_null_backend_matches_baseline(self, scheme):
        config = SimConfig("mcf", scheme, n_writes=5_000, seed=7)
        baseline = run(config)
        observed = run(config, instruments=DISABLED)
        assert_bit_identical(baseline, observed)
        assert observed.series is None

    def test_fully_instrumented_matches_baseline(self):
        config = SimConfig("mcf", "dyndeuce", n_writes=2_000, seed=7)
        baseline = run(config)
        instruments = Instruments(
            metrics=MetricsRegistry(),
            tracer=Tracer(ListSink()),
            sample_interval=250,
        )
        observed = run(config, instruments=instruments)
        assert_bit_identical(baseline, observed)
        assert observed.series is not None

    def test_null_backend_timing_envelope(self):
        """run(instruments=DISABLED) takes the same hot loop as run().

        Min-of-N on a shared-CI-sized trace with a generous ratio: this
        guards against accidentally routing disabled runs through the
        instrumented loop, not against scheduler noise.
        """
        config = SimConfig("mcf", "deuce", n_writes=5_000, seed=7)
        run(config)  # warm the trace cache for both sides

        def best_of(n, **kw):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                run(config, **kw)
                times.append(time.perf_counter() - t0)
            return min(times)

        base = best_of(3)
        disabled = best_of(3, instruments=DISABLED)
        assert disabled <= base * 1.5 + 0.05


class TestSeriesReconciliation:
    @pytest.fixture(scope="class")
    def sampled(self):
        config = SimConfig("mcf", "dyndeuce", n_writes=2_000, seed=7)
        result = run(config, instruments=Instruments(sample_interval=300))
        return config, result

    def test_sample_count_and_coverage(self, sampled):
        config, result = sampled
        series = result.series
        assert len(series) == math.ceil(config.n_writes / 300)
        assert series.samples[-1].write_index == config.n_writes
        assert series.total("interval_writes") == config.n_writes

    def test_delta_columns_sum_to_final_aggregates(self, sampled):
        _, result = sampled
        series = result.series
        assert series.total("flips") == result.total_flips
        assert series.total("data_flips") == result.data_flips
        assert series.total("meta_flips") == result.meta_flips
        assert series.total("slots") == result.total_slots
        assert (
            series.total("words_reencrypted")
            == result.total_words_reencrypted
        )
        assert series.total("full_reencryptions") == result.full_reencryptions
        assert series.total("epoch_resets") == result.epoch_resets
        assert series.total("mode_switches") == result.mode_switches
        assert series.total("pad_hits") == result.pad_hits
        assert series.total("pad_misses") == result.pad_misses
        assert series.mode_totals() == dict(result.mode_histogram)

    def test_wear_is_monotone_cumulative(self, sampled):
        _, result = sampled
        maxes = [s.wear_max for s in result.series]
        assert maxes == sorted(maxes)
        assert maxes[-1] == int(result.wear.position_writes.max())


class TestTraceOutput:
    def test_jsonl_parses_with_expected_span_names(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = SimConfig(
            "mcf", "deuce", n_writes=300, seed=7, epoch_interval=4
        )
        with JsonlSink(path) as sink:
            run(config, instruments=Instruments(tracer=Tracer(sink)))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records, "trace file is empty"
        # The opening meta record anchors the lane; spans/events follow.
        assert records[0]["type"] == "meta"
        records = [r for r in records if r["type"] != "meta"]
        names = {r["name"] for r in records}
        assert {
            "install",
            "scheme.write",
            "wear.rotation",
            "pcm.apply",
            "pad.fetch",
        } <= names
        # Epoch interval 4 over 300 writes of a hot trace must reset.
        resets = [r for r in records if r["name"] == "epoch.reset"]
        assert resets and all(r["type"] == "event" for r in resets)
        writes = [r for r in records if r["name"] == "scheme.write"]
        assert len(writes) == config.n_writes
        assert all(r["dur"] >= 0.0 for r in writes)

    def test_metrics_cover_the_pipeline(self):
        config = SimConfig("mcf", "deuce", n_writes=300, seed=7)
        metrics = MetricsRegistry()
        result = run(config, instruments=Instruments(metrics=metrics))
        snap = {s["name"]: s for s in metrics.snapshot()}
        assert snap["run.writes"]["value"] == config.n_writes
        assert snap["run.flips"]["value"] == result.total_flips
        assert snap["scheme.write_s"]["count"] == config.n_writes
        assert snap["pad.fetches"]["value"] > 0
        assert snap["pad.fetch_s"]["count"] == snap["pad.fetches"]["value"]
        assert (
            snap["pad.cache_hits"]["value"] + snap["pad.cache_misses"]["value"]
            == result.pad_hits + result.pad_misses
        )


class TestParallelProgress:
    def _configs(self):
        return [
            SimConfig(workload, scheme, n_writes=400, seed=3)
            for workload in ("mcf", "libq")
            for scheme in ("deuce", "encr-fnw")
        ]

    def test_events_stream_and_results_unchanged(self):
        configs = self._configs()
        events = []
        results = run_suite_parallel(
            configs, max_workers=2, progress=events.append,
            heartbeat_every=100,
        )
        serial = run_suite(configs)
        for observed, expected in zip(results, serial):
            assert_bit_identical(observed, expected)
        kinds = [e.kind for e in events]
        assert kinds.count(START) == len(configs)
        assert kinds.count(DONE) == len(configs)
        assert kinds.count(HEARTBEAT) >= len(configs)
        assert {e.cell for e in events} == set(range(len(configs)))
        assert all(e.n_cells == len(configs) for e in events)
        done = [e for e in events if e.kind == DONE]
        assert all(e.writes_done == e.n_writes == 400 for e in done)

    def test_serial_fallback_also_streams_events(self):
        configs = self._configs()[:2]
        events = []
        results = run_suite_parallel(
            configs, max_workers=1, progress=events.append,
            heartbeat_every=200,
        )
        assert len(results) == 2
        kinds = [e.kind for e in events]
        # Serial events arrive strictly in cell order.
        assert kinds[0] == START and kinds[-1] == DONE
        assert [e.cell for e in events] == sorted(e.cell for e in events)
        assert kinds.count(HEARTBEAT) == 4  # 400 writes / 200 per cell
