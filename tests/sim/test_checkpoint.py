"""Checkpoint/resume: run snapshots, sweep cell records, retry budgets."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.instruments import Instruments, RunAborted
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    RunCheckpoint,
    SweepCheckpoint,
    config_signature,
    load_run_checkpoint,
    save_run_checkpoint,
)
from repro.sim.config import SimConfig
from repro.sim.parallel import SweepCellFailed, run_suite_parallel
from repro.sim.runner import run

CFG = SimConfig("libq", "deuce", n_writes=600, seed=3)


def _result_dicts_equal(a, b) -> bool:
    """Bit-identity modulo wall clock (the documented equality contract)."""
    da, db = a.to_dict(), b.to_dict()
    da.pop("wall_time_s"), db.pop("wall_time_s")
    return da == db


class TestConfigSignature:
    def test_stable_across_instances(self):
        assert config_signature(CFG) == config_signature(
            SimConfig("libq", "deuce", n_writes=600, seed=3)
        )

    def test_sensitive_to_every_knob(self):
        base = config_signature(CFG)
        assert config_signature(
            SimConfig("libq", "deuce", n_writes=600, seed=4)
        ) != base
        assert config_signature(
            SimConfig("mcf", "deuce", n_writes=600, seed=3)
        ) != base


class TestRunCheckpointIO:
    def _checkpoint(self) -> RunCheckpoint:
        return RunCheckpoint(
            config=CFG,
            write_index=123,
            result_state={"total_flips": 7, "data_flips": 5},
            scheme_state={
                "lines/addresses": np.arange(4, dtype=np.int64),
                "extra/epoch": 2,
            },
            pcm_state={"wear": np.ones((4, 8), dtype=np.int64)},
            leveler_state={"start": 0},
            pad_cache_state=None,
        )

    def test_round_trip(self, tmp_path):
        save_run_checkpoint(tmp_path, self._checkpoint())
        loaded = load_run_checkpoint(tmp_path)
        assert loaded.write_index == 123
        assert loaded.config == CFG
        assert loaded.result_state == {"total_flips": 7, "data_flips": 5}
        assert np.array_equal(
            loaded.scheme_state["lines/addresses"], np.arange(4)
        )
        assert loaded.scheme_state["extra/epoch"] == 2
        assert np.array_equal(loaded.pcm_state["wear"], np.ones((4, 8)))
        assert loaded.pad_cache_state is None

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_run_checkpoint(tmp_path / "nowhere")

    def test_corrupt_manifest_raises(self, tmp_path):
        save_run_checkpoint(tmp_path, self._checkpoint())
        (tmp_path / "checkpoint.json").write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_run_checkpoint(tmp_path)

    def test_wrong_schema_raises(self, tmp_path):
        save_run_checkpoint(tmp_path, self._checkpoint())
        manifest = json.loads((tmp_path / "checkpoint.json").read_text())
        manifest["schema"] = CHECKPOINT_SCHEMA + 1
        (tmp_path / "checkpoint.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="schema"):
            load_run_checkpoint(tmp_path)

    def test_unserializable_leaf_raises(self, tmp_path):
        bad = self._checkpoint()
        bad.scheme_state["extra/bogus"] = object()
        with pytest.raises(CheckpointError, match="bogus"):
            save_run_checkpoint(tmp_path, bad)

    def test_stale_state_files_pruned(self, tmp_path):
        first = self._checkpoint()
        save_run_checkpoint(tmp_path, first)
        second = self._checkpoint()
        second.write_index = 456
        save_run_checkpoint(tmp_path, second)
        npz = sorted(p.name for p in tmp_path.glob("state-*.npz"))
        assert npz == ["state-000000000456.npz"]


class TestRunnerResume:
    def test_checkpointed_run_is_bit_identical_to_plain(self, tmp_path):
        clean = run(CFG)
        checkpointed = run(CFG, checkpoint_dir=tmp_path, checkpoint_every=200)
        assert _result_dicts_equal(clean, checkpointed)

    def test_resume_from_mid_run_checkpoint(self, tmp_path):
        clean = run(CFG)
        # A full checkpointed run leaves its last snapshot (write 500 of
        # 600) behind; resuming replays only the tail.
        run(CFG, checkpoint_dir=tmp_path, checkpoint_every=250)
        assert load_run_checkpoint(tmp_path).write_index == 500
        resumed = run(resume_from=str(tmp_path))
        assert _result_dicts_equal(clean, resumed)

    @pytest.mark.parametrize(
        "scheme",
        ("noencr-fnw", "encr-dcw", "dyndeuce", "deuce+fnw", "ble+deuce",
         "invmm"),
    )
    def test_resume_bit_identity_per_scheme(self, tmp_path, scheme):
        cfg = SimConfig("mcf", scheme, n_writes=500, seed=9)
        clean = run(cfg)
        run(cfg, checkpoint_dir=tmp_path, checkpoint_every=150)
        resumed = run(resume_from=str(tmp_path))
        assert _result_dicts_equal(clean, resumed)

    def test_aborted_run_resumes_to_clean_result(self, tmp_path):
        """The in-process kill-and-resume drill: abort after the first
        snapshot lands, resume from disk, match the uninterrupted run."""
        clean = run(CFG)
        aborted = Instruments(
            abort=lambda: (tmp_path / "checkpoint.json").is_file()
        )
        with pytest.raises(RunAborted):
            run(
                CFG,
                instruments=aborted,
                checkpoint_dir=tmp_path,
                checkpoint_every=100,
            )
        resumed = run(resume_from=str(tmp_path))
        assert _result_dicts_equal(clean, resumed)

    def test_resume_config_mismatch_raises(self, tmp_path):
        run(CFG, checkpoint_dir=tmp_path, checkpoint_every=200)
        other = SimConfig("libq", "deuce", n_writes=600, seed=4)
        with pytest.raises(CheckpointError, match="does not match"):
            run(other, resume_from=str(tmp_path))

    def test_run_needs_config_or_checkpoint(self):
        with pytest.raises(ValueError, match="config or a resume_from"):
            run()


class TestSweepCheckpoint:
    def _grid(self):
        return [
            SimConfig(w, s, n_writes=300, seed=1)
            for w in ("libq", "mcf")
            for s in ("deuce", "noencr-dcw")
        ]

    def test_record_restore_round_trip(self, tmp_path):
        configs = self._grid()
        results = [run(c) for c in configs]
        checkpoint = SweepCheckpoint(tmp_path)
        for i, (config, result) in enumerate(zip(configs, results)):
            checkpoint.record(i, config, result, run_id=f"r{i}")
        restored = checkpoint.restore()
        assert len(restored) == len(configs)
        for config, result in zip(configs, results):
            hit = restored[config_signature(config)]
            assert hit.total_flips == result.total_flips
            assert hit.slot_histogram == result.slot_histogram

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        configs = self._grid()
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.record(0, configs[0], run(configs[0]))
        with open(checkpoint.path, "a") as fh:
            fh.write('{"config_signature": "dead", "resu')  # SIGKILL here
        assert set(checkpoint.restore()) == {config_signature(configs[0])}

    def test_resume_runs_only_missing_cells(self, tmp_path):
        configs = self._grid()
        full = run_suite_parallel(configs, max_workers=1)
        checkpoint = SweepCheckpoint(tmp_path)
        for i in (0, 2):  # pretend these finished before a crash
            checkpoint.record(i, configs[i], full[i])
        executed = []
        resumed = run_suite_parallel(
            configs,
            max_workers=1,
            progress=lambda e: executed.append(e.cell)
            if e.kind == "done"
            else None,
            checkpoint=checkpoint,
        )
        assert sorted(set(executed)) == [1, 3]  # restored cells not re-run
        assert [r.total_flips for r in resumed] == [
            r.total_flips for r in full
        ]

    def test_completed_cells_recorded_as_they_finish(self, tmp_path):
        configs = self._grid()
        run_suite_parallel(
            configs, max_workers=1, checkpoint=str(tmp_path / "ck")
        )
        restored = SweepCheckpoint(tmp_path / "ck").restore()
        assert len(restored) == len(configs)


class TestRetries:
    def test_flaky_cell_succeeds_within_budget(self, tmp_path, monkeypatch):
        configs = [SimConfig("libq", "deuce", n_writes=200, seed=1)]
        real_run = run
        attempts = {"n": 0}

        def flaky(config, **kwargs):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return real_run(config, **kwargs)

        monkeypatch.setattr("repro.sim.runner.run", flaky)
        results = run_suite_parallel(
            configs, max_workers=1, retries=2, retry_backoff_s=0.001
        )
        assert attempts["n"] == 3
        assert results[0].total_flips == real_run(configs[0]).total_flips

    def test_exhausted_budget_raises_with_partials(self, monkeypatch):
        configs = [
            SimConfig("libq", "noencr-dcw", n_writes=200, seed=1),
            SimConfig("mcf", "deuce", n_writes=200, seed=1),
        ]
        real_run = run

        def half_broken(config, **kwargs):
            if config.scheme == "deuce":
                raise OSError("persistent")
            return real_run(config, **kwargs)

        monkeypatch.setattr("repro.sim.runner.run", half_broken)
        with pytest.raises(SweepCellFailed) as exc_info:
            run_suite_parallel(
                configs, max_workers=1, retries=1, retry_backoff_s=0.001
            )
        failure = exc_info.value
        assert failure.index == 1
        assert failure.attempts == 2  # initial try + 1 retry
        assert failure.config == configs[1]
        assert failure.results[0] is not None  # the healthy cell survived
        assert failure.results[1] is None

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            run_suite_parallel(
                [SimConfig("libq", "deuce", n_writes=100)], retries=-1
            )
