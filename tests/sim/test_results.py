"""RunResult metric tests."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.sim.results import RunResult


def result(**kw):
    defaults = dict(
        workload="mcf", scheme="deuce", n_writes=100, line_bits=512, meta_bits=32
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestPercentages:
    def test_flips_pct_normalized_to_data_bits(self):
        r = result(total_flips=100 * 256)
        assert r.avg_flips_pct == pytest.approx(50.0)

    def test_metadata_counts_toward_figure_of_merit(self):
        # Section 3.3: metadata flips included, denominator stays 512.
        r = result(total_flips=5120, data_flips=4608, meta_flips=512)
        assert r.avg_flips_pct == pytest.approx(10.0)
        assert r.avg_data_flips_pct == pytest.approx(9.0)

    def test_empty_run(self):
        r = result(n_writes=0)
        assert r.avg_flips_pct == 0.0
        assert r.avg_slots_per_write == 0.0
        assert r.avg_words_reencrypted == 0.0


class TestAverages:
    def test_avg_slots(self):
        r = result(total_slots=264)
        assert r.avg_slots_per_write == pytest.approx(2.64)

    def test_avg_words(self):
        r = result(total_words_reencrypted=1500)
        assert r.avg_words_reencrypted == pytest.approx(15.0)


class TestSummaryRow:
    def test_contains_key_metrics(self):
        r = result(total_flips=512, total_slots=100, slot_histogram=Counter({1: 100}))
        row = r.summary_row()
        assert row["workload"] == "mcf"
        assert row["scheme"] == "deuce"
        assert row["flips_pct"] == pytest.approx(1.0)
        assert row["slots"] == pytest.approx(1.0)
        assert "lifetime_norm" not in row  # no lifetime attached
