"""Shared-memory trace buffers: publish/attach roundtrip and lifetime.

The parallel sweep publishes each unique workload trace into one
``multiprocessing.shared_memory`` segment and hands workers a tiny
:class:`TraceShmSpec`; workers attach zero-copy views.  These tests pin
the roundtrip (attached trace == generated trace, byte for byte), the
dedup-by-trace-key behaviour, spec pickling cost, and segment lifetime.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.sim.config import SimConfig
from repro.sim.runner import cached_trace, run
from repro.sim.shm import TracePublisher, attach_trace, trace_key

CFG = SimConfig("libq", "deuce", n_writes=300, seed=4)


@pytest.fixture
def publisher():
    with TracePublisher() as pub:
        yield pub


class TestPublishAttachRoundtrip:
    def test_attached_trace_is_bit_identical(self, publisher):
        spec = publisher.publish(CFG)
        assert spec is not None
        source = cached_trace(
            CFG.workload, CFG.n_writes, CFG.seed, CFG.line_bytes
        )
        attached = attach_trace(spec)
        assert attached.profile_name == source.profile_name
        assert attached.seed == source.seed
        assert attached.line_bytes == source.line_bytes
        for got, want in zip(
            attached.write_arrays(), source.write_arrays()
        ):
            assert np.array_equal(got, want)
        for got, want in zip(
            attached.initial_arrays(), source.initial_arrays()
        ):
            assert np.array_equal(got, want)
        assert attached.initial == source.initial

    def test_attached_arrays_are_read_only_views(self, publisher):
        attached = attach_trace(publisher.publish(CFG))
        addresses, data = attached.write_arrays()
        with pytest.raises(ValueError):
            addresses[0] = 1
        with pytest.raises(ValueError):
            data[0, 0] = 1

    def test_lazy_records_match_generated(self, publisher):
        # The serial loop iterates ``records``; the lazy view must yield
        # the same (address, data) stream the generator produced.
        attached = attach_trace(publisher.publish(CFG))
        source = cached_trace(
            CFG.workload, CFG.n_writes, CFG.seed, CFG.line_bytes
        )
        assert len(attached.records) == len(source.records)
        for got, want in zip(attached.records[:16], source.records[:16]):
            assert got.address == want.address
            assert got.data == want.data

    def test_run_on_attached_trace_matches(self, publisher):
        # End-to-end: a run fed the shared-memory view equals a run that
        # regenerated the trace itself (what sweep workers rely on).
        attached = attach_trace(publisher.publish(CFG))
        a = run(CFG, trace=attached).to_dict()
        b = run(CFG).to_dict()
        a.pop("wall_time_s"), b.pop("wall_time_s")
        a.pop("run_id"), b.pop("run_id")
        assert a == b


class TestPublisherLifecycle:
    def test_publish_dedupes_by_trace_key(self, publisher):
        # Same trace under two schemes: one segment, same spec.
        other = SimConfig("libq", "encr-dcw", n_writes=300, seed=4)
        assert trace_key(CFG) == trace_key(other)
        s1 = publisher.publish(CFG)
        s2 = publisher.publish(other)
        assert s1 is s2
        assert len(publisher) == 1

    def test_distinct_traces_get_distinct_segments(self, publisher):
        s1 = publisher.publish(CFG)
        s2 = publisher.publish(
            SimConfig("libq", "deuce", n_writes=300, seed=5)
        )
        assert s1.name != s2.name
        assert len(publisher) == 2

    def test_spec_pickles_tiny(self, publisher):
        # The whole point: per-task submission cost is a few hundred
        # bytes, never the trace itself (300 writes * 64B would be ~19KB).
        spec = publisher.publish(CFG)
        assert len(pickle.dumps(spec)) < 1024

    def test_close_unlinks_segments(self):
        pub = TracePublisher()
        spec = pub.publish(CFG)
        pub.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.name)

    def test_publish_after_close_raises(self):
        pub = TracePublisher()
        pub.close()
        with pytest.raises(RuntimeError):
            pub.publish(CFG)
