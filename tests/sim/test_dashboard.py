"""Dashboard HTML: well-formed markup, one sparkline per tracked metric."""

from __future__ import annotations

from html.parser import HTMLParser

import pytest

from repro.analysis.dashboard import (
    TRACKED_METRICS,
    render_dashboard,
    scheme_color,
    sparkline_svg,
    write_dashboard,
)
from repro.obs.ledger import RunLedger, build_manifest
from tests.obs.test_gate import write_baselines

#: HTML void elements plus the self-closed SVG shapes the dashboard emits.
_VOID = {"meta", "br", "hr", "img", "input", "link", "circle", "polyline"}


class _WellFormedChecker(HTMLParser):
    """Fails on mismatched or unclosed tags (stack-based balance check)."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}>")
        else:
            self.stack.pop()


def assert_well_formed(html: str) -> None:
    checker = _WellFormedChecker()
    checker.feed(html)
    checker.close()
    assert not checker.errors, checker.errors
    assert not checker.stack, f"unclosed tags: {checker.stack}"


def seeded_ledger(tmp_path, schemes=("deuce", "encr-dcw"), runs_each=3):
    ledger = RunLedger(tmp_path / "runs")
    for scheme in schemes:
        for i in range(runs_each):
            ledger.record(
                build_manifest(
                    kind="run",
                    workload="mcf",
                    scheme=scheme,
                    n_writes=2000,
                    wall_time_s=0.1 + 0.01 * i,
                    summary={
                        "flips_pct": 10.0 + i,
                        "pad_hit_rate": 0.5,
                    },
                )
            )
    return ledger


class TestSparkline:
    def test_svg_structure_and_title(self):
        svg = sparkline_svg([1.0, 3.0, 2.0], "#2a78d6", title="deuce flips")
        assert svg.startswith('<svg class="spark"')
        assert svg.endswith("</svg>")
        assert "<title>deuce flips</title>" in svg
        assert 'stroke-width="2"' in svg  # 2px line spec
        assert "polyline" in svg and "circle" in svg

    def test_degenerate_series_still_render(self):
        for values in ([5.0], [2.0, 2.0, 2.0]):
            svg = sparkline_svg(values, "#2a78d6")
            assert "polyline" in svg
            assert "nan" not in svg and "inf" not in svg

    def test_title_is_escaped(self):
        svg = sparkline_svg([1.0, 2.0], "#2a78d6", title="a<b>&c")
        assert "<title>a&lt;b&gt;&amp;c</title>" in svg


class TestSchemeColor:
    def test_fixed_assignment_follows_entity_not_rank(self):
        # Colors are keyed on the canonical scheme order, so the same scheme
        # always wears the same color regardless of which schemes are shown.
        assert scheme_color("deuce") == scheme_color("deuce")
        assert scheme_color("deuce") != scheme_color("encr-dcw")

    def test_unknown_scheme_folds_to_gray(self):
        light, dark = scheme_color("not-a-scheme")
        assert light == "#6e6e6a"
        assert dark == "#9a9a95"


class TestRenderDashboard:
    def test_valid_markup_with_runs(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        assert html.startswith("<!DOCTYPE html>")
        assert_well_formed(html)
        assert "DEUCE run ledger" in html

    def test_one_sparkline_per_tracked_metric(self, tmp_path):
        ledger = seeded_ledger(tmp_path, schemes=("deuce",))
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        # One light + one dark sparkline per tracked metric for the scheme.
        for metric in TRACKED_METRICS:
            assert html.count(f'class="spark m-{metric}"') == 2
        assert html.count('class="spark') == 2 * len(TRACKED_METRICS)

    def test_empty_ledger_renders_placeholder(self, tmp_path):
        html = render_dashboard(
            RunLedger(tmp_path / "runs"), baselines_dir=tmp_path / "none"
        )
        assert_well_formed(html)
        assert "no simulation runs" in html
        assert "not evaluated" in html  # gate tile degrades, not crashes

    def test_gate_tiles_reflect_verdicts(self, tmp_path):
        ledger = seeded_ledger(tmp_path, schemes=("deuce",))
        baselines = write_baselines(
            tmp_path / "b", {"deuce": 12.0}, min_writes_per_s=None
        )
        html = render_dashboard(ledger, baselines_dir=baselines)
        assert 'class="tile pass"' in html  # newest run: 12.0 within 12±2
        assert "PASS" in html
        baselines = write_baselines(
            tmp_path / "b2", {"deuce": 40.0}, min_writes_per_s=None
        )
        html = render_dashboard(ledger, baselines_dir=baselines)
        assert 'class="tile fail"' in html
        assert "FAIL" in html

    def test_runs_table_lists_newest_runs(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        newest = ledger.list()[-1]
        assert f"<td>{newest.run_id}</td>" in html
        assert "<th>flips_pct</th>" in html

    def test_write_dashboard_is_self_contained(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        out = write_dashboard(
            tmp_path / "dash.html", ledger, baselines_dir=tmp_path / "none"
        )
        html = out.read_text()
        assert_well_formed(html)
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html
        assert 'rel="stylesheet"' not in html
        assert "http://" not in html and "https://" not in html


class TestPerfTrajectoryPanel:
    def test_bench_emissions_chart_headline_metric(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        for i in range(3):
            ledger.record(
                build_manifest(
                    kind="bench",
                    label="writepath",
                    summary={"writes_per_s": 1e6 + i * 1e5, "wall_s": 0.5},
                )
            )
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        assert_well_formed(html)
        assert "Perf trajectory" in html
        assert "writepath" in html
        # Throughput outranks wall time as the headline metric.
        assert "writes_per_s" in html
        assert "3 emissions" in html

    def test_no_benches_renders_empty_state(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        assert "no benchmark emissions" in html

    def test_bench_rows_stay_out_of_the_runs_table(self, tmp_path):
        ledger = seeded_ledger(tmp_path, schemes=("deuce",), runs_each=1)
        ledger.record(
            build_manifest(
                kind="bench", label="tracepath", summary={"speedup": 12.0}
            )
        )
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        bench_id = ledger.list(kind="bench")[-1].run_id
        assert f"<td>{bench_id}</td>" not in html


class TestProfilePanel:
    def test_profile_bars_from_newest_profiled_run(self, tmp_path):
        ledger = seeded_ledger(tmp_path, schemes=("deuce",), runs_each=1)
        profile = {
            "scheme.write": {"seconds": 0.08, "count": 4, "share": 0.8},
            "pcm.apply": {"seconds": 0.02, "count": 4, "share": 0.2},
        }
        import json as _json

        ledger.record(
            build_manifest(
                kind="run",
                workload="mcf",
                scheme="deuce",
                summary={"flips_pct": 11.0},
            ),
            artifact_text={"profile.json": _json.dumps(profile)},
        )
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        assert_well_formed(html)
        assert "Write-path profile" in html
        assert "scheme.write" in html and "pcm.apply" in html
        assert 'class="bar-fill' in html

    def test_no_profiles_renders_empty_state(self, tmp_path):
        ledger = seeded_ledger(tmp_path)
        html = render_dashboard(ledger, baselines_dir=tmp_path / "none")
        assert "no profiled runs" in html


class TestFleetPanel:
    def test_fleet_tiles_from_newest_fleet_sweep(self, tmp_path):
        import json

        ledger = seeded_ledger(tmp_path)
        ledger.record(
            build_manifest(
                kind="fleet-sweep",
                label="grid-9",
                n_writes=0,
                wall_time_s=4.2,
                summary={
                    "cells": 8, "workers": 2, "dispatched": 9,
                    "steals": 1, "requeues": 2, "duplicates": 1,
                },
            ),
            artifact_text={
                "fleet.json": json.dumps({
                    "workers": [
                        {"name": "w0:a:8787", "url": "http://a:8787",
                         "healthy": True, "in_flight": 0,
                         "dispatched": 5, "completed": 5},
                        {"name": "w1:b:8787", "url": "http://b:8787",
                         "healthy": False, "in_flight": 0,
                         "dispatched": 4, "completed": 3},
                    ]
                })
            },
        )
        html = render_dashboard(ledger)
        assert_well_formed(html)
        assert "Sweep fleet" in html
        assert "w0:a:8787" in html and "w1:b:8787" in html
        # The dead worker fails its tile; the fabric totals ride along.
        assert "dead" in html
        assert "1 steal(s)" in html and "2 requeue(s)" in html

    def test_no_fleet_sweeps_renders_empty_state(self, tmp_path):
        html = render_dashboard(seeded_ledger(tmp_path))
        assert "no fleet sweeps" in html
