"""Cross-process correlated tracing and the write-path profiler.

The acceptance properties for the correlated-tracing surface:

* a parallel sweep yields ONE trace — every lane (sweep + worker cells,
  and the service's job lane above them) shares a trace id and parents
  correctly under the lane that spawned it;
* worker lanes re-anchor their clocks, and the anchors agree: merged
  onto the wall axis, every cell span lands inside the sweep's window;
* the write-path profiler attributes phase time without changing a
  single simulated bit (instrumented runs stay bit-identical).
"""

from __future__ import annotations

import json

import pytest

from repro.api import ObsOptions, Session
from repro.obs.context import TraceContext
from repro.obs.profile import PhaseProfile
from repro.obs.traceexport import build_report, load_trace, to_chrome_trace
from repro.sim.config import SimConfig
from repro.sim.runner import run

N_WRITES = 300


def _configs(n):
    return [
        SimConfig("mcf", "deuce", n_writes=N_WRITES, seed=i)
        for i in range(n)
    ]


class TestSweepTraceCorrelation:
    @pytest.fixture(scope="class")
    def traced_sweep(self, tmp_path_factory):
        """One two-worker traced sweep, loaded back as lanes."""
        tmp = tmp_path_factory.mktemp("traced")
        session = Session(ledger=tmp / "runs")
        results = session.sweep(
            _configs(4), workers=2, trace_dir=tmp / "trace"
        )
        return results, load_trace(tmp / "trace")

    def test_one_merged_trace_with_all_lanes(self, traced_sweep):
        results, lanes = traced_sweep
        assert len(results) == 4
        names = {ln.name for ln in lanes}
        assert names == {"sweep", "cell-0", "cell-1", "cell-2", "cell-3"}
        trace_ids = {ln.trace_id for ln in lanes}
        assert len(trace_ids) == 1 and "" not in trace_ids

    def test_cell_lanes_parent_under_the_sweep_span(self, traced_sweep):
        _, lanes = traced_sweep
        sweep = next(ln for ln in lanes if ln.name == "sweep")
        cells = [ln for ln in lanes if ln.name.startswith("cell-")]
        assert sweep.parent_id == ""  # the root lane
        assert all(ln.parent_id == sweep.span_id for ln in cells)
        # The sweep lane holds the scheduling story for every cell.
        events = {
            (r["name"], r.get("cell"))
            for r in sweep.records
            if r["type"] == "event"
        }
        for i in range(4):
            assert ("cell.submit", i) in events
            assert ("cell.done", i) in events

    def test_worker_lanes_reanchor_in_their_own_process(self, traced_sweep):
        _, lanes = traced_sweep
        sweep = next(ln for ln in lanes if ln.name == "sweep")
        cells = [ln for ln in lanes if ln.name.startswith("cell-")]
        # Two pool workers: cell lanes come from non-parent pids.
        assert {ln.pid for ln in cells} and all(
            ln.pid != sweep.pid for ln in cells
        )
        for ln in cells:
            assert ln.epoch_unix > 1.6e9
            assert any(r["name"] == "cell.run" for r in ln.records)

    def test_epoch_anchors_align_cells_inside_the_sweep_window(
        self, traced_sweep
    ):
        _, lanes = traced_sweep
        sweep = next(ln for ln in lanes if ln.name == "sweep")
        tolerance = 0.25  # generous: covers clock reads moments apart
        for ln in lanes:
            if not ln.name.startswith("cell-"):
                continue
            assert ln.wall_start >= sweep.wall_start - tolerance
            assert ln.wall_end <= sweep.wall_end + tolerance

    def test_chrome_export_and_report_cover_the_whole_trace(
        self, traced_sweep
    ):
        _, lanes = traced_sweep
        trace = to_chrome_trace(lanes)
        span_names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"sweep", "cell.run"} <= span_names
        report = build_report(lanes)
        assert "5 lanes" in report
        assert "* sweep" in report

    def test_serial_sweep_traces_identically_shaped_lanes(self, tmp_path):
        session = Session(ledger=False)
        session.sweep(_configs(2), workers=1, trace_dir=tmp_path / "t")
        lanes = load_trace(tmp_path / "t")
        sweep = next(ln for ln in lanes if ln.name == "sweep")
        cells = [ln for ln in lanes if ln.name.startswith("cell-")]
        assert len(cells) == 2
        assert all(ln.parent_id == sweep.span_id for ln in cells)

    def test_outer_context_parents_the_sweep_lane(self, tmp_path):
        outer = TraceContext.new()
        Session(ledger=False).sweep(
            _configs(2),
            workers=1,
            trace_dir=tmp_path / "t",
            trace_context=outer,
        )
        sweep = next(
            ln for ln in load_trace(tmp_path / "t") if ln.name == "sweep"
        )
        assert sweep.trace_id == outer.trace_id
        assert sweep.parent_id == outer.span_id


class TestServiceJobTrace:
    def test_sweep_job_yields_one_causally_linked_trace(self, tmp_path):
        from repro.service.jobs import DONE, JobManager, JobSpec

        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1, queue_size=4).start()
        try:
            job = manager.submit(
                JobSpec.from_payload(
                    {
                        "kind": "sweep",
                        "configs": [
                            {
                                "workload": "mcf",
                                "scheme": "deuce",
                                "n_writes": N_WRITES,
                                "seed": i,
                            }
                            for i in range(2)
                        ],
                        "workers": 2,
                    }
                )
            )
            assert job.wait(60)
            assert job.state == DONE
            assert job.trace_id
            assert job.snapshot()["trace_id"] == job.trace_id
        finally:
            manager.drain(10)
        lanes = load_trace(session.ledger.root / "traces" / job.id)
        by_name = {ln.name: ln for ln in lanes}
        assert {"job", "sweep", "cell-0", "cell-1"} <= set(by_name)
        job_lane = by_name["job"]
        assert job_lane.trace_id == job.trace_id
        assert {ln.trace_id for ln in lanes} == {job.trace_id}
        # Causality chain: cells -> sweep -> job.
        assert by_name["sweep"].parent_id == job_lane.span_id
        for i in range(2):
            assert by_name[f"cell-{i}"].parent_id == by_name["sweep"].span_id
        span_names = {
            r["name"] for r in job_lane.records if r["type"] == "span"
        }
        assert {"job.queue_wait", "job.exec"} <= span_names

    def test_run_job_traces_a_run_lane(self, tmp_path):
        from repro.service.jobs import DONE, JobManager, JobSpec

        session = Session(ledger=tmp_path / "runs")
        manager = JobManager(session, job_workers=1, queue_size=4).start()
        try:
            job = manager.submit(
                JobSpec.from_payload(
                    {
                        "kind": "run",
                        "config": {
                            "workload": "mcf",
                            "scheme": "deuce",
                            "n_writes": N_WRITES,
                        },
                    }
                )
            )
            assert job.wait(60)
            assert job.state == DONE
        finally:
            manager.drain(10)
        lanes = load_trace(session.ledger.root / "traces" / job.id)
        by_name = {ln.name: ln for ln in lanes}
        assert {"job", "run"} <= set(by_name)
        assert by_name["run"].parent_id == by_name["job"].span_id
        # Chunk-level spans, not one span per write: traced service runs
        # must keep the chunked fast path.
        writes = [
            r
            for r in by_name["run"].records
            if r["type"] == "span" and r["name"] == "scheme.write"
        ]
        assert writes and len(writes) < N_WRITES

    def test_ledgerless_manager_runs_untraced(self, tmp_path):
        from repro.service.jobs import DONE, JobManager, JobSpec

        manager = JobManager(
            Session(ledger=False), job_workers=1, queue_size=4
        ).start()
        try:
            job = manager.submit(
                JobSpec.from_payload(
                    {
                        "kind": "run",
                        "config": {
                            "workload": "mcf",
                            "scheme": "deuce",
                            "n_writes": N_WRITES,
                        },
                    }
                )
            )
            assert job.wait(60)
            assert job.state == DONE
            assert job.trace_id == ""
        finally:
            manager.drain(10)


class TestWritePathProfiler:
    def test_profiled_run_is_bit_identical(self):
        config = SimConfig("mcf", "deuce", n_writes=N_WRITES)
        from repro.obs.instruments import Instruments

        plain = run(config)
        profiled = run(config, instruments=Instruments(profile=PhaseProfile()))
        assert profiled.profile is not None
        # The profile itself is NOT part of the comparable payload...
        assert "profile" not in plain.to_dict()
        assert "profile" not in profiled.to_dict()

        # ...and everything that is stays bit-identical (wall time is
        # timing metadata, never payload — same convention as the
        # chunked-parity oracles).
        def comparable(result):
            d = result.to_dict()
            d.pop("wall_time_s")
            return d

        assert comparable(profiled) == comparable(plain)

    def test_profile_attributes_the_chunked_phases(self):
        from repro.obs.instruments import Instruments

        profile = PhaseProfile()
        run(
            SimConfig("mcf", "deuce", n_writes=N_WRITES),
            instruments=Instruments(profile=profile),
        )
        phases = profile.to_dict()
        for name in ("trace.gen", "install", "scheme.write", "pcm.apply",
                     "accumulate"):
            assert name in phases, f"missing phase {name}"
            assert phases[name]["seconds"] >= 0.0
        shares = [entry["share"] for entry in phases.values()]
        assert 0.99 <= sum(shares) <= 1.01

    def test_profiler_overhead_is_negligible(self):
        """Profiled runtime must stay close to the uninstrumented runtime.

        The profiler's target budget is <5% overhead (it adds two dict
        ops per chunk phase); wall-clock comparisons on shared CI boxes
        are noisy, so the assertion allows 50% while the bit-identity
        check above pins correctness strictly.
        """
        import time

        from repro.obs.instruments import Instruments

        config = SimConfig("mcf", "deuce", n_writes=2_000)
        run(config)  # warm caches

        def best_of(n, factory):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                run(config, instruments=factory())
                best = min(best, time.perf_counter() - t0)
            return best

        from repro.obs.instruments import DISABLED

        plain = best_of(3, lambda: DISABLED)
        profiled = best_of(3, lambda: Instruments(profile=PhaseProfile()))
        assert profiled <= plain * 1.5

    def test_session_records_profile_artifact(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        result = session.run(SimConfig("mcf", "deuce", n_writes=N_WRITES))
        assert result.profile
        manifest = result.manifest
        filename = manifest.artifacts.get("profile")
        assert filename
        stored = json.loads(
            (session.ledger.run_dir(manifest.run_id) / filename).read_text()
        )
        assert stored == result.profile

    def test_obs_options_profile_rides_into_run_jobs(self, tmp_path):
        session = Session(ledger=tmp_path / "runs")
        obs = ObsOptions(trace_out=str(tmp_path / "run.jsonl"),
                         per_write_spans=False)
        result = session.run(
            SimConfig("mcf", "deuce", n_writes=N_WRITES), obs=obs
        )
        assert result.profile is not None
        lanes = load_trace(tmp_path / "run.jsonl")
        assert lanes[0].records
