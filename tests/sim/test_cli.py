"""CLI tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deuce" in out
        assert "mcf" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "--workload", "mcf", "--scheme", "deuce", "--writes", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flips_pct" in out
        assert "lifetime" in out

    def test_run_with_hwl(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "libq",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--wear-leveling",
                "hwl",
            ]
        )
        assert code == 0

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "mcf", "--scheme", "rot13"])


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "libq" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_figure_run(self, capsys):
        assert main(["experiment", "fig12", "--writes", "800"]) == 0
        assert "Fig 12" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "mcf"])
        assert args.scheme == "deuce"
        assert args.epoch_interval == 32
        assert args.wear_leveling == "none"


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--output", str(out), "--writes", "300"]
        )
        assert code == 0
        text = out.read_text()
        assert "# DEUCE reproduction report" in text
        assert "fig10" in text
        assert "Paper reports" in text


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        # Patch the experiment registry call path via small writes: use the
        # fast exhibits only by running the full command with tiny N would
        # be slow, so exercise the wiring through export_all directly here
        # and the CLI arg parsing below.
        args = build_parser().parse_args(["export", "--output", "x", "--writes", "7"])
        assert args.writes == 7
        assert args.output == "x"


class TestAnalyzeCommand:
    def test_analyze_generated_workload(self, capsys):
        code = main(["analyze", "--workload", "libq", "--writes", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended scheme: deuce" in out
        assert "flip_pct" in out

    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.workloads.trace import generate_trace

        path = tmp_path / "g.trc"
        generate_trace("Gems", 200, seed=0).save(path)
        code = main(["analyze", "--trace-file", str(path)])
        assert code == 0
        assert "encr-fnw" in capsys.readouterr().out
