"""CLI tests."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import build_parser, main


def runs_root() -> Path:
    """The ledger root the autouse fixture pointed the suite at."""
    return Path(os.environ["DEUCE_RUNS_DIR"])


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deuce" in out
        assert "mcf" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "--workload", "mcf", "--scheme", "deuce", "--writes", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flips_pct" in out
        assert "lifetime" in out

    def test_run_with_hwl(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "libq",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--wear-leveling",
                "hwl",
            ]
        )
        assert code == 0

    def test_run_with_sr_hwl(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--wear-leveling",
                "sr-hwl",
            ]
        )
        assert code == 0

    def test_run_with_pad_cache_disabled(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--pad-cache-lines",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pad_hit_rate" in out

    def test_bad_scheme_rejected(self, capsys):
        code = main(["run", "--workload", "mcf", "--scheme", "rot13"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scheme 'rot13'" in err
        assert "deuce" in err


class TestRunObservability:
    def test_metrics_trace_and_series_outputs(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        series = tmp_path / "s.csv"
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "dyndeuce",
                "--writes",
                "400",
                "--sample-interval",
                "100",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
                "--series-out",
                str(series),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled 4 intervals" in out
        for path in (metrics, trace):
            lines = path.read_text().splitlines()
            assert lines
            for line in lines:
                json.loads(line)
        rows = series.read_text().splitlines()
        assert len(rows) == 5  # header + 4 samples
        assert rows[0].startswith("write_index,")

    def test_series_out_defaults_sampling_cadence(self, tmp_path, capsys):
        series = tmp_path / "s.csv"
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "200",
                "--series-out",
                str(series),
            ]
        )
        assert code == 0
        assert series.exists()
        assert "sampled" in capsys.readouterr().out


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "libq" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_figure_run(self, capsys):
        assert main(["experiment", "fig12", "--writes", "800"]) == 0
        assert "Fig 12" in capsys.readouterr().out

    def test_progress_renders_on_stderr(self, capsys):
        code = main(
            ["experiment", "fig12", "--writes", "400", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Fig 12" in captured.out
        assert "done" in captured.err and "ETA" in captured.err
        assert captured.err.endswith("\n")

    def test_no_progress_keeps_stderr_quiet(self, capsys):
        code = main(
            ["experiment", "fig12", "--writes", "400", "--no-progress"]
        )
        assert code == 0
        assert capsys.readouterr().err == ""


class TestRunLedgerIntegration:
    def test_run_persists_a_manifest(self, capsys):
        from repro.obs.ledger import RunLedger

        code = main(
            [
                "run", "--workload", "mcf", "--scheme", "deuce",
                "--writes", "200", "--label", "cli-test",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recorded in" in out
        ledger = RunLedger()
        manifest = ledger.latest(kind="run", scheme="deuce")
        assert manifest is not None
        assert manifest.label == "cli-test"
        assert manifest.workload == "mcf"
        assert manifest.summary["flips_pct"] > 0
        assert manifest.wall_time_s > 0
        # Phase wall times came from tracer spans around the pipeline.
        assert "scheme.write" in manifest.phases
        # The summary table gained the ledger join columns.
        assert manifest.run_id in out
        assert "run_id" in out and "git_rev" in out
        # Metrics were captured as an artifact without any --metrics-out.
        run_dir = ledger.run_dir(manifest.run_id)
        assert (run_dir / "metrics.jsonl").exists()

    def test_no_ledger_skips_recording(self, capsys):
        code = main(
            [
                "run", "--workload", "mcf", "--scheme", "deuce",
                "--writes", "100", "--no-ledger",
            ]
        )
        assert code == 0
        assert "recorded in" not in capsys.readouterr().out
        assert not runs_root().exists()

    def test_no_ledger_run_is_bit_identical(self, capsys):
        """An unledgered CLI run equals the uninstrumented library run."""
        from repro.sim.config import SimConfig
        from repro.sim.runner import run

        assert main(
            [
                "run", "--workload", "mcf", "--scheme", "deuce",
                "--writes", "300", "--no-ledger",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["run", "--workload", "mcf", "--scheme", "deuce", "--writes", "300"]
        ) == 0
        ledgered = capsys.readouterr().out
        reference = run(SimConfig("mcf", "deuce", n_writes=300))
        expected = reference.summary_row()
        # Both CLI paths printed exactly the reference aggregates.
        for key in ("flips_pct", "data_flips_pct", "slots", "words_reenc"):
            assert str(expected[key]) in ledgered

    def test_ledgered_aggregates_match_uninstrumented(self):
        """Recording a manifest must not perturb simulation results."""
        from repro.obs.ledger import RunLedger
        from repro.sim.config import SimConfig
        from repro.sim.runner import run

        assert main(
            ["run", "--workload", "Gems", "--scheme", "dyndeuce",
             "--writes", "300"]
        ) == 0
        manifest = RunLedger().latest(kind="run", scheme="dyndeuce")
        reference = run(SimConfig("Gems", "dyndeuce", n_writes=300))
        row = reference.summary_row()
        assert {k: manifest.summary[k] for k in row} == row

    def test_experiment_records_cells_and_experiment(self, capsys):
        from repro.obs.ledger import RunLedger

        code = main(
            ["experiment", "fig12", "--writes", "300", "--no-progress"]
        )
        assert code == 0
        assert "recorded as" in capsys.readouterr().out
        ledger = RunLedger()
        exp = ledger.latest(kind="experiment", label="fig12")
        assert exp is not None and exp.wall_time_s > 0
        cells = ledger.list(kind="sweep-cell", label="fig12")
        assert cells and all(c.summary["flips_pct"] >= 0 for c in cells)


class TestRunsCommand:
    def _seed(self) -> list[str]:
        for scheme in ("deuce", "encr-dcw"):
            assert main(
                ["run", "--workload", "mcf", "--scheme", scheme,
                 "--writes", "150"]
            ) == 0
        from repro.obs.ledger import RunLedger

        return [m.run_id for m in RunLedger().list()]

    def test_list_show_diff_gc(self, capsys):
        ids = self._seed()
        capsys.readouterr()
        assert main(["runs", "list"]) == 0
        out = capsys.readouterr().out
        assert all(run_id in out for run_id in ids)
        assert main(["runs", "show", ids[0]]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == ids[0]
        assert main(["runs", "diff", ids[0], ids[1]]) == 0
        out = capsys.readouterr().out
        assert "flips_pct" in out and "delta" in out
        assert main(["runs", "gc", "--keep", "1"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_show_unknown_run_exits_2(self, capsys):
        assert main(["runs", "show", "missing-run"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_ledger_lists_nothing(self, capsys):
        assert main(["runs", "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out


class TestGateCommand:
    def _pin_and_seed(self, tmp_path, flips_pct_offset: float = 0.0) -> str:
        """Run the deuce cell, then write baselines around its measurement."""
        from tests.obs.test_gate import write_baselines

        assert main(
            ["run", "--workload", "mcf", "--scheme", "deuce",
             "--writes", "200"]
        ) == 0
        from repro.obs.ledger import RunLedger

        measured = RunLedger().latest(scheme="deuce").summary["flips_pct"]
        return str(
            write_baselines(
                tmp_path / "baselines",
                {"deuce": float(measured) + flips_pct_offset},
                min_writes_per_s=1.0,
            )
        )

    def test_gate_passes_in_band(self, tmp_path, capsys):
        baselines = self._pin_and_seed(tmp_path)
        assert main(["gate", "--baselines", baselines]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "OK" in out

    def test_gate_fails_outside_band_with_exit_1(self, tmp_path, capsys):
        baselines = self._pin_and_seed(tmp_path, flips_pct_offset=30.0)
        assert main(["gate", "--baselines", baselines]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "REGRESSION" in out

    def test_gate_missing_baselines_exits_2(self, tmp_path, capsys):
        assert main(["gate", "--baselines", str(tmp_path / "nope")]) == 2
        assert "gate error" in capsys.readouterr().err

    def test_gate_pin_rewrites_baselines(self, tmp_path, capsys):
        baselines = self._pin_and_seed(tmp_path, flips_pct_offset=30.0)
        assert main(["gate", "--baselines", baselines]) == 1
        capsys.readouterr()
        assert main(["gate", "--baselines", baselines, "--pin"]) == 0
        assert "re-pinned" in capsys.readouterr().out
        assert main(["gate", "--baselines", baselines]) == 0


class TestDashboardCommand:
    def test_dashboard_end_to_end(self, tmp_path, capsys):
        assert main(
            ["run", "--workload", "mcf", "--scheme", "deuce",
             "--writes", "150"]
        ) == 0
        out_path = tmp_path / "dash.html"
        assert main(["dashboard", "--output", str(out_path)]) == 0
        assert "dashboard written" in capsys.readouterr().out
        html = out_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert 'class="spark' in html and "deuce" in html


class TestTraceCommand:
    def _traced_sweep(self, tmp_path):
        trace_dir = tmp_path / "trace"
        assert main(
            ["sweep", "--workloads", "mcf", "--schemes", "deuce",
             "--writes", "150", "--workers", "1", "--no-ledger",
             "--no-progress", "--trace-dir", str(trace_dir)]
        ) == 0
        return trace_dir

    def test_sweep_trace_dir_writes_lanes(self, tmp_path, capsys):
        trace_dir = self._traced_sweep(tmp_path)
        assert "trace lanes written" in capsys.readouterr().out
        assert (trace_dir / "sweep.jsonl").exists()
        assert (trace_dir / "cell-0.jsonl").exists()

    def test_trace_export_writes_chrome_json(self, tmp_path, capsys):
        trace_dir = self._traced_sweep(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["trace", "export", str(trace_dir),
                     "--out", str(out)]) == 0
        assert "chrome trace written" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} >= {"M", "X"}

    def test_trace_report_prints_critical_path(self, tmp_path, capsys):
        trace_dir = self._traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["trace", "report", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "top 10 span names" in out

    def test_trace_resolves_job_ids_under_runs_dir(self, tmp_path, capsys):
        # A lane under <runs-dir>/traces/<id> is addressable by bare id.
        runs = Path(os.environ["DEUCE_RUNS_DIR"])
        lane_dir = runs / "traces" / "job-abc123"
        lane_dir.mkdir(parents=True)
        from repro.obs.context import TraceContext
        from repro.obs.tracing import JsonlSink, Tracer

        sink = JsonlSink(
            lane_dir / "job.jsonl",
            meta={**TraceContext.new().to_dict(), "lane": "job"},
        )
        Tracer(sink).span_event("job.exec", 0.0, 1.0)
        sink.close()
        assert main(["trace", "report", "job-abc123"]) == 0
        assert "job.exec" in capsys.readouterr().out

    def test_missing_trace_errors_cleanly(self, tmp_path, capsys):
        assert main(["trace", "report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "mcf"])
        assert args.scheme == "deuce"
        assert args.epoch_interval == 32
        assert args.wear_leveling == "none"
        assert args.sample_interval == 0
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.series_out is None
        assert args.pad_cache_lines > 0

    def test_progress_flag_tristate(self):
        parse = build_parser().parse_args
        assert parse(["experiment", "fig12"]).progress is None
        assert parse(["experiment", "fig12", "--progress"]).progress is True
        assert parse(["experiment", "fig12", "--no-progress"]).progress is False

    def test_workers_zero_means_auto(self):
        args = build_parser().parse_args(
            ["experiment", "fig12", "--workers", "0"]
        )
        assert args.workers == 0  # resolve_workers treats 0 as auto


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--output", str(out), "--writes", "300"]
        )
        assert code == 0
        text = out.read_text()
        assert "# DEUCE reproduction report" in text
        assert "fig10" in text
        assert "Paper reports" in text


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        # Patch the experiment registry call path via small writes: use the
        # fast exhibits only by running the full command with tiny N would
        # be slow, so exercise the wiring through export_all directly here
        # and the CLI arg parsing below.
        args = build_parser().parse_args(["export", "--output", "x", "--writes", "7"])
        assert args.writes == 7
        assert args.output == "x"


class TestAnalyzeCommand:
    def test_analyze_generated_workload(self, capsys):
        code = main(["analyze", "--workload", "libq", "--writes", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended scheme: deuce" in out
        assert "flip_pct" in out

    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.workloads.trace import generate_trace

        path = tmp_path / "g.trc"
        generate_trace("Gems", 200, seed=0).save(path)
        code = main(["analyze", "--trace-file", str(path)])
        assert code == 0
        assert "encr-fnw" in capsys.readouterr().out


class TestKvWorkloadRun:
    def test_kv_run_prints_phase_columns(self, capsys):
        code = main(
            ["run", "--workload", "kv-udb", "--scheme", "deuce",
             "--writes", "600", "--no-ledger",
             "--workload-params", '{"n_keys": 256, "cache_kb": 8}']
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase_populate_writes" in out
        assert "phase_steady_flips_pct" in out

    def test_invalid_param_exits_2_with_field_path(self, capsys):
        code = main(
            ["run", "--workload", "kv-udb", "--scheme", "deuce",
             "--writes", "100", "--no-ledger",
             "--workload-params", '{"zipf_alpha": "hi"}']
        )
        assert code == 2
        err = capsys.readouterr().err
        assert (
            "workload_params.zipf_alpha: expected float, got str ('hi')"
            in err
        )

    def test_malformed_params_json_exits_2(self, capsys):
        code = main(
            ["run", "--workload", "kv-udb", "--scheme", "deuce",
             "--writes", "100", "--no-ledger",
             "--workload-params", "{not json"]
        )
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_sweep_accepts_kv_profiles(self, capsys):
        code = main(
            ["sweep", "--workloads", "kv-cache", "--schemes",
             "deuce", "noencr-dcw", "--writes", "1500", "--workers", "1",
             "--no-ledger", "--no-progress",
             "--workload-params", '{"n_keys": 256, "cache_kb": 8}']
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kv-cache" in out and "phase_steady_flips_pct" in out


class TestPluginsCommand:
    def test_plugins_lists_every_registry(self, capsys):
        assert main(["plugins"]) == 0
        out = capsys.readouterr().out
        for kind in ("schemes", "wear_levelers", "pad_sources", "workloads"):
            assert kind in out
        assert "deuce" in out and "kv-udb" in out

    def test_describe_renders_param_schema(self, capsys):
        assert main(["plugins", "describe", "kv-udb"]) == 0
        out = capsys.readouterr().out
        assert "zipf_alpha" in out
        assert "float" in out

    def test_describe_unknown_name_suggests(self, capsys):
        assert main(["plugins", "describe", "kv-ubd"]) == 2
        assert "kv-udb" in capsys.readouterr().err

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["plugins", "describe", "kv-udb", "--json"]) == 0
        described = json.loads(capsys.readouterr().out)
        params = {p["name"] for p in described["workloads"]["params"]}
        assert "zipf_alpha" in params and "n_keys" in params


class TestKvSuiteCommand:
    def test_suites_lists_canned_recipes(self, capsys):
        assert main(["kv", "suites"]) == 0
        out = capsys.readouterr().out
        assert "etc-smoke" in out and "udb-steady" in out

    def test_record_then_verify_round_trip(self, tmp_path, capsys):
        path = tmp_path / "suite.jsonl"
        code = main(
            ["kv", "record", "--profile", "kv-udb", "--writes", "600",
             "--seed", "4", "--out", str(path),
             "--workload-params", '{"n_keys": 256, "cache_kb": 8}']
        )
        assert code == 0
        assert "recorded to" in capsys.readouterr().out
        assert path.exists()
        assert main(["kv", "verify", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_record_canned_suite_by_name(self, tmp_path, capsys):
        path = tmp_path / "etc.npz"
        assert main(["kv", "record", "--suite", "etc-smoke",
                     "--out", str(path)]) == 0
        assert path.exists()
        assert main(["kv", "verify", str(path)]) == 0

    def test_verify_detects_tampering(self, tmp_path, capsys):
        path = tmp_path / "suite.jsonl"
        assert main(
            ["kv", "record", "--profile", "kv-udb", "--writes", "600",
             "--out", str(path),
             "--workload-params", '{"n_keys": 256, "cache_kb": 8}']
        ) == 0
        lines = path.read_text().splitlines()
        # swap one steady-phase op's key for another valid key
        tampered = json.loads(lines[-1])
        tampered[1] = (tampered[1] + 1) % 256
        lines[-1] = json.dumps(tampered)
        path.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["kv", "verify", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err
