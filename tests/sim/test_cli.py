"""CLI tests."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_list_prints_inventory(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "deuce" in out
        assert "mcf" in out
        assert "fig10" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "--workload", "mcf", "--scheme", "deuce", "--writes", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flips_pct" in out
        assert "lifetime" in out

    def test_run_with_hwl(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "libq",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--wear-leveling",
                "hwl",
            ]
        )
        assert code == 0

    def test_run_with_sr_hwl(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--wear-leveling",
                "sr-hwl",
            ]
        )
        assert code == 0

    def test_run_with_pad_cache_disabled(self, capsys):
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "100",
                "--pad-cache-lines",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pad_hit_rate" in out

    def test_bad_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "mcf", "--scheme", "rot13"])


class TestRunObservability:
    def test_metrics_trace_and_series_outputs(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        trace = tmp_path / "t.jsonl"
        series = tmp_path / "s.csv"
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "dyndeuce",
                "--writes",
                "400",
                "--sample-interval",
                "100",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
                "--series-out",
                str(series),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled 4 intervals" in out
        for path in (metrics, trace):
            lines = path.read_text().splitlines()
            assert lines
            for line in lines:
                json.loads(line)
        rows = series.read_text().splitlines()
        assert len(rows) == 5  # header + 4 samples
        assert rows[0].startswith("write_index,")

    def test_series_out_defaults_sampling_cadence(self, tmp_path, capsys):
        series = tmp_path / "s.csv"
        code = main(
            [
                "run",
                "--workload",
                "mcf",
                "--scheme",
                "deuce",
                "--writes",
                "200",
                "--series-out",
                str(series),
            ]
        )
        assert code == 0
        assert series.exists()
        assert "sampled" in capsys.readouterr().out


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "libq" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_figure_run(self, capsys):
        assert main(["experiment", "fig12", "--writes", "800"]) == 0
        assert "Fig 12" in capsys.readouterr().out

    def test_progress_renders_on_stderr(self, capsys):
        code = main(
            ["experiment", "fig12", "--writes", "400", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Fig 12" in captured.out
        assert "done" in captured.err and "ETA" in captured.err
        assert captured.err.endswith("\n")

    def test_no_progress_keeps_stderr_quiet(self, capsys):
        code = main(
            ["experiment", "fig12", "--writes", "400", "--no-progress"]
        )
        assert code == 0
        assert capsys.readouterr().err == ""


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "--workload", "mcf"])
        assert args.scheme == "deuce"
        assert args.epoch_interval == 32
        assert args.wear_leveling == "none"
        assert args.sample_interval == 0
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.series_out is None
        assert args.pad_cache_lines > 0

    def test_progress_flag_tristate(self):
        parse = build_parser().parse_args
        assert parse(["experiment", "fig12"]).progress is None
        assert parse(["experiment", "fig12", "--progress"]).progress is True
        assert parse(["experiment", "fig12", "--no-progress"]).progress is False

    def test_workers_zero_means_auto(self):
        args = build_parser().parse_args(
            ["experiment", "fig12", "--workers", "0"]
        )
        assert args.workers == 0  # resolve_workers treats 0 as auto


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(
            ["report", "--output", str(out), "--writes", "300"]
        )
        assert code == 0
        text = out.read_text()
        assert "# DEUCE reproduction report" in text
        assert "fig10" in text
        assert "Paper reports" in text


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        # Patch the experiment registry call path via small writes: use the
        # fast exhibits only by running the full command with tiny N would
        # be slow, so exercise the wiring through export_all directly here
        # and the CLI arg parsing below.
        args = build_parser().parse_args(["export", "--output", "x", "--writes", "7"])
        assert args.writes == 7
        assert args.output == "x"


class TestAnalyzeCommand:
    def test_analyze_generated_workload(self, capsys):
        code = main(["analyze", "--workload", "libq", "--writes", "400"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended scheme: deuce" in out
        assert "flip_pct" in out

    def test_analyze_trace_file(self, tmp_path, capsys):
        from repro.workloads.trace import generate_trace

        path = tmp_path / "g.trc"
        generate_trace("Gems", 200, seed=0).save(path)
        code = main(["analyze", "--trace-file", str(path)])
        assert code == 0
        assert "encr-fnw" in capsys.readouterr().out
