"""The unified plugin registry (:mod:`repro.registry`).

Schemes, wear levelers, pad sources, and workloads all resolve through
the same :class:`~repro.registry.Registry` machinery, so config decoding
gets uniform unknown-name errors (with did-you-mean suggestions) no
matter which axis is wrong, and ``describe()`` gives tooling one schema
surface for every plugin kind.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.registry import (
    PAD_SOURCES,
    SCHEMES,
    WEAR_LEVELERS,
    WORKLOADS,
    FieldSpec,
    RegistryError,
    validate_config_names,
)
from repro.sim.config import ConfigError, SimConfig


class TestRegistryCore:
    def test_all_axes_are_populated(self):
        assert "deuce" in SCHEMES
        assert "none" in WEAR_LEVELERS and "hwl" in WEAR_LEVELERS
        assert set(PAD_SOURCES.names) == {"aes", "blake2"}
        assert "mcf" in WORKLOADS

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(RegistryError, match="did you mean 'deuce'"):
            SCHEMES.get("duece")

    def test_registry_error_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            SCHEMES.get("nope")

    def test_describe_lists_schema(self):
        description = SCHEMES.describe()["deuce"]
        assert "epoch_interval" in description["schema"]
        assert description["description"]

    def test_scheme_factories_match_runner(self):
        from repro.sim.runner import build_scheme

        config = SimConfig("mcf", "encr-dcw", n_writes=10)
        built = build_scheme(config)
        assert type(built) is SCHEMES.get("encr-dcw").factory

    def test_wear_leveler_factory_builds(self):
        config = SimConfig("mcf", "deuce", n_writes=10, wear_leveling="hwl")
        leveler = WEAR_LEVELERS.create("hwl", config, 64, 512)
        assert leveler is not None

    def test_pad_source_factory_builds(self):
        pads = PAD_SOURCES.create("blake2", b"k" * 16)
        assert len(pads.line_pad(0, 0, 64)) == 64


class TestConfigDecode:
    def test_validate_config_names_accepts_valid(self):
        validate_config_names(
            scheme="deuce", workload="mcf", pad_kind="aes",
            wear_leveling="none",
        )

    def test_from_dict_unknown_scheme_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'deuce'"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "duece"}
            )

    def test_from_dict_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            SimConfig.from_dict(
                {"workload": "mcg", "scheme": "deuce"}
            )

    def test_from_dict_unknown_pad_kind(self):
        with pytest.raises(ConfigError, match="unknown pad source"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce",
                 "pad_kind": "blake3"}
            )

    def test_from_dict_unknown_wear_leveling(self):
        with pytest.raises(ConfigError, match="wear_leveling"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce",
                 "wear_leveling": "hlw"}
            )

    def test_registry_error_surfaces_suggestion_attribute(self):
        try:
            registry.WORKLOADS.get("mfc")
        except RegistryError as exc:
            assert exc.suggestion == "mcf"
        else:  # pragma: no cover
            pytest.fail("expected RegistryError")

class TestFieldSpecValidation:
    def test_type_mismatch_names_the_field_path(self):
        spec = FieldSpec("alpha", "float")
        with pytest.raises(
            RegistryError, match=r"p\.alpha: expected float, got str"
        ):
            spec.check("hi", "p.alpha")

    def test_float_accepts_json_integers(self):
        FieldSpec("alpha", "float").check(2, "p.alpha")

    def test_bool_is_not_an_int(self):
        with pytest.raises(RegistryError, match="expected int, got bool"):
            FieldSpec("n", "int").check(True, "p.n")

    def test_bounds_are_inclusive(self):
        spec = FieldSpec("n", "int", minimum=16, maximum=32)
        spec.check(16, "p.n")
        spec.check(32, "p.n")
        with pytest.raises(RegistryError, match="must be >= 16"):
            spec.check(15, "p.n")
        with pytest.raises(RegistryError, match="must be <= 32"):
            spec.check(33, "p.n")

    def test_choices_enforced(self):
        spec = FieldSpec("mode", "str", choices=("a", "b"))
        spec.check("a", "p.mode")
        with pytest.raises(RegistryError, match="must be one of 'a', 'b'"):
            spec.check("c", "p.mode")

    def test_unknown_type_name_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="FieldSpec type"):
            FieldSpec("x", "complex")


class TestValidateParams:
    def test_valid_params_pass(self):
        assert (
            WORKLOADS.validate(
                "kv-udb", {"zipf_alpha": 1.2}, path="workload_params"
            )
            == "kv-udb"
        )

    def test_unknown_param_gets_did_you_mean(self):
        with pytest.raises(
            RegistryError,
            match=r"workload_params\.zipf_alph.*did you mean 'zipf_alpha'",
        ):
            WORKLOADS.validate(
                "kv-udb", {"zipf_alph": 1.2}, path="workload_params"
            )

    def test_unknown_param_lists_declared_fields(self):
        with pytest.raises(
            RegistryError, match=r"declared: n_keys, value_bytes"
        ):
            WORKLOADS.validate(
                "kv-udb", {"zipf": 1.2}, path="workload_params"
            )

    def test_paramless_plugin_rejects_any_params(self):
        with pytest.raises(RegistryError, match="accepts no parameters"):
            WORKLOADS.validate(
                "mcf", {"zipf_alpha": 1.2}, path="workload_params"
            )

    def test_error_message_identical_to_config_decode(self):
        # the registry message IS the from_dict message (same funnel)
        try:
            WORKLOADS.validate(
                "kv-udb", {"zipf_alpha": "hi"}, path="workload_params"
            )
        except RegistryError as registry_err:
            with pytest.raises(ConfigError) as config_err:
                SimConfig.from_dict({
                    "workload": "kv-udb", "scheme": "deuce",
                    "workload_params": {"zipf_alpha": "hi"},
                })
            assert str(registry_err) in str(config_err.value)
        else:  # pragma: no cover
            pytest.fail("expected RegistryError")


class _FakeEntryPoint:
    """Duck-typed importlib.metadata.EntryPoint for injection."""

    def __init__(self, name, hook):
        self.name = name
        self._hook = hook

    def load(self):
        return self._hook


class TestEntryPointPlugins:
    def test_dummy_plugin_registers_and_runs(self):
        from dataclasses import replace

        from repro.registry import load_entry_point_plugins
        from repro.sim.runner import run
        from repro.workloads.kv import KV_PARAM_SPECS, KV_PROFILES

        base = replace(
            KV_PROFILES["kv-udb"], name="kv-plugin-test",
            n_keys=256, cache_kb=8,
        )

        def hook(registries):
            registries["workloads"].register(
                "kv-plugin-test",
                lambda **kw: replace(base, **kw),
                schema=("n_writes", "seed", "line_bytes", "workload_params"),
                params=KV_PARAM_SPECS,
                description="test plugin workload",
            )

        loaded = load_entry_point_plugins(
            entry_points=[_FakeEntryPoint("dummy", hook)]
        )
        try:
            assert loaded == ["dummy"]
            assert "kv-plugin-test" in WORKLOADS
            # the registered name is immediately runnable from a config
            # dict, params validated like any built-in
            result = run(SimConfig.from_dict({
                "workload": "kv-plugin-test", "scheme": "noencr-dcw",
                "n_writes": 500, "seed": 1,
                "workload_params": {"zipf_alpha": 1.0},
            }))
            assert result.n_writes == 500
            assert set(result.phase_stats) == {"populate", "steady"}
            with pytest.raises(ConfigError, match="workload_params.bogus"):
                SimConfig.from_dict({
                    "workload": "kv-plugin-test", "scheme": "deuce",
                    "workload_params": {"bogus": 1},
                })
        finally:
            WORKLOADS.unregister("kv-plugin-test")
        assert "kv-plugin-test" not in WORKLOADS

    def test_broken_plugin_is_skipped_not_fatal(self):
        from repro.registry import load_entry_point_plugins

        def bad_hook(registries):
            raise RuntimeError("boom")

        before = set(WORKLOADS.names)
        loaded = load_entry_point_plugins(
            entry_points=[
                _FakeEntryPoint("bad", bad_hook),
                _FakeEntryPoint(
                    "ok", lambda registries: None
                ),
            ]
        )
        assert loaded == ["ok"]
        assert set(WORKLOADS.names) == before
