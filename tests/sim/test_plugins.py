"""The unified plugin registry (:mod:`repro.registry`).

Schemes, wear levelers, pad sources, and workloads all resolve through
the same :class:`~repro.registry.Registry` machinery, so config decoding
gets uniform unknown-name errors (with did-you-mean suggestions) no
matter which axis is wrong, and ``describe()`` gives tooling one schema
surface for every plugin kind.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.registry import (
    PAD_SOURCES,
    SCHEMES,
    WEAR_LEVELERS,
    WORKLOADS,
    RegistryError,
    validate_config_names,
)
from repro.sim.config import ConfigError, SimConfig


class TestRegistryCore:
    def test_all_axes_are_populated(self):
        assert "deuce" in SCHEMES
        assert "none" in WEAR_LEVELERS and "hwl" in WEAR_LEVELERS
        assert set(PAD_SOURCES.names) == {"aes", "blake2"}
        assert "mcf" in WORKLOADS

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(RegistryError, match="did you mean 'deuce'"):
            SCHEMES.get("duece")

    def test_registry_error_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            SCHEMES.get("nope")

    def test_describe_lists_schema(self):
        description = SCHEMES.describe()["deuce"]
        assert "epoch_interval" in description["schema"]
        assert description["description"]

    def test_scheme_factories_match_runner(self):
        from repro.sim.runner import build_scheme

        config = SimConfig("mcf", "encr-dcw", n_writes=10)
        built = build_scheme(config)
        assert type(built) is SCHEMES.get("encr-dcw").factory

    def test_wear_leveler_factory_builds(self):
        config = SimConfig("mcf", "deuce", n_writes=10, wear_leveling="hwl")
        leveler = WEAR_LEVELERS.create("hwl", config, 64, 512)
        assert leveler is not None

    def test_pad_source_factory_builds(self):
        pads = PAD_SOURCES.create("blake2", b"k" * 16)
        assert len(pads.line_pad(0, 0, 64)) == 64


class TestConfigDecode:
    def test_validate_config_names_accepts_valid(self):
        validate_config_names(
            scheme="deuce", workload="mcf", pad_kind="aes",
            wear_leveling="none",
        )

    def test_from_dict_unknown_scheme_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'deuce'"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "duece"}
            )

    def test_from_dict_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            SimConfig.from_dict(
                {"workload": "mcg", "scheme": "deuce"}
            )

    def test_from_dict_unknown_pad_kind(self):
        with pytest.raises(ConfigError, match="unknown pad source"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce",
                 "pad_kind": "blake3"}
            )

    def test_from_dict_unknown_wear_leveling(self):
        with pytest.raises(ConfigError, match="wear_leveling"):
            SimConfig.from_dict(
                {"workload": "mcf", "scheme": "deuce",
                 "wear_leveling": "hlw"}
            )

    def test_registry_error_surfaces_suggestion_attribute(self):
        try:
            registry.WORKLOADS.get("mfc")
        except RegistryError as exc:
            assert exc.suggestion == "mcf"
        else:  # pragma: no cover
            pytest.fail("expected RegistryError")
