"""Table and chart rendering tests."""

from __future__ import annotations

from repro.analysis.charts import bar_chart, grouped_bar_chart, hbar, sparkline
from repro.analysis.tables import format_cell, render_comparison, render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [{"name": "a", "value": 1.5}, {"name": "bb", "value": 10}],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "value" in lines[1]
        assert len(lines) == 5

    def test_missing_cells_render_dash(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "-" in text.splitlines()[-1]

    def test_float_precision(self):
        text = render_table(["x"], [{"x": 1.23456}], precision=3)
        assert "1.235" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderComparison:
    def test_series_columns(self):
        text = render_comparison(
            "wl",
            {"deuce": {"mcf": 10.0}, "fnw": {"mcf": 43.0}},
            labels=["mcf"],
        )
        assert "deuce" in text and "fnw" in text and "mcf" in text


class TestCharts:
    def test_hbar_scales(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(10, 10, width=10) == "#" * 10
        assert hbar(0, 10) == ""
        assert hbar(1, 0) == ""

    def test_bar_chart_contains_values(self):
        text = bar_chart({"mcf": 10.0, "libq": 5.0}, title="flips")
        assert "flips" in text
        assert "mcf" in text
        assert "10.0" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_grouped_chart(self):
        text = grouped_bar_chart(
            {"a": {"x": 1.0}, "b": {"x": 2.0}}, labels=["x"]
        )
        assert "x:" in text

    def test_sparkline_length_bounded(self):
        line = sparkline(list(range(512)), width=64)
        assert 0 < len(line) <= 65

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestFormatCell:
    def test_float(self):
        assert format_cell(1.5, precision=1) == "1.5"

    def test_string_passthrough(self):
        assert format_cell("x") == "x"

    def test_int(self):
        assert format_cell(7) == "7"
