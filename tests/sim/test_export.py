"""CSV export tests."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.export import export_all, export_csv
from repro.sim.experiments import fig12_bit_position_skew, table2_workloads


class TestExportCsv:
    def test_rows_and_header(self, tmp_path):
        path = export_csv(table2_workloads(), tmp_path / "t2.csv")
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 12
        assert rows[0]["workload"] == "libq"
        assert float(rows[0]["read_mpki"]) == 22.9

    def test_average_row_appended(self, tmp_path):
        result = fig12_bit_position_skew(n_writes=600)
        result.averages = {"max_over_mean": 1.0}
        path = export_csv(result, tmp_path / "f12.csv")
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[-1]["workload"] == "AVG"


class TestExportAll:
    def test_writes_files_and_index(self, tmp_path):
        paths = export_all(
            tmp_path / "csv", n_writes=300, experiments=["table2", "fig12"]
        )
        names = {p.name for p in paths}
        assert names == {"table2.csv", "fig12.csv", "index.csv"}
        with open(tmp_path / "csv" / "index.csv") as fh:
            index = list(csv.DictReader(fh))
        assert {r["experiment"] for r in index} == {"table2", "fig12"}

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(ValueError):
            export_all(tmp_path, experiments=["nope"])
