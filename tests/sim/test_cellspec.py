"""Wire-level sweep-cell units: :class:`CellSpec` and checkpoint merge.

These are the serialization seams the fleet coordinator leans on: a cell
spec survives a JSON round trip (re-validating its config through the
registry) and detects payload/config signature drift; merging sweep
checkpoints is signature-keyed and idempotent so a coordinator can fold
per-worker partials into one resumable record.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Session
from repro.sim.checkpoint import (
    CellSpec,
    CheckpointError,
    SweepCheckpoint,
    config_signature,
)
from repro.sim.config import SimConfig


class TestCellSpec:
    def test_round_trip(self):
        config = SimConfig("mcf", "deuce", n_writes=100, seed=3)
        spec = CellSpec(index=4, config=config)
        wire = json.loads(json.dumps(spec.to_dict()))
        back = CellSpec.from_dict(wire)
        assert back.index == 4
        assert back.config == config
        assert back.signature == config_signature(config)

    def test_signature_mismatch_rejected(self):
        config = SimConfig("mcf", "deuce", n_writes=100)
        wire = CellSpec(index=0, config=config).to_dict()
        wire["config_signature"] = "0" * 16
        with pytest.raises(CheckpointError, match="signature mismatch"):
            CellSpec.from_dict(wire)

    def test_bad_config_name_rejected_on_decode(self):
        config = SimConfig("mcf", "deuce", n_writes=100)
        wire = CellSpec(index=0, config=config).to_dict()
        wire["config"] = dict(wire["config"], scheme="duece")
        with pytest.raises(Exception, match="did you mean"):
            CellSpec.from_dict(wire)


class TestCheckpointMerge:
    def _completed(self, tmp_path, name, configs):
        checkpoint = SweepCheckpoint(tmp_path / name)
        session = Session(ledger=False)
        for i, config in enumerate(configs):
            checkpoint.record(i, config, session.run(config))
        return checkpoint

    def test_merge_is_signature_keyed_and_idempotent(self, tmp_path):
        configs = [
            SimConfig("mcf", "deuce", n_writes=50, seed=s) for s in range(3)
        ]
        ours = self._completed(tmp_path, "ours", configs[:2])
        theirs = self._completed(tmp_path, "theirs", configs[1:])

        added = ours.merge_from(theirs)
        assert added == 1  # only the cell we did not already have
        assert set(ours.load()) == {config_signature(c) for c in configs}
        # Merging again is a no-op.
        assert ours.merge_from(theirs) == 0

        # Merged rows are byte-preserved: the absorbed record equals the
        # source record exactly.
        source = theirs.load()[config_signature(configs[2])]
        merged = ours.load()[config_signature(configs[2])]
        assert merged == source

    def test_merged_checkpoint_resumes_a_sweep(self, tmp_path):
        configs = [
            SimConfig("mcf", "deuce", n_writes=50, seed=s) for s in range(3)
        ]
        ours = self._completed(tmp_path, "ours", configs[:1])
        theirs = self._completed(tmp_path, "theirs", configs[1:])
        ours.merge_from(theirs)
        # A resume over the merged record re-runs nothing.
        session = Session(ledger=False)
        results = session.sweep(
            configs, workers=1, checkpoint=ours.directory
        )
        assert len(results) == 3
        restored = ours.restore()
        for config, result in zip(configs, results):
            assert (
                restored[config_signature(config)].to_dict()
                == result.to_dict()
            )
