"""Chunked write path == serial write path, bit for bit.

The chunked loop (``chunk_size > 1``) batches writes through
``scheme.write_batch`` with precomputed pad streams and scatter-add
accumulation; ``chunk_size=1`` is the per-write reference loop.  These
tests pin the documented equality contract: every aggregate, the sampled
series, the wear profile, and checkpoint/resume continuations are
bit-identical at any chunk size.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.instruments import Instruments
from repro.sim.config import SimConfig
from repro.sim.runner import run

#: Every scheme with a batch implementation (the chunked path engages for
#: these; anything else silently falls back to the serial loop).
BATCH_SCHEMES = ("deuce", "encr-dcw", "noencr-dcw")

BASE = dict(workload="mcf", n_writes=800, seed=0)


def comparable(result) -> dict:
    """``to_dict`` minus wall clock, ledger id, and the chunking knob.

    ``chunk_size`` is a performance knob, not a semantic one, so two runs
    differing only in it must agree on everything else.
    """
    d = result.to_dict()
    d.pop("wall_time_s")
    d.pop("run_id")
    cfg = d.get("config")
    if cfg:
        cfg.pop("chunk_size", None)
    return d


def run_pair(**overrides):
    serial = run(SimConfig(**BASE, **overrides, chunk_size=1))
    chunked = run(
        SimConfig(**BASE, **overrides, chunk_size=overrides.pop("_cs", 64))
    )
    return serial, chunked


class TestChunkedMatchesSerial:
    @pytest.mark.parametrize("scheme", BATCH_SCHEMES)
    def test_aggregates_identical(self, scheme):
        serial, chunked = run_pair(scheme=scheme)
        assert comparable(serial) == comparable(chunked)

    @pytest.mark.parametrize("scheme", BATCH_SCHEMES)
    def test_wear_profile_identical(self, scheme):
        serial, chunked = run_pair(scheme=scheme)
        assert np.array_equal(
            serial.wear.position_writes, chunked.wear.position_writes
        )
        assert serial.wear.max_line_bit_writes == chunked.wear.max_line_bit_writes

    def test_epoch_resets_inside_chunks(self):
        # A tiny epoch interval forces resets mid-chunk; the batch path
        # must segment its meta accumulation at each reset.
        serial, chunked = run_pair(scheme="deuce", epoch_interval=4)
        assert chunked.epoch_resets > 0
        assert comparable(serial) == comparable(chunked)

    def test_wear_leveling_cuts_chunks(self):
        # Start-Gap rotations are interval side effects: chunks must end
        # exactly at rotation boundaries to stay bit-identical.
        serial, chunked = run_pair(
            scheme="deuce", wear_leveling="hwl", gap_write_interval=37
        )
        assert comparable(serial) == comparable(chunked)

    def test_per_line_wear_tracking(self):
        serial, chunked = run_pair(
            scheme="deuce", track_per_line_wear=True
        )
        assert comparable(serial) == comparable(chunked)
        assert serial.wear.max_line_bit_writes == chunked.wear.max_line_bit_writes

    def test_sampled_series_identical(self):
        cfg = dict(BASE, scheme="deuce")
        serial = run(
            SimConfig(**cfg, chunk_size=1),
            instruments=Instruments(sample_interval=100),
        )
        chunked = run(
            SimConfig(**cfg, chunk_size=64),
            instruments=Instruments(sample_interval=100),
        )
        assert serial.series is not None and chunked.series is not None
        assert serial.series.as_rows() == chunked.series.as_rows()

    def test_pad_cache_stats_identical(self):
        # Hit/miss accounting must not change under batched pad fetches
        # (the LRU sees one wide request instead of many small ones).
        serial, chunked = run_pair(scheme="deuce", pad_cache_lines=64)
        assert serial.pad_hits == chunked.pad_hits
        assert serial.pad_misses == chunked.pad_misses


class TestChunkedProperties:
    @given(
        chunk_size=st.integers(min_value=2, max_value=257),
        n_writes=st.integers(min_value=40, max_value=300),
        seed=st.integers(min_value=0, max_value=7),
        epoch_interval=st.sampled_from([2, 4, 8, 16]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_chunk_size_is_bit_identical(
        self, chunk_size, n_writes, seed, epoch_interval
    ):
        base = dict(
            workload="libq",
            scheme="deuce",
            n_writes=n_writes,
            seed=seed,
            epoch_interval=epoch_interval,
        )
        serial = run(SimConfig(**base, chunk_size=1))
        chunked = run(SimConfig(**base, chunk_size=chunk_size))
        assert comparable(serial) == comparable(chunked)


class TestChunkedCheckpointResume:
    def _straight(self, chunk_size: int):
        return run(
            SimConfig(
                "libq", "deuce", n_writes=600, seed=3, chunk_size=chunk_size
            )
        )

    @pytest.mark.parametrize("checkpoint_every", [77, 256])
    def test_resume_mid_chunk_is_bit_identical(
        self, tmp_path, checkpoint_every
    ):
        # Checkpoint boundaries cut chunks at arbitrary (non-multiple)
        # offsets; resuming from the last snapshot must reproduce the
        # uninterrupted run exactly, serial or chunked.
        cfg = SimConfig("libq", "deuce", n_writes=600, seed=3, chunk_size=50)
        ckpt_dir = tmp_path / f"ck{checkpoint_every}"
        full = run(
            cfg,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=checkpoint_every,
        )
        resumed = run(resume_from=str(ckpt_dir))
        assert comparable(full) == comparable(resumed)
        assert comparable(full) == comparable(self._straight(1))

    @given(checkpoint_every=st.integers(min_value=13, max_value=590))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_random_resume_cut(self, tmp_path, checkpoint_every):
        cfg = SimConfig("libq", "deuce", n_writes=600, seed=3, chunk_size=64)
        ckpt_dir = tmp_path / f"rand{checkpoint_every}"
        full = run(
            cfg, checkpoint_dir=ckpt_dir, checkpoint_every=checkpoint_every
        )
        resumed = run(resume_from=str(ckpt_dir))
        assert comparable(full) == comparable(resumed)
