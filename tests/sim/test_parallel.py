"""Parallel sweep engine: determinism, ordering, and fallback behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import SimConfig
from repro.sim.parallel import resolve_workers, run_suite_parallel
from repro.sim.runner import run_suite


def _grid(n_writes: int = 500) -> list[SimConfig]:
    """A small multi-scheme, multi-workload sweep grid."""
    return [
        SimConfig(workload, scheme, n_writes=n_writes, seed=3)
        for workload in ("mcf", "libq")
        for scheme in ("deuce", "encr-fnw", "dyndeuce")
    ]


class TestResolveWorkers:
    def test_serial_knob(self):
        assert resolve_workers(1, 10) == 1

    def test_both_auto_conventions_agree(self):
        """``None`` (API) and ``0`` (CLI) both mean auto-size, identically."""
        assert resolve_workers(None, 100) == resolve_workers(0, 100)
        assert 1 <= resolve_workers(0, 100) <= 8

    def test_capped_by_cells(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(None, 1) == 1
        assert resolve_workers(0, 1) == 1

    def test_auto_is_positive(self):
        assert resolve_workers(None, 100) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1, 4)


class TestRunSuiteParallel:
    def test_empty(self):
        assert run_suite_parallel([]) == []

    def test_serial_fallback_matches_run_suite(self):
        configs = _grid(200)
        fallback = run_suite_parallel(configs, max_workers=1)
        serial = run_suite(configs)
        assert [r.total_flips for r in fallback] == [
            r.total_flips for r in serial
        ]

    def test_parallel_matches_serial_bit_identically(self):
        """The tentpole guarantee: 4 workers == serial, field for field."""
        configs = _grid(500)
        serial = run_suite(configs)
        parallel = run_suite_parallel(configs, max_workers=4)
        assert len(parallel) == len(serial)
        for s, p in zip(serial, parallel):
            assert (p.workload, p.scheme) == (s.workload, s.scheme)
            assert p.total_flips == s.total_flips
            assert p.data_flips == s.data_flips
            assert p.meta_flips == s.meta_flips
            assert p.set_flips == s.set_flips
            assert p.reset_flips == s.reset_flips
            assert p.slot_histogram == s.slot_histogram
            assert p.mode_histogram == s.mode_histogram
            assert p.total_words_reencrypted == s.total_words_reencrypted
            assert np.array_equal(
                p.wear.position_writes, s.wear.position_writes
            )

    def test_results_come_back_in_submission_order(self):
        configs = _grid(200)
        results = run_suite_parallel(configs, max_workers=2)
        assert [(r.workload, r.scheme) for r in results] == [
            (c.workload, c.scheme) for c in configs
        ]
