"""Experiment-layer tests (small trace lengths; shape checks only)."""

from __future__ import annotations

import pytest

from repro.sim.experiments import (
    EXPERIMENTS,
    bit_position_profile,
    fig5_encryption_overhead,
    fig8_word_size,
    fig12_bit_position_skew,
    fig15_write_slots,
    fig18_ble,
    table2_workloads,
    table3_storage_overhead,
)

N = 600  # tiny but enough for ordering-level assertions


class TestStructure:
    def test_registry_covers_every_paper_exhibit(self):
        assert set(EXPERIMENTS) == {
            "fig5",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "table3",
            "fig12",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
        }

    def test_table2_lists_all_workloads(self):
        result = table2_workloads()
        assert len(result.rows) == 12
        assert result.rows[0]["workload"] == "libq"

    def test_render_includes_title_and_average(self):
        result = fig5_encryption_overhead(n_writes=N)
        text = result.render()
        assert "Fig 5" in text
        assert "AVG" in text
        assert "Paper reports" in text


class TestShapes:
    def test_fig5_encryption_costs_roughly_4x(self):
        result = fig5_encryption_overhead(n_writes=N)
        avg = result.averages
        assert avg["Encr-DCW"] > 3 * avg["NoEncr-DCW"]
        assert avg["Encr-FNW"] < avg["Encr-DCW"]
        assert avg["NoEncr-FNW"] <= avg["NoEncr-DCW"]

    def test_fig8_coarser_words_flip_more(self):
        result = fig8_word_size(n_writes=N)
        avg = result.averages
        assert avg["2B"] <= avg["4B"] <= avg["8B"]
        assert avg["1B"] <= avg["2B"]

    def test_fig15_slot_ordering(self):
        result = fig15_write_slots(n_writes=N)
        avg = result.averages
        assert avg["Encr"] == pytest.approx(4.0, abs=0.01)
        assert avg["NoEncr"] < avg["DEUCE"] < avg["Encr"]

    def test_fig18_combination_beats_both(self):
        result = fig18_ble(n_writes=N)
        avg = result.averages
        assert avg["BLE+DEUCE"] < avg["BLE"]
        assert avg["DEUCE"] < avg["BLE"]

    def test_table3_overheads(self):
        result = table3_storage_overhead(n_writes=N)
        overhead = {r["scheme"]: r["overhead_bits"] for r in result.rows}
        assert overhead == {
            "FNW": 32,
            "DEUCE": 32,
            "DynDEUCE": 33,
            "DEUCE+FNW": 64,
        }

    def test_fig12_libq_more_skewed_than_mcf(self):
        result = fig12_bit_position_skew(n_writes=4 * N)
        skew = {r["workload"]: r["max_over_mean"] for r in result.rows}
        assert skew["libq"] > skew["mcf"] > 1.5


class TestProfiles:
    def test_bit_position_profile_normalized(self):
        profile = bit_position_profile("mcf", n_writes=2 * N)
        assert profile.size == 512
        assert profile.mean() == pytest.approx(1.0, abs=0.01)


@pytest.mark.slow
class TestPerformanceExperiments:
    def test_fig16_shape(self):
        from repro.sim.experiments import fig16_speedup

        result = fig16_speedup(n_writes=400, instructions=200_000)
        avg = result.averages
        assert avg["Encr-FNW"] == pytest.approx(1.0, abs=0.05)
        assert avg["DEUCE"] > 1.05
        assert avg["NoEncr-FNW"] >= avg["DEUCE"] * 0.97

    def test_fig17_shape(self):
        from repro.sim.experiments import fig17_energy_power_edp

        result = fig17_energy_power_edp(n_writes=400, instructions=200_000)
        rows = {r["scheme"]: r for r in result.rows}
        assert rows["DEUCE"]["energy"] < 0.75
        assert rows["DEUCE"]["power"] >= rows["DEUCE"]["energy"]
        assert rows["Encr-FNW"]["energy"] > rows["DEUCE"]["energy"]

    def test_fig14_shape(self):
        from repro.sim.experiments import fig14_lifetime

        result = fig14_lifetime(n_writes=4_000)
        avg = result.averages
        assert avg["DEUCE-HWL"] > avg["DEUCE"]
        assert avg["DEUCE-HWL"] > 1.5


class TestRunnerSchemeRegistry:
    def test_invmm_runs_through_the_simulator(self):
        from repro.sim.config import SimConfig
        from repro.sim.runner import run

        result = run(SimConfig("mcf", "invmm", n_writes=2000))
        baseline = run(SimConfig("mcf", "encr-dcw", n_writes=2000))
        # Hot writebacks avoid the avalanche (initial decrypt-to-plaintext
        # transitions cost ~50% once per line; steady state is cheap).
        assert result.avg_flips_pct < 0.75 * baseline.avg_flips_pct
