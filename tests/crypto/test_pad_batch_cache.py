"""Batched pad fetches keep the LRU cache bit-identical to serial fetches.

``CachingPadSource.line_pads_batch`` promises that after any batch the
cache contents, the eviction (LRU) order, and the hit/miss counters are
exactly what ``m`` sequential ``line_pad_array`` calls would have left —
including the all-miss fast path the chunked write loop rides.  These
tests drive a batch instance and a serial reference instance through the
same request streams and compare everything observable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.pads import Blake2PadSource, CachingPadSource

KEY = b"pad-batch-key-16"
N_BYTES = 64


def _pair(capacity: int) -> tuple[CachingPadSource, CachingPadSource]:
    return (
        CachingPadSource(Blake2PadSource(KEY), capacity=capacity),
        CachingPadSource(Blake2PadSource(KEY), capacity=capacity),
    )


def _serial_reference(
    cache: CachingPadSource, addresses, counters
) -> np.ndarray:
    rows = [
        cache.line_pad_array(a, c, N_BYTES)
        for a, c in zip(addresses, counters)
    ]
    return np.stack(rows) if rows else np.empty((0, N_BYTES), np.uint8)


def _assert_equivalent(batch, serial, got, want) -> None:
    assert np.array_equal(got, want)
    assert batch.hits == serial.hits
    assert batch.misses == serial.misses
    # Same keys in the same LRU (eviction) order, mapping to equal pads.
    b_items = list(batch._line_cache.items())
    s_items = list(serial._line_cache.items())
    assert [k for k, _ in b_items] == [k for k, _ in s_items]
    for (_, bv), (_, sv) in zip(b_items, s_items):
        assert np.array_equal(bv, sv)


def _drive(capacity: int, requests: list[tuple[int, int]]) -> None:
    batch, serial = _pair(capacity)
    addresses = np.asarray([a for a, _ in requests], dtype=np.int64)
    counters = np.asarray([c for _, c in requests], dtype=np.int64)
    got = batch.line_pads_batch(addresses, counters, N_BYTES)
    want = _serial_reference(serial, addresses, counters)
    _assert_equivalent(batch, serial, got, want)


class TestAllMissFastPath:
    """Distinct, absent keys — the shape the chunked write loop produces."""

    def test_fresh_cache_all_distinct(self):
        _drive(capacity=64, requests=[(a, 1) for a in range(10)])

    def test_batch_larger_than_capacity(self):
        # Only the last ``capacity`` pads survive; older ones are evicted
        # in order, exactly as serial insertion would.
        _drive(capacity=4, requests=[(a, 1) for a in range(10)])

    def test_batch_equal_to_capacity(self):
        _drive(capacity=8, requests=[(a, 1) for a in range(8)])

    def test_eviction_of_preexisting_entries(self):
        batch, serial = _pair(6)
        warm = ([10, 11, 12, 13], [0, 0, 0, 0])
        _serial_reference(serial, *warm)
        batch.line_pads_batch(
            np.asarray(warm[0], np.int64), np.asarray(warm[1], np.int64), N_BYTES
        )
        # 4 warm entries + 4 fresh > capacity 6: two warm ones must go.
        addresses = np.asarray([0, 1, 2, 3], dtype=np.int64)
        counters = np.asarray([5, 5, 5, 5], dtype=np.int64)
        got = batch.line_pads_batch(addresses, counters, N_BYTES)
        want = _serial_reference(serial, addresses, counters)
        _assert_equivalent(batch, serial, got, want)

    def test_returned_rows_are_read_only(self):
        batch, _ = _pair(16)
        pads = batch.line_pads_batch(
            np.arange(4, dtype=np.int64), np.ones(4, dtype=np.int64), N_BYTES
        )
        with pytest.raises(ValueError):
            np.asarray(pads)[0, 0] = 1


class TestGeneralWalk:
    """Batches with hits or duplicates fall back to the per-request walk."""

    def test_warm_hits(self):
        batch, serial = _pair(32)
        addrs, ctrs = [1, 2, 3], [7, 7, 7]
        batch.line_pads_batch(
            np.asarray(addrs, np.int64), np.asarray(ctrs, np.int64), N_BYTES
        )
        _serial_reference(serial, addrs, ctrs)
        # Second fetch of the same keys: all hits, recency refreshed.
        got = batch.line_pads_batch(
            np.asarray(addrs, np.int64), np.asarray(ctrs, np.int64), N_BYTES
        )
        want = _serial_reference(serial, addrs, ctrs)
        _assert_equivalent(batch, serial, got, want)
        assert batch.hits == 3

    def test_duplicate_keys_within_batch(self):
        # The second occurrence of a key is a hit on the pending entry
        # installed by the first — same accounting as serial.
        _drive(capacity=16, requests=[(5, 1), (6, 1), (5, 1), (5, 1)])

    def test_duplicates_with_eviction_pressure(self):
        _drive(
            capacity=3,
            requests=[(0, 1), (1, 1), (0, 1), (2, 1), (3, 1), (0, 1)],
        )

    def test_mixed_hit_miss_eviction(self):
        batch, serial = _pair(4)
        warm = ([1, 2, 3], [0, 0, 0])
        batch.line_pads_batch(
            np.asarray(warm[0], np.int64), np.asarray(warm[1], np.int64), N_BYTES
        )
        _serial_reference(serial, warm[0], warm[1])
        mixed = [(2, 0), (9, 0), (1, 0), (8, 0), (2, 0), (7, 0)]
        addresses = np.asarray([a for a, _ in mixed], np.int64)
        counters = np.asarray([c for _, c in mixed], np.int64)
        got = batch.line_pads_batch(addresses, counters, N_BYTES)
        want = _serial_reference(serial, addresses, counters)
        _assert_equivalent(batch, serial, got, want)

    def test_empty_batch(self):
        batch, _ = _pair(4)
        got = batch.line_pads_batch(
            np.empty(0, np.int64), np.empty(0, np.int64), N_BYTES
        )
        assert len(got) == 0
        assert batch.hits == 0 and batch.misses == 0


class TestStatParityProperty:
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        requests=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=40,
        ),
        split=st.integers(min_value=0, max_value=40),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_streams_match_serial(self, capacity, requests, split):
        # Warm both caches with the stream's prefix serially, then feed
        # the suffix as one batch: stats, contents, order, values all
        # match a fully serial replay.
        batch, serial = _pair(capacity)
        split = min(split, len(requests))
        prefix, suffix = requests[:split], requests[split:]
        for a, c in prefix:
            batch.line_pad_array(a, c, N_BYTES)
            serial.line_pad_array(a, c, N_BYTES)
        addresses = np.asarray([a for a, _ in suffix], np.int64)
        counters = np.asarray([c for _, c in suffix], np.int64)
        got = batch.line_pads_batch(addresses, counters, N_BYTES)
        want = _serial_reference(serial, addresses, counters)
        _assert_equivalent(batch, serial, got, want)
