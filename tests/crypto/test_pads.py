"""Pad-source tests: determinism, uniqueness, avalanche, caching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pads import (
    PAD_BLOCK_BYTES,
    AesPadSource,
    Blake2PadSource,
    CachingPadSource,
    make_pad_source,
    _pack_tweak,
)
from repro.memory.bitops import bit_flips

KEY = b"0123456789abcdef"


@pytest.fixture(params=["aes", "blake2"])
def source(request):
    return make_pad_source(request.param, KEY)


class TestDeterminism:
    def test_same_inputs_same_pad(self, source):
        assert source.pad_block(5, 7, 0) == source.pad_block(5, 7, 0)

    def test_same_inputs_across_instances(self):
        a = Blake2PadSource(KEY)
        b = Blake2PadSource(KEY)
        assert a.line_pad(1, 2, 64) == b.line_pad(1, 2, 64)

    def test_different_keys_differ(self, source):
        other = make_pad_source(
            "aes" if isinstance(source, AesPadSource) else "blake2",
            b"another-key-0016",
        )
        assert source.pad_block(1, 1, 0) != other.pad_block(1, 1, 0)


class TestUniqueness:
    def test_distinct_counters_distinct_pads(self, source):
        pads = {source.pad_block(9, ctr, 0) for ctr in range(64)}
        assert len(pads) == 64

    def test_distinct_addresses_distinct_pads(self, source):
        pads = {source.pad_block(addr, 3, 0) for addr in range(64)}
        assert len(pads) == 64

    def test_distinct_blocks_distinct_pads(self, source):
        pads = {source.pad_block(9, 3, b) for b in range(4)}
        assert len(pads) == 4


class TestAvalanche:
    def test_counter_increment_flips_about_half(self, source):
        a = source.line_pad(4, 10, 64)
        b = source.line_pad(4, 11, 64)
        flips = bit_flips(a, b)
        assert 180 <= flips <= 330  # ~256 of 512

    def test_address_change_flips_about_half(self, source):
        a = source.line_pad(4, 10, 64)
        b = source.line_pad(5, 10, 64)
        assert 180 <= bit_flips(a, b) <= 330


class TestFraming:
    def test_line_pad_is_concatenation_of_pad_blocks(self, source):
        line = source.line_pad(7, 3, 64)
        blocks = b"".join(source.pad_block(7, 3, i) for i in range(4))
        assert line == blocks

    def test_line_pad_partial_length(self, source):
        assert len(source.line_pad(7, 3, 40)) == 40
        assert source.line_pad(7, 3, 40) == source.line_pad(7, 3, 64)[:40]

    def test_pad_block_length(self, source):
        assert len(source.pad_block(1, 1, 1)) == PAD_BLOCK_BYTES

    def test_zero_length_line_pad(self, source):
        assert source.line_pad(1, 1, 0) == b""

    def test_blake2_high_block_indices(self):
        # Block indices past one digest lane must still be distinct.
        src = Blake2PadSource(KEY)
        pads = {src.pad_block(0, 0, b) for b in range(12)}
        assert len(pads) == 12


class TestErrors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown pad source"):
            make_pad_source("rot13", KEY)

    def test_empty_blake2_key(self):
        with pytest.raises(ValueError, match="non-empty"):
            Blake2PadSource(b"")

    def test_negative_n_bytes(self, source):
        with pytest.raises(ValueError):
            source.line_pad(0, 0, -1)

    @pytest.mark.parametrize(
        "addr,ctr,block",
        [(-1, 0, 0), (1 << 48, 0, 0), (0, -1, 0), (0, 1 << 56, 0), (0, 0, -1), (0, 0, 256)],
    )
    def test_tweak_bounds(self, addr, ctr, block):
        with pytest.raises(ValueError):
            _pack_tweak(addr, ctr, block)

    def test_tweak_is_injective_on_fields(self):
        seen = set()
        for addr in range(4):
            for ctr in range(4):
                for block in range(4):
                    seen.add(_pack_tweak(addr, ctr, block))
        assert len(seen) == 64


class TestCachingPadSource:
    def test_cache_hit_returns_same_pad(self):
        cache = CachingPadSource(Blake2PadSource(KEY), capacity=8)
        first = cache.pad_block(1, 2, 3)
        second = cache.pad_block(1, 2, 3)
        assert first == second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_cache_eviction_is_bounded(self):
        cache = CachingPadSource(Blake2PadSource(KEY), capacity=4)
        for ctr in range(10):
            cache.pad_block(0, ctr, 0)
        assert len(cache._cache) <= 4

    def test_hit_rate(self):
        cache = CachingPadSource(Blake2PadSource(KEY), capacity=8)
        assert cache.hit_rate == 0.0
        cache.pad_block(0, 0, 0)
        cache.pad_block(0, 0, 0)
        assert cache.hit_rate == 0.5

    def test_matches_inner_source(self):
        inner = Blake2PadSource(KEY)
        cache = CachingPadSource(inner, capacity=8)
        assert cache.line_pad(3, 4, 64) == inner.line_pad(3, 4, 64)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            CachingPadSource(Blake2PadSource(KEY), capacity=0)

    def test_lru_keeps_recently_used_entry(self):
        """A hit refreshes recency, so the LRU victim is the stale entry."""
        cache = CachingPadSource(Blake2PadSource(KEY), capacity=2)
        cache.pad_block(0, 0, 0)  # A
        cache.pad_block(1, 0, 0)  # B
        cache.pad_block(0, 0, 0)  # hit A: recency order is now B, A
        cache.pad_block(2, 0, 0)  # C evicts B
        hits = cache.hits
        cache.pad_block(0, 0, 0)  # A must still be cached
        assert cache.hits == hits + 1
        misses = cache.misses
        cache.pad_block(1, 0, 0)  # B was the eviction victim
        assert cache.misses == misses + 1

    def test_fifo_order_would_evict_wrong_entry(self):
        """Regression pin: insertion-order eviction would fail this."""
        cache = CachingPadSource(Blake2PadSource(KEY), capacity=2)
        cache.pad_block(0, 0, 0)
        cache.pad_block(1, 0, 0)
        cache.pad_block(0, 0, 0)  # touch the oldest insertion
        cache.pad_block(2, 0, 0)
        assert len(cache._cache) == 2
        keys = list(cache._cache)
        assert any(k[0] == 0 for k in keys)  # A survived its FIFO slot
        assert not any(k[0] == 1 for k in keys)

    def test_line_pad_array_cached(self):
        inner = Blake2PadSource(KEY)
        cache = CachingPadSource(inner, capacity=8)
        first = cache.line_pad_array(5, 6, 64)
        second = cache.line_pad_array(5, 6, 64)
        assert second is first  # same frozen array object on a hit
        assert not first.flags.writeable
        assert first.tobytes() == inner.line_pad(5, 6, 64)

    def test_inner_and_capacity_exposed(self):
        inner = Blake2PadSource(KEY)
        cache = CachingPadSource(inner, capacity=16)
        assert cache.inner is inner
        assert cache.capacity == 16


class TestCrossSourceProperties:
    @given(
        addr=st.integers(min_value=0, max_value=2**32),
        ctr=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_blake2_pads_do_not_collide_across_inputs(self, addr, ctr):
        src = Blake2PadSource(KEY)
        base = src.pad_block(addr, ctr, 0)
        assert src.pad_block(addr, ctr + 1, 0) != base
        assert src.pad_block(addr + 1, ctr, 0) != base
