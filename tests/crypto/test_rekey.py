"""Key-versioning and counter-overflow re-keying tests."""

from __future__ import annotations

import pytest

from repro.crypto.rekey import VersionedPadSource
from repro.memory.bitops import bit_flips
from repro.memory.controller import SecureMemoryController
from repro.security.invariants import PadUsageAuditor
from tests.conftest import mutate_words, random_line

KEY = b"rekey-master-016"


class TestVersionedPadSource:
    def test_version_zero_by_default(self):
        pads = VersionedPadSource(KEY)
        assert pads.version_of(0x40) == 0

    def test_bump_changes_the_pad_space(self):
        pads = VersionedPadSource(KEY)
        before = pads.line_pad(0x40, 3, 64)
        pads.bump_version(0x40)
        after = pads.line_pad(0x40, 3, 64)
        assert before != after
        assert 180 <= bit_flips(before, after) <= 330  # avalanche

    def test_versions_are_per_line(self):
        pads = VersionedPadSource(KEY)
        other_before = pads.line_pad(0x80, 3, 64)
        pads.bump_version(0x40)
        assert pads.line_pad(0x80, 3, 64) == other_before

    def test_deterministic_across_instances(self):
        a = VersionedPadSource(KEY)
        b = VersionedPadSource(KEY)
        a.bump_version(1)
        b.bump_version(1)
        assert a.line_pad(1, 5, 64) == b.line_pad(1, 5, 64)

    def test_aes_backend(self):
        pads = VersionedPadSource(KEY, kind="aes")
        assert len(pads.pad_block(0, 0, 0)) == 16

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            VersionedPadSource(b"")


class TestControllerRekeying:
    def make(self, counter_bits=4, scheme="deuce"):
        return SecureMemoryController(
            scheme=scheme,
            key=KEY,
            wear_leveling="none",
            counter_bits=counter_bits,
        )

    def test_counter_never_exceeds_width(self, rng):
        mc = self.make(counter_bits=4)
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(100):
            data = mutate_words(rng, data, 2)
            mc.write(0, data)
            assert mc.scheme.stored(0).counter < (1 << 4)

    def test_data_survives_rekeying(self, rng):
        mc = self.make(counter_bits=3)
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(50):
            data = mutate_words(rng, data, 2)
            mc.write(0, data)
            assert mc.read(0) == data
        assert mc.stats.rekeys >= 6  # 50 writes / (2^3 - 1) counter steps

    def test_rekey_cost_accounted(self, rng):
        mc = self.make(counter_bits=3)
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(20):
            data = mutate_words(rng, data, 1)
            mc.write(0, data)
        assert mc.stats.rekeys > 0
        assert mc.stats.rekey_flips > 100 * mc.stats.rekeys  # ~50% per rekey

    def test_no_pad_reuse_across_rekey_cycles(self, rng):
        """The invariant that motivates re-keying, checked mechanically:
        (version, counter) pad spaces never collide even though the raw
        counter values repeat after every re-key."""
        mc = self.make(counter_bits=3, scheme="encr-dcw")
        auditor = PadUsageAuditor()
        data = random_line(rng)
        mc.write(0, data)
        for _ in range(60):
            data = mutate_words(rng, data, 2)
            mc.write(0, data)
            line = mc.scheme.stored(0)
            version = mc._pads.version_of(0)
            # Fold the version into the audited counter namespace.
            auditor.record_encryption(0, (version << 32) | line.counter, data)
        assert auditor.is_clean

    def test_works_with_every_counter_scheme(self, rng):
        for scheme in ("encr-dcw", "encr-fnw", "deuce", "dyndeuce"):
            mc = self.make(counter_bits=3, scheme=scheme)
            data = random_line(rng)
            mc.write(0, data)
            for _ in range(30):
                data = mutate_words(rng, data, 2)
                mc.write(0, data)
                assert mc.read(0) == data, scheme

    def test_counter_bits_validation(self):
        with pytest.raises(ValueError):
            self.make(counter_bits=1)
