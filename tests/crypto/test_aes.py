"""AES block cipher tests: FIPS-197 vectors, structure, and properties."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_VECTORS = [
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"),
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        ),
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestFipsVectors:
    @pytest.mark.parametrize("key,expected", FIPS_VECTORS)
    def test_encrypt_matches_fips197_appendix_c(self, key, expected):
        assert AES(key).encrypt_block(FIPS_PLAINTEXT).hex() == expected

    @pytest.mark.parametrize("key,expected", FIPS_VECTORS)
    def test_decrypt_inverts_fips197_ciphertext(self, key, expected):
        ct = bytes.fromhex(expected)
        assert AES(key).decrypt_block(ct) == FIPS_PLAINTEXT

    def test_aes128_second_vector(self):
        # FIPS-197 Appendix B example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert (
            AES(key).encrypt_block(pt).hex()
            == "3925841d02dc09fbdc118597196a0b32"
        )


class TestSbox:
    def test_sbox_known_entries(self):
        # Spot values from the FIPS-197 table.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for v in range(256):
            assert INV_SBOX[SBOX[v]] == v

    def test_sbox_has_no_fixed_points(self):
        assert all(SBOX[v] != v for v in range(256))


class TestRoundTrip:
    @given(
        data=st.binary(min_size=16, max_size=16),
        key=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_decrypt_encrypt_identity(self, data, key):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(data)) == data

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_round_trip_all_key_sizes(self, key_len):
        rng = random.Random(key_len)
        key = bytes(rng.randrange(256) for _ in range(key_len))
        cipher = AES(key)
        for _ in range(10):
            block = bytes(rng.randrange(256) for _ in range(16))
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestAvalanche:
    def test_single_bit_flip_changes_about_half_the_output(self):
        cipher = AES(bytes(range(16)))
        base = cipher.encrypt_block(bytes(16))
        flipped_input = bytes([0x80]) + bytes(15)
        other = cipher.encrypt_block(flipped_input)
        diff = sum(bin(a ^ b).count("1") for a, b in zip(base, other))
        assert 40 <= diff <= 88  # ~64 expected of 128 bits

    def test_key_avalanche(self):
        c1 = AES(bytes(16))
        c2 = AES(bytes([1]) + bytes(15))
        a = c1.encrypt_block(bytes(16))
        b = c2.encrypt_block(bytes(16))
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert 40 <= diff <= 88


class TestErrors:
    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError, match="key must be"):
            AES(bytes(15))

    def test_bad_block_length_rejected_encrypt(self):
        with pytest.raises(ValueError, match="block must be"):
            AES(bytes(16)).encrypt_block(bytes(8))

    def test_bad_block_length_rejected_decrypt(self):
        with pytest.raises(ValueError, match="block must be"):
            AES(bytes(16)).decrypt_block(bytes(17))

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 16


class TestKeySchedule:
    @pytest.mark.parametrize(
        "key_len,rounds", [(16, 10), (24, 12), (32, 14)]
    )
    def test_round_counts(self, key_len, rounds):
        cipher = AES(bytes(key_len))
        assert cipher.rounds == rounds
        assert len(cipher._round_keys) == rounds + 1

    def test_first_round_key_is_the_key_itself(self):
        key = bytes(range(16))
        cipher = AES(key)
        assert bytes(cipher._round_keys[0]) == key
