"""Extended AES validation: NIST SP 800-38A ECB vectors and properties.

The FIPS-197 appendix vectors pin one (key, block) pair per key size; these
add the four-block SP 800-38A ECB sequences, exercising more of the state
space, plus structural properties of the cipher.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES

SP800_KEY_128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_KEY_192 = bytes.fromhex(
    "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b"
)
SP800_KEY_256 = bytes.fromhex(
    "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
)

SP800_PLAINTEXTS = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
]

SP800_ECB = {
    16: (
        SP800_KEY_128,
        [
            "3ad77bb40d7a3660a89ecaf32466ef97",
            "f5d3d58503b9699de785895a96fdbaaf",
            "43b1cd7f598ece23881b00e3ed030688",
            "7b0c785e27e8ad3f8223207104725dd4",
        ],
    ),
    24: (
        SP800_KEY_192,
        [
            "bd334f1d6e45f25ff712a214571fa5cc",
            "974104846d0ad3ad7734ecb3ecee4eef",
            "ef7afd2270e2e60adce0ba2face6444e",
            "9a4b41ba738d6c72fb16691603c18e0e",
        ],
    ),
    32: (
        SP800_KEY_256,
        [
            "f3eed1bdb5d2a03c064b5a7e3db181f8",
            "591ccb10d410ed26dc5ba74a31362870",
            "b6ed21b99ca6f4f9f153e7b1beafed1d",
            "23304b7a39f9f3ff067d8d8f9e24ecc7",
        ],
    ),
}


class TestSp80038aVectors:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_ecb_encrypt_blocks(self, key_len):
        key, expected = SP800_ECB[key_len]
        cipher = AES(key)
        for pt_hex, ct_hex in zip(SP800_PLAINTEXTS, expected):
            assert (
                cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex
            )

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_ecb_decrypt_blocks(self, key_len):
        key, expected = SP800_ECB[key_len]
        cipher = AES(key)
        for pt_hex, ct_hex in zip(SP800_PLAINTEXTS, expected):
            assert (
                cipher.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex
            )


class TestStructuralProperties:
    @given(block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_encryption_is_not_the_identity(self, block):
        assert AES(SP800_KEY_128).encrypt_block(block) != block

    @given(
        a=st.binary(min_size=16, max_size=16),
        b=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_injective_on_distinct_blocks(self, a, b):
        cipher = AES(SP800_KEY_128)
        if a != b:
            assert cipher.encrypt_block(a) != cipher.encrypt_block(b)

    def test_no_weak_all_zero_behaviour(self):
        # All-zero key and block still produce a diffused ciphertext.
        ct = AES(bytes(16)).encrypt_block(bytes(16))
        ones = sum(bin(b).count("1") for b in ct)
        assert 40 <= ones <= 88

    def test_different_key_sizes_disagree(self):
        pt = bytes(16)
        c128 = AES(bytes(16)).encrypt_block(pt)
        c192 = AES(bytes(24)).encrypt_block(pt)
        c256 = AES(bytes(32)).encrypt_block(pt)
        assert len({c128, c192, c256}) == 3
