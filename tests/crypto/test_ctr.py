"""Counter-mode engine and pad-mixing tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ctr import CounterModeEngine, mix_pads, xor_bytes
from repro.crypto.pads import Blake2PadSource

KEY = b"ctr-engine-key16"


@pytest.fixture
def engine():
    return CounterModeEngine(Blake2PadSource(KEY), line_bytes=64)


class TestEngine:
    def test_encrypt_decrypt_round_trip(self, engine, rng):
        data = bytes(rng.randrange(256) for _ in range(64))
        ct = engine.encrypt(data, address=0x40, counter=3)
        assert engine.decrypt(ct, address=0x40, counter=3) == data

    def test_wrong_counter_does_not_decrypt(self, engine, rng):
        data = bytes(rng.randrange(256) for _ in range(64))
        ct = engine.encrypt(data, address=0x40, counter=3)
        assert engine.decrypt(ct, address=0x40, counter=4) != data

    def test_wrong_address_does_not_decrypt(self, engine, rng):
        data = bytes(rng.randrange(256) for _ in range(64))
        ct = engine.encrypt(data, address=0x40, counter=3)
        assert engine.decrypt(ct, address=0x41, counter=3) != data

    def test_encryption_is_xor_with_pad(self, engine):
        data = bytes(64)
        ct = engine.encrypt(data, address=1, counter=1)
        assert ct == engine.pad(1, 1)  # zeros XOR pad == pad

    def test_line_length_enforced(self, engine):
        with pytest.raises(ValueError, match="line must be"):
            engine.encrypt(bytes(32), 0, 0)

    def test_bad_line_bytes(self):
        with pytest.raises(ValueError):
            CounterModeEngine(Blake2PadSource(KEY), line_bytes=0)


class TestXorBytes:
    def test_xor_identity(self):
        assert xor_bytes(b"\xff\x00", b"\x00\x00") == b"\xff\x00"

    def test_xor_self_is_zero(self):
        assert xor_bytes(b"abc", b"abc") == b"\x00\x00\x00"

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            xor_bytes(b"ab", b"abc")


class TestMixPads:
    def test_all_modified_takes_leading(self):
        lead, trail = bytes([0xAA]) * 8, bytes([0x55]) * 8
        assert mix_pads(lead, trail, [True] * 4, 2) == lead

    def test_none_modified_takes_trailing(self):
        lead, trail = bytes([0xAA]) * 8, bytes([0x55]) * 8
        assert mix_pads(lead, trail, [False] * 4, 2) == trail

    def test_mixed_selection_per_word(self):
        lead, trail = bytes(range(8)), bytes(range(100, 108))
        out = mix_pads(lead, trail, [True, False, True, False], 2)
        assert out == lead[0:2] + trail[2:4] + lead[4:6] + trail[6:8]

    def test_word_size_one_byte(self):
        lead, trail = b"\x01\x02", b"\x03\x04"
        assert mix_pads(lead, trail, [False, True], 1) == b"\x03\x02"

    def test_pad_length_mismatch(self):
        with pytest.raises(ValueError, match="pad length"):
            mix_pads(bytes(8), bytes(10), [True] * 4, 2)

    def test_word_count_mismatch(self):
        with pytest.raises(ValueError):
            mix_pads(bytes(8), bytes(8), [True] * 3, 2)

    @given(
        flags=st.lists(st.booleans(), min_size=1, max_size=32),
        word_bytes=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_output_words_come_from_the_selected_pad(self, flags, word_bytes):
        n = len(flags) * word_bytes
        lead = bytes([0xAA]) * n
        trail = bytes([0x55]) * n
        out = mix_pads(lead, trail, flags, word_bytes)
        for w, flag in enumerate(flags):
            piece = out[w * word_bytes: (w + 1) * word_bytes]
            assert piece == (lead if flag else trail)[: word_bytes]
