"""Self-contained HTML dashboard over the run ledger.

``deuce-sim dashboard`` renders the ledger's history — per-scheme flip-rate
trajectories, pad-cache hit rates, wall times — as one static HTML file with
inline SVG sparklines.  Zero dependencies, no JavaScript, no external
assets: the file can be opened from disk, attached to a CI artifact, or
emailed.

Layout
------
* **Gate panel** — one status tile per gate check (PASS/FAIL with icon and
  label, never color alone), or a neutral tile when the gate cannot be
  evaluated (no baselines / no runs).
* **Service SLO panel** — tiles from the newest ``kind="loadtest"``
  manifest (``deuce-sim loadtest``): p99 latency and error rate judged
  against the soak's SLO targets when it set any, queue saturation, and a
  queue-depth sparkline over the soak.
* **Perf trajectory** — one sparkline per recorded benchmark
  (``kind="bench"`` manifests from the benchmark suite), charting its
  headline throughput/speedup metric across git revisions, so a
  write-path regression is visible as a dip the moment the bench lands
  in the ledger.
* **Write-path profile** — phase breakdown bars from the newest run that
  carried a ``profile.json`` artifact (the chunked write loop's per-phase
  time attribution), linking wall time to the kernel responsible.
* **Scheme cards** — one card per scheme seen in the ledger, each with one
  sparkline per metric in :data:`TRACKED_METRICS` plotted across that
  scheme's run history (oldest left, newest right).
* **Runs table** — the newest runs as a plain table, the accessible
  non-graphical view of the same data.

Colors come from a colorblind-validated categorical palette assigned to
schemes in the fixed :data:`~repro.schemes.SCHEME_NAMES` order (never
cycled; schemes beyond the palette fold to neutral gray), with light/dark
variants selected by ``prefers-color-scheme``.  All text wears ink tokens,
never series colors.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.schemes import SCHEME_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.ledger import RunLedger, RunManifest

#: Metrics charted per scheme card: manifest field -> axis label.
#: One sparkline per entry, in this order.
TRACKED_METRICS: dict[str, str] = {
    "flips_pct": "bit flips per write (% of 512 data bits)",
    "pad_hit_rate": "pad-cache hit rate (0..1)",
    "wall_time_s": "run wall time (s)",
}

#: Categorical palette (validated light/dark pairs), assigned to schemes in
#: fixed SCHEME_NAMES order.  Schemes beyond the palette fold to gray.
_PALETTE_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
_PALETTE_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
_FALLBACK_COLOR = ("#6e6e6a", "#9a9a95")  # beyond-palette fold: neutral gray

_CSS = """
:root {
  --surface: #fcfcfb; --card: #ffffff; --border: #e4e4e0;
  --ink: #1f1f1e; --ink-2: #52524e; --ink-3: #807f7a;
  --good: #0ca30c; --critical: #d03b3b; --neutral: #807f7a;
  --good-bg: #e9f6e9; --critical-bg: #fbeaea; --neutral-bg: #f0f0ee;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --card: #222221; --border: #3a3a38;
    --ink: #ececea; --ink-2: #b4b4af; --ink-3: #8a8a85;
    --good: #4ec04e; --critical: #e57373; --neutral: #8a8a85;
    --good-bg: #1e2e1e; --critical-bg: #342222; --neutral-bg: #2a2a28;
  }
  .light-only { display: none; }
}
@media not (prefers-color-scheme: dark) { .dark-only { display: none; } }
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile {
  border: 1px solid var(--border); border-radius: 8px; background: var(--card);
  padding: 10px 14px; min-width: 200px;
}
.tile .verdict { font-weight: 600; }
.tile.pass .verdict { color: var(--good); }
.tile.fail .verdict { color: var(--critical); }
.tile.none .verdict { color: var(--neutral); }
.tile .name { color: var(--ink-2); font-size: 12px; }
.tile .band { color: var(--ink-3); font-size: 12px; font-variant-numeric: tabular-nums; }
.cards { display: flex; flex-wrap: wrap; gap: 14px; }
.card {
  border: 1px solid var(--border); border-radius: 8px; background: var(--card);
  padding: 12px 14px; width: 300px;
}
.card h3 { font-size: 14px; margin: 0 0 2px; display: flex; align-items: center; gap: 7px; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.card .meta { color: var(--ink-3); font-size: 12px; margin-bottom: 8px; }
.metric { margin: 10px 0 0; }
.metric .label { color: var(--ink-2); font-size: 12px; }
.metric .vals {
  color: var(--ink); font-size: 12px; font-variant-numeric: tabular-nums;
}
svg.spark { display: block; margin-top: 2px; }
.bars { margin-top: 6px; }
.bar-row { display: flex; align-items: center; gap: 8px; margin: 3px 0; }
.bar-row .bar-label {
  color: var(--ink-2); font-size: 12px; width: 110px; text-align: right;
}
.bar-row .bar-track {
  flex: 1; background: var(--neutral-bg); border-radius: 3px; height: 12px;
}
.bar-row .bar-fill { height: 12px; border-radius: 3px; }
.bar-row .bar-val {
  color: var(--ink-3); font-size: 12px; width: 120px;
  font-variant-numeric: tabular-nums;
}
table { border-collapse: collapse; background: var(--card); font-size: 13px; }
th, td {
  border: 1px solid var(--border); padding: 5px 9px; text-align: left;
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
.empty { color: var(--ink-3); }
footer { margin-top: 28px; color: var(--ink-3); font-size: 12px; }
"""


def scheme_color(scheme: str) -> tuple[str, str]:
    """The (light, dark) series color for a scheme — fixed assignment.

    Colors follow the entity: each scheme's slot comes from its position in
    the canonical ``SCHEME_NAMES`` order, so a dashboard over a filtered
    ledger never repaints the survivors.  Schemes past the 8-color palette
    (or unknown ones) fold to neutral gray rather than cycling hues.
    """
    try:
        idx = SCHEME_NAMES.index(scheme)
    except ValueError:
        return _FALLBACK_COLOR
    if idx >= len(_PALETTE_LIGHT):
        return _FALLBACK_COLOR
    return _PALETTE_LIGHT[idx], _PALETTE_DARK[idx]


def sparkline_svg(
    values: Sequence[float],
    color: str,
    *,
    width: int = 270,
    height: int = 44,
    title: str = "",
    css_class: str = "spark",
) -> str:
    """One inline-SVG sparkline: a 2px line, newest value dotted.

    Degenerate inputs still render: a single value (or an all-equal series)
    draws a flat midline.  The ``<title>`` child is the native tooltip and
    the screen-reader label.
    """
    pad = 4.0
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        return round(x, 2), round(y, 2)

    points = " ".join(f"{x},{y}" for x, y in (xy(i, v) for i, v in enumerate(values)))
    lx, ly = xy(n - 1, values[-1])
    label = html.escape(title) if title else "sparkline"
    return (
        f'<svg class="{css_class}" role="img" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f"<title>{label}</title>"
        f'<polyline fill="none" stroke="{color}" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round" points="{points}"/>'
        f'<circle cx="{lx}" cy="{ly}" r="3" fill="{color}"/>'
        "</svg>"
    )


def _fmt(value: object, digits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def _metric_values(manifests: list["RunManifest"], metric: str) -> list[float]:
    values = []
    for m in manifests:
        v = m.wall_time_s if metric == "wall_time_s" else m.summary.get(metric)
        if isinstance(v, (int, float)):
            values.append(float(v))
    return values


def _gate_tiles(ledger: "RunLedger", baselines_dir: str | Path) -> str:
    from repro.obs.gate import GateError, evaluate_gate

    try:
        report = evaluate_gate(ledger, baselines_dir=baselines_dir)
    except GateError as exc:
        return (
            '<div class="tiles"><div class="tile none">'
            '<div class="verdict">&#9675; not evaluated</div>'
            f'<div class="name">{html.escape(str(exc))}</div></div></div>'
        )
    tiles = []
    for check in report.checks:
        cls, icon, word = (
            ("pass", "&#10003;", "PASS")
            if check.passed
            else ("fail", "&#10007;", "FAIL")
        )
        hi = "&#8734;" if check.hi == float("inf") else _fmt(check.hi)
        tiles.append(
            f'<div class="tile {cls}">'
            f'<div class="verdict">{icon} {word}</div>'
            f'<div class="name">{html.escape(check.name)}</div>'
            f'<div class="band">{_fmt(check.value)} '
            f"(band {_fmt(check.lo)}..{hi})</div>"
            "</div>"
        )
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _latest_loadtest(
    ledger: "RunLedger",
) -> tuple["RunManifest | None", dict | None]:
    """Newest loadtest manifest and its report artifact.

    The report is ``None`` when the artifact is missing or corrupt — the
    tiles then fall back to the manifest's summary numbers alone.
    """
    import json

    manifests = ledger.list(kind="loadtest", limit=1)
    if not manifests:
        return None, None
    manifest = manifests[-1]
    filename = manifest.artifacts.get("loadtest")
    report = None
    if filename:
        try:
            raw = (ledger.run_dir(manifest.run_id) / filename).read_text()
            loaded = json.loads(raw)
            if isinstance(loaded, dict):
                report = loaded
        except (OSError, ValueError):
            report = None
    return manifest, report


def _fleet_panel(ledger: "RunLedger") -> str:
    """Per-worker tiles from the newest ``kind="fleet-sweep"`` manifest.

    A fleet sweep records one summary manifest (cells, steals, requeues,
    duplicate completions) with a ``fleet.json`` artifact carrying the
    per-worker breakdown; each worker becomes a tile showing its share
    of the grid and whether it survived the sweep.
    """
    import json

    manifests = ledger.list(kind="fleet-sweep", limit=1)
    if not manifests:
        return (
            '<div class="tiles"><div class="tile none">'
            '<div class="verdict">&#9675; no fleet sweeps</div>'
            '<div class="name">shard one with deuce-sim sweep '
            "--workers-url ...</div>"
            "</div></div>"
        )
    manifest = manifests[-1]
    summary = manifest.summary
    workers = []
    filename = manifest.artifacts.get("fleet")
    if filename:
        try:
            raw = (ledger.run_dir(manifest.run_id) / filename).read_text()
            loaded = json.loads(raw)
            if isinstance(loaded, dict):
                workers = [
                    w for w in loaded.get("workers", [])
                    if isinstance(w, dict)
                ]
        except (OSError, ValueError):
            workers = []

    tiles = []
    cells = int(summary.get("cells", 0) or 0)
    for worker in workers:
        healthy = bool(worker.get("healthy", True))
        completed = int(worker.get("completed", 0) or 0)
        share = f" ({completed / cells:.0%} of grid)" if cells else ""
        cls = "pass" if healthy else "fail"
        verdict = (
            ("&#10003; up " if healthy else "&#10007; dead ")
            + f"{completed} cell(s)"
        )
        tiles.append(
            _slo_tile(
                cls,
                verdict,
                str(worker.get("name", "worker")),
                f"dispatched {int(worker.get('dispatched', 0) or 0)}"
                + share,
            )
        )
    steals = int(summary.get("steals", 0) or 0)
    requeues = int(summary.get("requeues", 0) or 0)
    duplicates = int(summary.get("duplicates", 0) or 0)
    tiles.append(
        _slo_tile(
            "none",
            f"&#9675; {cells} cells / "
            f"{int(summary.get('workers', len(workers)) or 0)} workers",
            "fabric totals",
            f"{steals} steal(s) &middot; {requeues} requeue(s) &middot; "
            f"{duplicates} duplicate(s) &middot; "
            f"{_fmt(float(manifest.wall_time_s))} s wall",
        )
    )
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _slo_tile(cls: str, verdict: str, name: str, band: str) -> str:
    return (
        f'<div class="tile {cls}">'
        f'<div class="verdict">{verdict}</div>'
        f'<div class="name">{html.escape(name)}</div>'
        f'<div class="band">{band}</div>'
        "</div>"
    )


def _slo_tiles(ledger: "RunLedger") -> str:
    """Service SLO tiles from the newest loadtest manifest."""
    manifest, report = _latest_loadtest(ledger)
    if manifest is None:
        return (
            '<div class="tiles"><div class="tile none">'
            '<div class="verdict">&#9675; no load tests</div>'
            '<div class="name">run deuce-sim loadtest to record one</div>'
            "</div></div>"
        )
    summary = manifest.summary
    slo = (report or {}).get("slo", {})
    tiles = []

    p99 = float(summary.get("p99_ms", 0.0))
    p99_target = float(slo.get("p99_slo_ms", 0.0) or 0.0)
    if p99_target > 0:
        ok = p99 <= p99_target
        cls = "pass" if ok else "fail"
        verdict = (
            ("&#10003; PASS " if ok else "&#10007; FAIL ")
            + f"{_fmt(p99)} ms"
        )
        band = f"target &le; {_fmt(p99_target)} ms"
    else:
        cls, verdict, band = "none", f"&#9675; {_fmt(p99)} ms", "no SLO target"
    tiles.append(_slo_tile(cls, verdict, "p99 request latency", band))
    error_rate = float(summary.get("error_rate", 0.0))
    max_error = float(slo.get("max_error_rate", -1.0))
    if max_error >= 0:
        ok = error_rate <= max_error
        cls = "pass" if ok else "fail"
        verdict = (
            ("&#10003; PASS " if ok else "&#10007; FAIL ")
            + f"{error_rate:.2%}"
        )
        band = f"target &le; {max_error:.2%}"
    else:
        cls, verdict, band = "none", f"&#9675; {error_rate:.2%}", "no SLO target"
    tiles.append(_slo_tile(cls, verdict, "error rate (5xx + transport)", band))

    saturation = float(summary.get("saturation", 0.0))
    depth_peak = summary.get("queue_depth_peak", 0.0)
    capacity = (report or {}).get("queue", {}).get("capacity", 0)
    tiles.append(
        _slo_tile(
            "none",
            f"&#9675; {saturation:.0%}",
            "queue saturation (peak/capacity)",
            f"peak depth {_fmt(float(depth_peak), 0)}"
            + (f" of {capacity}" if capacity else ""),
        )
    )

    samples = (report or {}).get("queue", {}).get("samples") or []
    depths = [
        float(s[1]) for s in samples
        if isinstance(s, (list, tuple)) and len(s) >= 2
        and isinstance(s[1], (int, float))
    ]
    if depths:
        title = (
            f"queue depth over the soak: peak {_fmt(max(depths), 0)}"
        )
        light, dark = _PALETTE_LIGHT[0], _PALETTE_DARK[0]
        spark = (
            f'<span class="light-only">'
            f"{sparkline_svg(depths, light, width=180, height=36, title=title)}"
            "</span>"
            f'<span class="dark-only">'
            f"{sparkline_svg(depths, dark, width=180, height=36, title=title)}"
            "</span>"
        )
        tiles.append(
            '<div class="tile none">'
            f"{spark}"
            '<div class="name">queue depth during soak</div>'
            f'<div class="band">{len(depths)} samples</div>'
            "</div>"
        )

    totals = (report or {}).get("totals", {})
    requests = totals.get("requests", summary.get("requests", 0))
    rps = totals.get("rps", summary.get("rps", 0.0))
    meta = (
        f'<p class="sub">{html.escape(manifest.run_id)} &middot; '
        f"{html.escape(manifest.created_utc)} &middot; "
        f"{_fmt(float(requests), 0)} requests at {_fmt(float(rps), 1)} rps"
        + (f" &middot; {html.escape(manifest.label)}" if manifest.label else "")
        + "</p>"
    )
    return '<div class="tiles">' + "".join(tiles) + "</div>" + meta


#: Preference order for a bench manifest's headline metric.
_BENCH_HEADLINE = ("writes_per_s", "speedup", "wall_s")


def _perf_trajectory(ledger: "RunLedger") -> str:
    """Perf-trajectory cards: one sparkline per recorded benchmark.

    Charts each bench label's headline metric (throughput before speedup
    before wall time, else the first numeric field) across its
    ``kind="bench"`` manifests oldest→newest; the caption names the git
    revisions spanned so a dip can be pinned to the commit range.
    """
    benches = ledger.list(kind="bench", limit=None)
    by_label: dict[str, list] = {}
    for m in benches:
        if m.label and m.summary:
            by_label.setdefault(m.label, []).append(m)
    if not by_label:
        return (
            '<p class="empty">no benchmark emissions in the ledger yet — '
            "run the <code>benchmarks/</code> suite to record some</p>"
        )
    cards = []
    for label, manifests in sorted(by_label.items()):
        metric = next(
            (k for k in _BENCH_HEADLINE if k in manifests[-1].summary),
            next(iter(manifests[-1].summary)),
        )
        values = [
            float(m.summary[metric])
            for m in manifests
            if isinstance(m.summary.get(metric), (int, float))
        ]
        if not values:
            continue
        revs = [m.git_rev for m in manifests if m.git_rev]
        rev_span = (
            f"{html.escape(revs[0])} &rarr; {html.escape(revs[-1])}"
            if len(set(revs)) > 1
            else html.escape(revs[-1] if revs else "unknown rev")
        )
        title = f"{label} {metric}: latest {_fmt(values[-1])}"
        light, dark = _PALETTE_LIGHT[2], _PALETTE_DARK[2]
        sparks = (
            f'<span class="light-only">'
            f"{sparkline_svg(values, light, title=title)}</span>"
            f'<span class="dark-only">'
            f"{sparkline_svg(values, dark, title=title)}</span>"
        )
        vals = (
            f"latest {_fmt(values[-1])} &middot; min {_fmt(min(values))} "
            f"&middot; max {_fmt(max(values))}"
        )
        cards.append(
            '<div class="card">'
            f"<h3>{html.escape(label)}</h3>"
            f'<div class="meta">{len(values)} emissions &middot; '
            f"{rev_span}</div>"
            f'<div class="metric"><span class="label">'
            f"{html.escape(metric)}</span>{sparks}"
            f'<div class="vals">{vals}</div></div>'
            "</div>"
        )
    return '<div class="cards">' + "".join(cards) + "</div>"


def _latest_profile(ledger: "RunLedger") -> tuple["RunManifest | None", dict]:
    """Newest run/sweep-cell manifest carrying a ``profile.json`` artifact."""
    import json

    for m in reversed(ledger.list(limit=None)):
        if m.kind not in ("run", "sweep-cell"):
            continue
        filename = m.artifacts.get("profile")
        if not filename:
            continue
        try:
            loaded = json.loads(
                (ledger.run_dir(m.run_id) / filename).read_text()
            )
        except (OSError, ValueError):
            continue
        if isinstance(loaded, dict) and loaded:
            return m, loaded
    return None, {}


def _profile_panel(ledger: "RunLedger") -> str:
    """Phase-breakdown bars from the newest profiled run."""
    manifest, profile = _latest_profile(ledger)
    if manifest is None:
        return (
            '<p class="empty">no profiled runs yet — any recorded run '
            "captures a write-path profile automatically</p>"
        )
    rows = sorted(
        (
            (name, float(entry.get("seconds", 0.0)), int(entry.get("count", 0)))
            for name, entry in profile.items()
            if isinstance(entry, dict)
        ),
        key=lambda row: -row[1],
    )
    total = sum(seconds for _, seconds, _ in rows) or 1.0
    light, dark = _PALETTE_LIGHT[0], _PALETTE_DARK[0]
    bars = []
    for name, seconds, count in rows:
        share = seconds / total
        width = max(round(share * 100, 1), 0.5)
        bars.append(
            '<div class="bar-row">'
            f'<span class="bar-label">{html.escape(name)}</span>'
            '<span class="bar-track">'
            f'<span class="bar-fill light-only" style="width:{width}%;'
            f'background:{light}"></span>'
            f'<span class="bar-fill dark-only" style="width:{width}%;'
            f'background:{dark}"></span></span>'
            f'<span class="bar-val">{_fmt(seconds, 4)} s &middot; '
            f"{share:.0%}"
            + (f" &middot; {count}&times;" if count else "")
            + "</span></div>"
        )
    meta = (
        f"{html.escape(manifest.run_id)} &middot; "
        f"{html.escape(manifest.workload)}/{html.escape(manifest.scheme)} "
        f"&middot; {_fmt(total, 4)} s attributed"
    )
    return (
        '<div class="tiles"><div class="tile none" style="min-width:460px">'
        f'<div class="bars">{"".join(bars)}</div>'
        f'<div class="name">{meta}</div>'
        "</div></div>"
    )


def _scheme_cards(by_scheme: dict[str, list["RunManifest"]]) -> str:
    cards = []
    for scheme, manifests in by_scheme.items():
        light, dark = scheme_color(scheme)
        metrics_html = []
        for metric, label in TRACKED_METRICS.items():
            values = _metric_values(manifests, metric)
            if not values:
                continue
            title = f"{scheme} {label}: latest {_fmt(values[-1])}"
            sparks = (
                f'<span class="light-only">'
                f"{sparkline_svg(values, light, title=title, css_class=f'spark m-{metric}')}"
                "</span>"
                f'<span class="dark-only">'
                f"{sparkline_svg(values, dark, title=title, css_class=f'spark m-{metric}')}"
                "</span>"
            )
            vals = (
                f"latest {_fmt(values[-1])} &middot; "
                f"min {_fmt(min(values))} &middot; max {_fmt(max(values))}"
            )
            metrics_html.append(
                f'<div class="metric"><span class="label">'
                f"{html.escape(label)}</span>{sparks}"
                f'<div class="vals">{vals}</div></div>'
            )
        workloads = sorted({m.workload for m in manifests if m.workload})
        cards.append(
            '<div class="card">'
            f'<h3><span class="swatch light-only" style="background:{light}">'
            '</span><span class="swatch dark-only" '
            f'style="background:{dark}"></span>{html.escape(scheme)}</h3>'
            f'<div class="meta">{len(manifests)} runs &middot; '
            f'{html.escape(", ".join(workloads) or "—")}</div>'
            + "".join(metrics_html)
            + "</div>"
        )
    return '<div class="cards">' + "".join(cards) + "</div>"


def _kv_phase_panel(ledger: "RunLedger", newest: int = 12) -> str:
    """Per-phase flip/write rates for the newest phased (KV) runs.

    A run is phased when its summary carries ``phase_<name>_flips_pct``
    keys (written by ``RunResult.summary_row`` for traces with phase
    structure); Table 2 runs never appear here.  Write rate is the
    phase's share of the trace's writebacks — how much of the PCM write
    budget each service phase consumed.
    """
    manifests = [
        m
        for m in ledger.list()
        if m.kind in ("run", "sweep-cell")
        and any(k.startswith("phase_") for k in m.summary)
    ][-newest:][::-1]
    if not manifests:
        return (
            '<p class="empty">no KV-profile runs in the ledger yet — '
            "run <code>deuce-sim run --workload kv-udb</code> first</p>"
        )
    phase_names: list[str] = []
    for m in manifests:
        for key in m.summary:
            if key.startswith("phase_") and key.endswith("_flips_pct"):
                name = key[len("phase_"):-len("_flips_pct")]
                if name not in phase_names:
                    phase_names.append(name)
    head = "<th>run_id</th><th>workload</th><th>scheme</th>" + "".join(
        f"<th>{html.escape(p)} writes</th><th>{html.escape(p)} write %</th>"
        f"<th>{html.escape(p)} flips %</th>"
        for p in phase_names
    ) + "<th>overall flips %</th>"
    body = []
    for m in manifests:
        total_writes = m.n_writes or sum(
            int(m.summary.get(f"phase_{p}_writes", 0)) for p in phase_names
        )
        cells = [m.run_id, m.workload, m.scheme]
        for p in phase_names:
            writes = m.summary.get(f"phase_{p}_writes")
            flips = m.summary.get(f"phase_{p}_flips_pct")
            share = (
                f"{100.0 * int(writes) / total_writes:.1f}"
                if writes is not None and total_writes
                else ""
            )
            cells += [
                "" if writes is None else str(writes),
                share,
                _fmt(flips if flips is not None else ""),
            ]
        cells.append(_fmt(m.summary.get("flips_pct", "")))
        body.append(
            "<tr>"
            + "".join(f"<td>{html.escape(str(c))}</td>" for c in cells)
            + "</tr>"
        )
    return (
        "<table><thead><tr>" + head + "</tr></thead>"
        "<tbody>" + "".join(body) + "</tbody></table>"
    )


def _runs_table(manifests: list["RunManifest"], newest: int = 20) -> str:
    # Bench emissions chart in the perf-trajectory panel; keep the table
    # to simulation runs so the newest N slots aren't eaten by benches.
    rows = [m for m in manifests if m.kind != "bench"][-newest:][::-1]
    if not rows:
        return '<p class="empty">no runs recorded yet</p>'
    cols = (
        "run_id", "created_utc", "kind", "label", "workload", "scheme",
        "n_writes", "flips_pct", "pad_hit_rate", "wall_time_s", "git_rev",
    )
    head = "".join(f"<th>{c}</th>" for c in cols)
    body = []
    for m in rows:
        cells = {
            "run_id": m.run_id,
            "created_utc": m.created_utc,
            "kind": m.kind,
            "label": m.label,
            "workload": m.workload,
            "scheme": m.scheme,
            "n_writes": m.n_writes or "",
            "flips_pct": _fmt(m.summary.get("flips_pct", "")),
            "pad_hit_rate": _fmt(m.summary.get("pad_hit_rate", "")),
            "wall_time_s": _fmt(m.wall_time_s),
            "git_rev": m.git_rev,
        }
        body.append(
            "<tr>"
            + "".join(f"<td>{html.escape(str(cells[c]))}</td>" for c in cols)
            + "</tr>"
        )
    return (
        "<table><thead><tr>" + head + "</tr></thead>"
        "<tbody>" + "".join(body) + "</tbody></table>"
    )


def render_dashboard(
    ledger: "RunLedger",
    *,
    baselines_dir: str | Path = "baselines",
    limit: int | None = 200,
) -> str:
    """The full dashboard HTML document as a string."""
    manifests = ledger.list(limit=limit)
    runs = [m for m in manifests if m.kind in ("run", "sweep-cell")]
    by_scheme: dict[str, list] = {}
    order = {name: i for i, name in enumerate(SCHEME_NAMES)}
    for m in runs:
        if m.scheme:
            by_scheme.setdefault(m.scheme, []).append(m)
    by_scheme = dict(
        sorted(by_scheme.items(), key=lambda kv: order.get(kv[0], 99))
    )
    schemes_html = (
        _scheme_cards(by_scheme)
        if by_scheme
        else '<p class="empty">no simulation runs in the ledger yet — '
        "run <code>deuce-sim run</code> first</p>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>DEUCE run ledger dashboard</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>DEUCE run ledger</h1>"
        f'<p class="sub">{len(manifests)} manifests in '
        f"<code>{html.escape(str(ledger.root))}</code> &middot; "
        f"{len(by_scheme)} schemes charted</p>"
        "<h2>Regression gate</h2>"
        + _gate_tiles(ledger, baselines_dir)
        + "<h2>Service SLO (latest load test)</h2>"
        + _slo_tiles(ledger)
        + "<h2>Sweep fleet (latest fleet sweep)</h2>"
        + _fleet_panel(ledger)
        + "<h2>KV service phases (newest phased runs)</h2>"
        + _kv_phase_panel(ledger)
        + "<h2>Perf trajectory (recorded benchmarks, oldest &rarr; newest)</h2>"
        + _perf_trajectory(ledger)
        + "<h2>Write-path profile (newest profiled run)</h2>"
        + _profile_panel(ledger)
        + "<h2>Scheme trajectories (oldest &rarr; newest run)</h2>"
        + schemes_html
        + "<h2>Recent runs</h2>"
        + _runs_table(manifests)
        + "<footer>Self-contained dashboard generated by "
        "<code>deuce-sim dashboard</code>; sparklines chart the ledger's "
        "run history per scheme.</footer>"
        "</body></html>\n"
    )


def write_dashboard(
    path: str | Path,
    ledger: "RunLedger",
    *,
    baselines_dir: str | Path = "baselines",
    limit: int | None = 200,
) -> Path:
    """Render the dashboard and write it to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        render_dashboard(ledger, baselines_dir=baselines_dir, limit=limit)
    )
    return path
