"""CSV export of experiment results and sampled run time-series.

Each :class:`~repro.sim.experiments.ExperimentResult` can be written as a
CSV for plotting in external tools; :func:`export_all` dumps the full
registry into a directory (one file per exhibit plus an index).
:func:`export_series_csv` writes the interval-sampled
:class:`~repro.obs.sampling.TimeSeries` a run attaches to
``RunResult.series`` — flip rates, pad-cache hit rates, mode deltas, and
wear percentiles over the course of a run — in the same flat-CSV style as
the figure exports.  :func:`summary_row` is the ledger-aware flat row for
single runs: the plain ``RunResult.summary_row`` plus ``run_id`` /
``wall_time_s`` / ``git_rev`` columns sourced from the run's manifest, so
exported rows join against ``.deuce-runs/index.jsonl``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.ledger import RunManifest
    from repro.obs.sampling import TimeSeries
    from repro.sim.experiments import ExperimentResult
    from repro.sim.results import RunResult


def summary_row(
    result: "RunResult", manifest: "RunManifest | None" = None
) -> dict[str, object]:
    """A run's flat summary row, joinable against the run ledger.

    Extends :meth:`~repro.sim.results.RunResult.summary_row` with the
    manifest's ``run_id``, ``wall_time_s``, and ``git_rev`` so CSVs built
    from these rows join against ``.deuce-runs/index.jsonl`` (and against
    each other across revisions).  Without a manifest the ledger columns are
    still present — empty id/rev, the result's own wall time — so exported
    headers are stable either way.
    """
    row = result.summary_row()
    row["run_id"] = manifest.run_id if manifest is not None else ""
    row["wall_time_s"] = round(
        manifest.wall_time_s if manifest is not None else result.wall_time_s, 4
    )
    row["git_rev"] = manifest.git_rev if manifest is not None else ""
    return row


def export_csv(result: "ExperimentResult", path: str | Path) -> Path:
    """Write one experiment's rows (plus the average row) as CSV."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=result.columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow({col: row.get(col, "") for col in result.columns})
        if result.averages:
            avg = {result.columns[0]: "AVG", **result.averages}
            writer.writerow({col: avg.get(col, "") for col in result.columns})
    return path


def export_series_csv(series: "TimeSeries", path: str | Path) -> Path:
    """Write a run's sampled time-series as CSV (one row per interval).

    Columns are the flattened :class:`~repro.obs.sampling.Sample` fields;
    ``mode_deltas`` is exploded into one ``mode_<name>`` column per mode
    observed anywhere in the series, so all rows share one header.
    """
    path = Path(path)
    rows = series.as_rows()
    fieldnames = list(rows[0]) if rows else ["write_index"]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def export_all(
    directory: str | Path,
    n_writes: int = 3_000,
    experiments: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[Path]:
    """Run experiments and export each to ``directory``; returns the paths."""
    from repro.sim.experiments import EXPERIMENTS  # lazy: avoids a cycle

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {unknown}")
    written = []
    index_rows = []
    for name in names:
        if progress is not None:
            progress(f"exporting {name} ...")
        fn = EXPERIMENTS[name]
        result = fn() if name == "table2" else fn(n_writes=n_writes)
        path = export_csv(result, directory / f"{name}.csv")
        written.append(path)
        index_rows.append(
            {"experiment": name, "title": result.title, "file": path.name}
        )
    index = directory / "index.csv"
    with open(index, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=["experiment", "title", "file"])
        writer.writeheader()
        writer.writerows(index_rows)
    written.append(index)
    return written
