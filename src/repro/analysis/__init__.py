"""Reporting helpers: text tables and ASCII charts."""

from repro.analysis.charts import bar_chart, grouped_bar_chart, hbar, sparkline
from repro.analysis.report import generate_report, write_report
from repro.analysis.tables import format_cell, render_comparison, render_table

__all__ = [
    "bar_chart",
    "format_cell",
    "generate_report",
    "grouped_bar_chart",
    "hbar",
    "render_comparison",
    "render_table",
    "sparkline",
    "write_report",
]
