"""ASCII bar charts for terminal-friendly figure reproduction.

Each paper figure is a bar chart over workloads or configurations; these
helpers render the same series as horizontal text bars so a reader can see
the *shape* (who wins, where the crossovers are) straight from the benchmark
output.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def hbar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """One horizontal bar scaled so ``scale`` fills ``width`` characters."""
    if scale <= 0:
        return ""
    n = int(round(width * max(0.0, value) / scale))
    return char * min(n, width)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
    precision: int = 1,
) -> str:
    """Render {label: value} as a horizontal ASCII bar chart."""
    if not values:
        return title
    scale = max(values.values()) or 1.0
    label_w = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        lines.append(
            f"{str(label):<{label_w}}  {value:>{6 + precision}.{precision}f}{unit} "
            f"|{hbar(value, scale, width)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    series: Mapping[str, Mapping[str, float]],
    labels: Sequence[str],
    title: str = "",
    width: int = 30,
    precision: int = 1,
) -> str:
    """Render multiple series ({series: {label: value}}) grouped by label."""
    chars = "#*+o@%=~"
    all_values = [
        v for values in series.values() for v in values.values()
    ]
    scale = max(all_values) if all_values else 1.0
    name_w = max(len(name) for name in series)
    lines = [title] if title else []
    for label in labels:
        lines.append(f"{label}:")
        for i, (name, values) in enumerate(series.items()):
            if label not in values:
                continue
            v = values[label]
            lines.append(
                f"  {name:<{name_w}} {v:>{6 + precision}.{precision}f} "
                f"|{hbar(v, scale, width, chars[i % len(chars)])}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Compact profile of a numeric series (e.g. per-bit-position wear)."""
    if not len(values):
        return ""
    blocks = " .:-=+*#%@"
    n = len(values)
    step = max(1, n // width)
    buckets = [
        max(values[i: i + step]) for i in range(0, n, step)
    ]
    top = max(buckets) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in buckets
    )
