"""Plain-text table rendering for experiment results.

The benchmarks print the same rows the paper's tables and figure captions
report; this module does the formatting.  No plotting dependencies — the
output is aligned monospace text suitable for terminals and logs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_cell(value: object, precision: int = 2) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    columns: Sequence[str],
    rows: Iterable[Mapping[str, object]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render rows (dicts) as an aligned text table.

    Missing keys render as ``-``.  Column order follows ``columns``.
    """
    materialized = [
        [format_cell(row.get(col, "-"), precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in materialized)) if materialized else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in materialized:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(
    label_key: str,
    series: Mapping[str, Mapping[str, float]],
    labels: Sequence[str],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render {series_name: {label: value}} with one column per series."""
    columns = [label_key, *series.keys()]
    rows = []
    for label in labels:
        row: dict[str, object] = {label_key: label}
        for name, values in series.items():
            if label in values:
                row[name] = values[label]
        rows.append(row)
    return render_table(columns, rows, title=title, precision=precision)
