"""Job queue and bounded worker pool behind ``deuce-sim serve``.

A :class:`JobManager` owns a bounded FIFO queue of :class:`Job` objects and
a fixed pool of worker threads that execute them through one shared
:class:`repro.api.Session` — so every job resolves configs, instruments,
and the ledger exactly the way a direct API or CLI caller would.  Sweeps
inside a job reuse :mod:`repro.sim.parallel` (and therefore its process
pool) with the sweep engine's cooperative ``should_stop`` hook wired to the
job's cancel flag and deadline, which is what makes cancellation and
drains orphan-free: unstarted cells are dropped, in-flight cells finish,
and the pool always shuts down cleanly.

Lifecycle::

    queued -> running -> done
                      -> failed      (exception or deadline)
                      -> cancelled   (client DELETE, or drain with cancel)

Backpressure is structural: :meth:`JobManager.submit` raises
:class:`QueueFullError` when the queue is at capacity (the HTTP layer maps
it to ``429``) and :class:`ServiceDraining` once a drain began (``503``).
Every job's progress is a JSONL-able event list that the HTTP layer can
stream incrementally.

Jobs survive a server restart: a :class:`JobStore` journals every spec and
state change to ``jobs.jsonl`` under the ledger, and
:meth:`JobManager.rehydrate` replays it on startup — terminal jobs come
back as queryable snapshots, queued/running jobs are resubmitted under
their original ids.  A resubmitted sweep job resumes from its keyed sweep
checkpoint (``<ledger>/sweeps/<job_id>``), so cells that completed before
the crash are not re-simulated.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.api import Session
from repro.obs.context import TraceContext
from repro.obs.instruments import RunAborted
from repro.obs.progress import ProgressEvent
from repro.obs.tracing import JsonlSink, Tracer
from repro.service.telemetry import ServiceTelemetry
from repro.sim.config import ConfigError, SimConfig
from repro.sim.experiments import EXPERIMENTS
from repro.sim.parallel import SweepCancelled

#: Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Job kinds accepted by the service.
JOB_KINDS = ("run", "sweep", "experiment")


class JobError(ValueError):
    """A job payload that cannot become a valid :class:`JobSpec` (HTTP 400)."""


class QueueFullError(RuntimeError):
    """The job queue is at capacity — back off and retry (HTTP 429)."""


class ServiceDraining(RuntimeError):
    """The service is draining and accepts no new jobs (HTTP 503)."""


class UnknownJobError(KeyError):
    """No job with that id (HTTP 404)."""


def new_job_id() -> str:
    """Sortable unique job id (same shape as ledger run ids)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"job-{stamp}-{uuid.uuid4().hex[:6]}"


#: Fields that identify a pre-envelope (deprecated) submission shape.
#: The v1 envelope carries everything but ``kind``/``config`` inside
#: ``options``; a payload with any of these at top level decodes through
#: the legacy path and the server answers with a ``Deprecation`` header.
_LEGACY_PAYLOAD_FIELDS = (
    "configs", "experiment", "workers", "timeout_s", "retries", "label",
)

#: Option keys every envelope kind understands (``options`` leftovers are
#: experiment keyword arguments for ``kind="experiment"``, errors otherwise).
_ENVELOPE_OPTIONS = ("workers", "timeout_s", "retries", "label")


def _validate_common_options(source: dict) -> tuple:
    """Validate the option fields shared by every job kind.

    ``source`` is the payload itself (legacy shape) or its ``options``
    object (envelope shape); returns ``(workers, timeout_s, retries,
    label)`` or raises :class:`JobError` with the field that failed.
    """
    workers = source.get("workers", 1)
    if workers is not None and (
        isinstance(workers, bool) or not isinstance(workers, int)
    ):
        raise JobError(f"'workers' must be an integer, got {workers!r}")
    timeout_s = source.get("timeout_s")
    if timeout_s is not None and (
        isinstance(timeout_s, bool)
        or not isinstance(timeout_s, (int, float))
        or timeout_s <= 0
    ):
        raise JobError(
            f"'timeout_s' must be a positive number, got {timeout_s!r}"
        )
    retries = source.get("retries", 0)
    if isinstance(retries, bool) or not isinstance(retries, int) \
            or retries < 0:
        raise JobError(
            f"'retries' must be a non-negative integer, got {retries!r}"
        )
    label = source.get("label", "")
    if not isinstance(label, str):
        raise JobError(f"'label' must be a string, got {label!r}")
    return workers, timeout_s, retries, label


@dataclass(frozen=True)
class JobSpec:
    """A validated, executable description of one submitted job.

    ``configs`` holds one config for ``kind="run"`` and the grid for
    ``kind="sweep"``; experiments carry the exhibit name plus keyword
    options instead.
    """

    kind: str
    configs: tuple[SimConfig, ...] = ()
    experiment: str = ""
    options: dict = field(default_factory=dict)
    workers: int | None = 1
    timeout_s: float | None = None
    retries: int = 0
    label: str = ""

    @property
    def n_cells(self) -> int:
        if self.kind == "experiment":
            return 0  # unknown until the exhibit materializes its grid
        return len(self.configs)

    @classmethod
    def decode(cls, payload: object) -> "tuple[JobSpec, bool]":
        """Decode a submission; returns ``(spec, deprecated_shape)``.

        The canonical v1 envelope is ``{"kind", "config", "options"}``:
        ``config`` is the config object for ``kind="run"``, the config
        array for ``kind="sweep"``, and the exhibit name string for
        ``kind="experiment"``; ``options`` carries ``workers`` /
        ``timeout_s`` / ``retries`` / ``label`` (plus experiment keyword
        arguments for experiments).  Run, sweep, experiment, and the
        fleet coordinator's dispatch route all share this one shape.

        Payloads using the pre-envelope fields (top-level ``configs`` /
        ``experiment`` / option fields) still decode through
        :meth:`from_payload` but come back flagged ``deprecated_shape=True``
        so the HTTP layer can answer with a ``Deprecation`` header, the
        same alias pattern the bare (un-versioned) paths use.
        """
        if not isinstance(payload, dict):
            raise JobError(
                f"job payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        if any(k in payload for k in _LEGACY_PAYLOAD_FIELDS):
            return cls.from_payload(payload), True
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise JobError(
                f"job 'kind' must be one of {', '.join(JOB_KINDS)}, "
                f"got {kind!r}"
            )
        unknown = sorted(set(payload) - {"kind", "config", "options"})
        if unknown:
            raise JobError(
                "unknown job field(s): " + ", ".join(map(repr, unknown))
                + "; the envelope is {kind, config, options}"
            )
        options = payload.get("options", {})
        if not isinstance(options, dict):
            raise JobError(f"'options' must be an object, got {options!r}")
        workers, timeout_s, retries, label = _validate_common_options(options)
        extra = {
            k: v for k, v in options.items() if k not in _ENVELOPE_OPTIONS
        }
        config = payload.get("config")
        configs: tuple[SimConfig, ...] = ()
        experiment = ""
        try:
            if kind == "run":
                if not isinstance(config, dict):
                    raise JobError(
                        "a 'run' envelope needs 'config' to be the config "
                        "object"
                    )
                configs = (SimConfig.from_dict(config),)
            elif kind == "sweep":
                if not isinstance(config, list) or not config:
                    raise JobError(
                        "a 'sweep' envelope needs 'config' to be a "
                        "non-empty array of config objects"
                    )
                configs = tuple(SimConfig.from_dict(c) for c in config)
            else:  # experiment
                if not isinstance(config, str) or config not in EXPERIMENTS:
                    raise JobError(
                        "an 'experiment' envelope needs 'config' to be one "
                        "of: " + ", ".join(EXPERIMENTS)
                    )
                experiment = config
        except ConfigError as exc:
            raise JobError(str(exc)) from exc
        if extra and kind != "experiment":
            raise JobError(
                "unknown option(s): " + ", ".join(map(repr, sorted(extra)))
                + "; valid options: " + ", ".join(_ENVELOPE_OPTIONS)
            )
        spec = cls(
            kind=kind,
            configs=configs,
            experiment=experiment,
            options=extra,
            workers=workers,
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            retries=retries,
            label=label,
        )
        return spec, False

    @classmethod
    def from_payload(cls, payload: object) -> "JobSpec":
        """Decode a pre-envelope (deprecated) JSON job submission.

        The legacy shape keeps working — option fields at top level,
        ``configs`` for sweeps, ``experiment`` + ``options`` kwargs for
        experiments.  New clients should send the :meth:`decode` envelope.
        Raises :class:`JobError` with a client-facing message on any
        malformed field; config dicts go through the strict
        :meth:`SimConfig.from_dict <repro.sim.config.SimConfig.from_dict>`.
        """
        if not isinstance(payload, dict):
            raise JobError(
                f"job payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise JobError(
                f"job 'kind' must be one of {', '.join(JOB_KINDS)}, "
                f"got {kind!r}"
            )
        known = {"kind", "config", "configs", "experiment", "options",
                 "workers", "timeout_s", "retries", "label"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobError(
                "unknown job field(s): " + ", ".join(map(repr, unknown))
                + "; valid fields: " + ", ".join(sorted(known))
            )
        workers, timeout_s, retries, label = _validate_common_options(payload)

        configs: tuple[SimConfig, ...] = ()
        experiment = ""
        options: dict = {}
        try:
            if kind == "run":
                if "config" not in payload:
                    raise JobError("a 'run' job needs a 'config' object")
                configs = (SimConfig.from_dict(payload["config"]),)
            elif kind == "sweep":
                raw = payload.get("configs")
                if not isinstance(raw, list) or not raw:
                    raise JobError(
                        "a 'sweep' job needs a non-empty 'configs' array"
                    )
                configs = tuple(SimConfig.from_dict(c) for c in raw)
            else:  # experiment
                experiment = payload.get("experiment", "")
                if experiment not in EXPERIMENTS:
                    raise JobError(
                        f"unknown experiment {experiment!r}; choose from "
                        + ", ".join(EXPERIMENTS)
                    )
                options = payload.get("options", {})
                if not isinstance(options, dict):
                    raise JobError(
                        f"'options' must be an object, got {options!r}"
                    )
        except ConfigError as exc:
            raise JobError(str(exc)) from exc
        return cls(
            kind=kind,
            configs=configs,
            experiment=experiment,
            options=options,
            workers=workers,
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            retries=retries,
            label=label,
        )

    def to_dict(self) -> dict:
        """JSON-safe round-trip form (the :class:`JobStore` journal)."""
        return {
            "kind": self.kind,
            "configs": [c.to_dict() for c in self.configs],
            "experiment": self.experiment,
            "options": dict(self.options),
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Inverse of :meth:`to_dict` (trusted journal data, not payloads)."""
        return cls(
            kind=data["kind"],
            configs=tuple(
                SimConfig.from_dict(c) for c in data.get("configs", [])
            ),
            experiment=data.get("experiment", ""),
            options=dict(data.get("options", {})),
            workers=data.get("workers", 1),
            timeout_s=data.get("timeout_s"),
            retries=int(data.get("retries", 0)),
            label=data.get("label", ""),
        )


class Job:
    """One submitted unit of work plus its observable state.

    All mutation happens under ``_lock``; :meth:`snapshot` and
    :meth:`events_since` are safe to call from any HTTP thread while a
    worker executes the job.
    """

    def __init__(self, spec: JobSpec, job_id: str | None = None) -> None:
        self.id = job_id or new_job_id()
        self.spec = spec
        self.state = QUEUED
        self.error = ""
        self.created_utc = _utc_now()
        self.started_utc = ""
        self.finished_utc = ""
        # Monotonic stamps for phase telemetry (queue-wait/exec/total).
        # Not journaled: a rehydrated job's clock restarts at rehydration.
        self.created_monotonic = time.monotonic()
        self.started_monotonic = 0.0
        self.result: dict | None = None
        self.cells_done = 0
        self.writes_done = 0
        # Correlated-trace id, minted when the job starts executing;
        # "" while queued or when the manager has nowhere to write lanes.
        self.trace_id = ""
        self._events: list[dict] = []
        self._seq = itertools.count()
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- worker side ---------------------------------------------------------

    def on_progress(self, event: ProgressEvent) -> None:
        """Progress consumer handed to the session (worker thread)."""
        record = event.to_dict()
        with self._lock:
            record["seq"] = next(self._seq)
            self._events.append(record)
            if event.kind == "done":
                self.cells_done += 1
                self.writes_done += event.n_writes
            elif event.kind == "heartbeat":
                pass  # writes_done tallies only completed cells (monotonic)

    def _transition(self, state: str, error: str = "") -> None:
        with self._lock:
            self.state = state
            if error:
                self.error = error
            record = {
                "seq": next(self._seq),
                "kind": "state",
                "state": state,
            }
            if error:
                record["error"] = error
            self._events.append(record)
            if state in TERMINAL_STATES:
                self.finished_utc = _utc_now()
                self._finished.set()

    # -- client side ---------------------------------------------------------

    @property
    def cancelled_requested(self) -> bool:
        return self._cancel.is_set()

    def request_cancel(self) -> None:
        self._cancel.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._finished.wait(timeout)

    def events_since(self, since: int) -> list[dict]:
        """Events with ``seq >= since`` (the HTTP stream's cursor)."""
        with self._lock:
            return [e for e in self._events if e["seq"] >= since]

    # -- persistence ---------------------------------------------------------

    def to_record(self) -> dict:
        """Everything :meth:`from_record` needs to rebuild this job."""
        with self._lock:
            return {
                "job_id": self.id,
                "spec": self.spec.to_dict(),
                "state": self.state,
                "error": self.error,
                "created_utc": self.created_utc,
                "started_utc": self.started_utc,
                "finished_utc": self.finished_utc,
                "result": self.result,
                "cells_done": self.cells_done,
                "writes_done": self.writes_done,
                "trace_id": self.trace_id,
            }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        """Rebuild a job from its last journal line (restart rehydration).

        Progress events are not journaled, so a restored job's event
        stream starts empty; its counters and result survive.
        """
        job = cls(JobSpec.from_dict(record["spec"]),
                  job_id=record["job_id"])
        job.state = record.get("state", QUEUED)
        job.error = record.get("error", "")
        job.created_utc = record.get("created_utc", job.created_utc)
        job.started_utc = record.get("started_utc", "")
        job.finished_utc = record.get("finished_utc", "")
        job.result = record.get("result")
        job.cells_done = int(record.get("cells_done", 0))
        job.writes_done = int(record.get("writes_done", 0))
        job.trace_id = str(record.get("trace_id", ""))
        if job.state in TERMINAL_STATES:
            job._finished.set()
        return job

    def snapshot(self) -> dict:
        """JSON-safe status view (GET /jobs/{id})."""
        with self._lock:
            return {
                "job_id": self.id,
                "kind": self.spec.kind,
                "label": self.spec.label,
                "experiment": self.spec.experiment,
                "state": self.state,
                "error": self.error,
                "n_cells": self.spec.n_cells,
                "cells_done": self.cells_done,
                "writes_done": self.writes_done,
                "n_events": len(self._events),
                "created_utc": self.created_utc,
                "started_utc": self.started_utc,
                "finished_utc": self.finished_utc,
                "cancel_requested": self._cancel.is_set(),
                "trace_id": self.trace_id,
            }


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class JobStore:
    """Append-only ``jobs.jsonl`` journal of job specs and state changes.

    One fsynced line per state change; on :meth:`load` the last line per
    job id wins.  A torn trailing line (crash mid-append) is skipped, so
    the journal is always readable after a hard kill.
    """

    FILENAME = "jobs.jsonl"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / self.FILENAME

    def record(self, job: Job) -> None:
        """Append the job's current record (submit + every transition)."""
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(job.to_record(), sort_keys=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> dict[str, dict]:
        """Latest record per job id, in first-submission order."""
        records: dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crash
                if isinstance(rec, dict) and rec.get("job_id"):
                    records[rec["job_id"]] = rec
        return records


#: Queue sentinel that tells a worker thread to exit.
_SHUTDOWN = object()


class JobManager:
    """Bounded job queue + worker-thread pool over one shared Session.

    Parameters
    ----------
    session:
        The :class:`repro.api.Session` every job executes through (its
        ledger receives the manifests).
    job_workers:
        Concurrent jobs (worker threads).  Each sweep job may additionally
        fan its cells over processes, bounded by ``max_sweep_workers``.
    queue_size:
        Jobs allowed to wait beyond the running ones; submissions past
        this raise :class:`QueueFullError` (HTTP 429).
    default_timeout_s:
        Deadline applied to jobs that do not set their own; ``None`` means
        no deadline.
    max_sweep_workers:
        Hard cap on a job's requested per-sweep worker processes.
    store:
        Optional :class:`JobStore`; when set, every submission and state
        change is journaled and :meth:`rehydrate` can restore jobs after
        a restart.
    telemetry:
        The :class:`~repro.service.telemetry.ServiceTelemetry` receiving
        job lifecycle/phase metrics and worker heartbeats; a fresh one by
        default (the HTTP layer serves it at ``GET /v1/metrics``).
    """

    #: Seconds an idle worker waits on the queue between heartbeat ticks.
    WORKER_POLL_S = 1.0

    def __init__(
        self,
        session: Session,
        *,
        job_workers: int = 2,
        queue_size: int = 16,
        default_timeout_s: float | None = None,
        max_sweep_workers: int = 4,
        store: JobStore | None = None,
        telemetry: ServiceTelemetry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {job_workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.session = session
        self.job_workers = job_workers
        self.default_timeout_s = default_timeout_s
        self.max_sweep_workers = max_sweep_workers
        self.store = store
        self.telemetry = (
            telemetry if telemetry is not None else ServiceTelemetry()
        )
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._draining = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the worker threads (idempotent)."""
        if not self._threads:
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"deuce-job-worker-{i}",
                    daemon=True,
                )
                for i in range(self.job_workers)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def rehydrate(self) -> list[Job]:
        """Restore journaled jobs after a restart; returns the resubmitted.

        Terminal jobs come back as queryable snapshots (status, error and
        result endpoints keep working across restarts).  Queued/running
        jobs are resubmitted under their original ids; a resubmitted
        sweep job picks up its keyed sweep checkpoint, so completed cells
        are restored instead of re-simulated.  Call after :meth:`start`
        so the workers can drain a backlog larger than the queue.
        """
        if self.store is None:
            return []
        resubmitted: list[Job] = []
        for record in self.store.load().values():
            try:
                job = Job.from_record(record)
            except (KeyError, TypeError, ConfigError):
                continue  # unreadable record must not block startup
            with self._jobs_lock:
                if job.id in self._jobs:
                    continue
                self._jobs[job.id] = job
            if job.state in TERMINAL_STATES:
                continue
            job.state = QUEUED
            job.started_utc = ""
            self._persist(job)
            self._queue.put(job)
            resubmitted.append(job)
        return resubmitted

    def _persist(self, job: Job) -> None:
        if self.store is None:
            return
        try:
            self.store.record(job)
        except OSError:
            pass  # durability is best-effort; never fail the job for it

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout_s: float = 30.0, *, cancel: bool = False) -> bool:
        """Stop accepting jobs and wait for the backlog to settle.

        With ``cancel=True`` every non-terminal job's cancel flag is set
        first, so running sweeps stop cooperatively at their next
        ``should_stop`` poll.  Returns True when every job reached a
        terminal state within ``timeout_s``.  Worker threads are always
        shut down before returning, so no job can start after a drain.
        """
        self._draining.set()
        if cancel:
            for job in self.jobs():
                job.request_cancel()
        deadline = self._clock() + timeout_s
        settled = True
        for job in self.jobs():
            remaining = deadline - self._clock()
            if not job.wait(max(0.0, remaining)):
                # Still queued or mid-run at the deadline: force the flag
                # so the worker (or the dequeue check) retires it.
                job.request_cancel()
                settled = False
        for _ in self._threads:
            try:
                self._queue.put_nowait(_SHUTDOWN)
            except queue.Full:  # workers will drain the backlog first
                self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - self._clock()) + 5.0)
        return settled

    # -- submission / queries ------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Enqueue a job; raises on drain or a full queue (backpressure)."""
        if self._draining.is_set():
            raise ServiceDraining("service is draining; not accepting jobs")
        job = Job(spec)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} waiting); "
                "retry after a job finishes"
            ) from None
        with self._jobs_lock:
            self._jobs[job.id] = job
        self._persist(job)
        self.telemetry.job_submitted(spec.kind)
        return job

    def get(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, submission-ordered."""
        with self._jobs_lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job:
        """Request cooperative cancellation; returns the job."""
        job = self.get(job_id)
        job.request_cancel()
        return job

    def counts(self) -> dict[str, int]:
        """Jobs per state (healthz)."""
        counts = dict.fromkeys(
            (QUEUED, RUNNING, DONE, FAILED, CANCELLED), 0
        )
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    @property
    def queue_depth(self) -> int:
        """Jobs waiting in the queue right now (approximate, lock-free)."""
        return self._queue.qsize()

    @property
    def in_flight(self) -> int:
        """Jobs currently executing on a worker thread."""
        return sum(1 for job in self.jobs() if job.state == RUNNING)

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        # The bounded get() keeps the heartbeat gauge fresh even when the
        # queue is empty — a wedged worker stops beating within one poll.
        worker = threading.current_thread().name
        while True:
            self.telemetry.worker_heartbeat(worker)
            try:
                item = self._queue.get(timeout=self.WORKER_POLL_S)
            except queue.Empty:
                continue
            if item is _SHUTDOWN:
                return
            self.telemetry.worker_heartbeat(worker, busy=True)
            try:
                self._execute(item)
            finally:
                self.telemetry.worker_heartbeat(worker)
                self._queue.task_done()

    def trace_dir(self, job_id: str) -> Path | None:
        """Where a job's correlated-trace lanes land (``None`` ledger-less).

        One directory per job under ``<runs_dir>/traces/``, holding the
        ``job.jsonl`` lane plus the run/sweep/cell lanes the session
        writes — the input to ``deuce-sim trace export <job_id>``.
        """
        if self.session.ledger is None:
            return None
        return self.session.ledger.root / "traces" / job_id

    def _start_job_trace(self, job: Job):
        """Mint the job's trace context and open its lane (best-effort).

        Tracing must never fail a job: any filesystem error leaves the
        job untraced (``trace_id`` stays empty) and execution proceeds.
        """
        traces = self.trace_dir(job.id)
        if traces is None:
            return None, None
        try:
            traces.mkdir(parents=True, exist_ok=True)
            ctx = TraceContext.new()
            sink = JsonlSink(
                traces / "job.jsonl",
                meta={
                    **ctx.to_dict(),
                    "lane": "job",
                    "job_id": job.id,
                    "kind": job.spec.kind,
                },
            )
            job.trace_id = ctx.trace_id
            return ctx, Tracer(sink)
        except OSError:
            return None, None

    def _execute(self, job: Job) -> None:
        if job.cancelled_requested:
            job._transition(CANCELLED, "cancelled while queued")
            self._persist(job)
            self.telemetry.job_finished(
                job.spec.kind, CANCELLED, 0.0,
                time.monotonic() - job.created_monotonic,
            )
            return
        job.started_utc = _utc_now()
        job.started_monotonic = time.monotonic()
        ctx, job_tracer = self._start_job_trace(job)
        job._transition(RUNNING)
        self._persist(job)
        queue_wait_s = job.started_monotonic - job.created_monotonic
        self.telemetry.job_started(
            job.spec.kind, queue_wait_s, trace_id=job.trace_id
        )
        t_exec0 = time.perf_counter()
        if job_tracer is not None:
            # Queue wait happened before this lane's anchor; a span ending
            # at the anchor with the measured duration still aligns right.
            job_tracer.span_event(
                "job.queue_wait", t_exec0 - queue_wait_s, queue_wait_s,
                job_id=job.id, kind=job.spec.kind,
            )
        spec = job.spec
        timeout_s = (
            spec.timeout_s
            if spec.timeout_s is not None
            else self.default_timeout_s
        )
        deadline = self._clock() + timeout_s if timeout_s else None

        def should_stop() -> bool:
            return job.cancelled_requested or (
                deadline is not None and self._clock() > deadline
            )

        try:
            if spec.kind == "run":
                run_obs = None
                if ctx is not None:
                    traces = self.trace_dir(job.id)
                    # per_write_spans=False keeps the chunked fast path:
                    # the run lane gets chunk-level spans, not one span
                    # per simulated write.
                    run_obs = replace(
                        self.session.obs,
                        trace_out=str(traces / "run.jsonl"),
                        trace_context=ctx.child(),
                        per_write_spans=False,
                    )
                result = self.session.run(
                    spec.configs[0],
                    label=spec.label,
                    progress=job.on_progress,
                    should_stop=should_stop,
                    obs=run_obs,
                )
                payload = _results_payload([result])
            elif spec.kind == "sweep":
                workers = min(
                    spec.workers if spec.workers else self.max_sweep_workers,
                    self.max_sweep_workers,
                )
                # Key the sweep checkpoint by job id so a rehydrated job
                # resumes its completed cells instead of redoing them.
                sweep_id = (
                    job.id if self.session.ledger is not None else None
                )
                results = self.session.sweep(
                    spec.configs,
                    workers=workers,
                    progress=job.on_progress,
                    label=spec.label,
                    should_stop=should_stop,
                    retries=spec.retries,
                    sweep_id=sweep_id,
                    trace_dir=(
                        self.trace_dir(job.id) if ctx is not None else None
                    ),
                    trace_context=ctx,
                )
                payload = _results_payload(results)
            else:
                options = dict(spec.options)
                options["workers"] = min(
                    int(options.get("workers", spec.workers or 1) or 1),
                    self.max_sweep_workers,
                )
                experiment = self.session.experiment(
                    spec.experiment,
                    progress=job.on_progress,
                    should_stop=should_stop,
                    **options,
                )
                payload = {
                    "experiment": spec.experiment,
                    "rows": experiment.rows,
                    "averages": experiment.averages,
                    "paper": experiment.paper,
                    "rendered": experiment.render(),
                    "wall_time_s": experiment.wall_time_s,
                    "run_id": (
                        experiment.manifest.run_id
                        if experiment.manifest
                        else ""
                    ),
                }
            job.result = payload
            job._transition(DONE)
        except (RunAborted, SweepCancelled) as exc:
            if job.cancelled_requested:
                job._transition(CANCELLED, str(exc))
            else:
                job._transition(
                    FAILED, f"deadline exceeded after {timeout_s}s: {exc}"
                )
        except Exception as exc:  # noqa: BLE001 - jobs must never kill workers
            job._transition(FAILED, f"{type(exc).__name__}: {exc}")
        self._persist(job)
        now = time.monotonic()
        self.telemetry.job_finished(
            spec.kind,
            job.state,
            now - job.started_monotonic,
            now - job.created_monotonic,
            trace_id=job.trace_id,
        )
        if job_tracer is not None:
            job_tracer.span_event(
                "job.exec", t_exec0, time.perf_counter() - t_exec0,
                job_id=job.id, kind=spec.kind, state=job.state,
            )
            job_tracer.close()


def _results_payload(results) -> dict:
    """JSON result payload for run/sweep jobs (full exact aggregates)."""
    return {
        "results": [r.to_dict() for r in results],
        "run_ids": [r.manifest.run_id if r.manifest else "" for r in results],
    }
