"""``repro.service`` — the async simulation job service behind ``deuce-sim serve``.

A zero-dependency HTTP JSON API (:mod:`repro.service.server`) over a
bounded job queue with a worker pool (:mod:`repro.service.jobs`); every
job executes through the shared :class:`repro.api.Session`, so results
and ledger manifests are bit-identical to direct library/CLI use.
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobError,
    JobManager,
    JobSpec,
    QueueFullError,
    ServiceDraining,
    UnknownJobError,
)
from repro.service.server import SimulationServer, serve

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobManager",
    "JobSpec",
    "QueueFullError",
    "ServiceDraining",
    "UnknownJobError",
    "SimulationServer",
    "serve",
]
