"""``repro.service`` — the async simulation job service behind ``deuce-sim serve``.

A zero-dependency HTTP JSON API (:mod:`repro.service.server`) over a
bounded job queue with a worker pool (:mod:`repro.service.jobs`); every
job executes through the shared :class:`repro.api.Session`, so results
and ledger manifests are bit-identical to direct library/CLI use.
:mod:`repro.service.telemetry` instruments both layers (scraped at
``GET /v1/metrics``) and :mod:`repro.service.loadtest` soaks the whole
stack with concurrent clients (``deuce-sim loadtest``).
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobError,
    JobManager,
    JobSpec,
    QueueFullError,
    ServiceDraining,
    UnknownJobError,
)
from repro.service.loadtest import (
    DEFAULT_MIX,
    LoadTestOptions,
    parse_mix,
    run_loadtest,
    spawned_service,
)
from repro.service.server import SimulationServer, serve
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobManager",
    "JobSpec",
    "QueueFullError",
    "ServiceDraining",
    "UnknownJobError",
    "SimulationServer",
    "serve",
    "ServiceTelemetry",
    "DEFAULT_MIX",
    "LoadTestOptions",
    "parse_mix",
    "run_loadtest",
    "spawned_service",
]
