"""Fleet coordinator: shard one sweep across ``deuce-sim serve`` workers.

The DEUCE design-space grids (epoch interval x word size x scheme x
workload) outgrow one process long before they outgrow one lab: this
module turns N independent ``deuce-sim serve`` endpoints into a sweep
fabric.  The coordinator owns the grid; workers own nothing but the cell
they are currently running.

* :class:`WorkerClient` — a stdlib-only HTTP client for one worker's
  ``/v1`` job API (submit a cell as a ``kind="run"`` envelope, poll its
  status, fetch its exact result payload, cancel, probe ``/v1/healthz``).
* :class:`FleetExecutor` — the scheduler.  ``run_suite`` has the same
  contract as :func:`repro.sim.parallel.run_suite_parallel`: results in
  submission order, completed cells recorded to the ledger/checkpoint
  the moment they finish, cancellation via ``should_stop``, failures
  charged against the shared :class:`~repro.sim.parallel.RetryBudget`.
  On top of that it keeps a bounded in-flight window per worker, probes
  ``/v1/healthz`` periodically, requeues the cells of a dead worker, and
  steals long-running cells onto idle workers (straggler re-dispatch
  with first-completion-wins dedup by cell index).
* :class:`FleetTelemetry` — per-worker dispatch/latency/steal counters
  on a :class:`~repro.obs.metrics.MetricsRegistry`, served from the
  coordinator's ``/v1/metrics``.
* :func:`serve_coordinator` — the ``deuce-sim coordinate`` long-running
  mode: a small HTTP service accepting sweep envelopes and running each
  over the fleet in a background thread, with ledger-keyed checkpoints
  so re-submitting a sweep id after a coordinator restart resumes
  exactly like a local ``--resume``.

Because a worker returns the full ``RunResult.to_dict()`` payload and
the coordinator records it through the same ``on_complete`` path the
local pool uses, a merged fleet sweep is bit-identical (ignoring the
documented volatile fields ``wall_time_s``/``run_id``) to a single-node
sweep of the same grid, and its checkpoint resumes interchangeably.
"""

from __future__ import annotations

import heapq
import http.client
import json
import re
import signal
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Sequence
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import DONE, HEARTBEAT, START, ProgressEvent
from repro.obs.tracing import JsonlSink, Tracer
from repro.sim.checkpoint import SweepCheckpoint, config_signature
from repro.sim.config import SimConfig
from repro.sim.parallel import (
    RetryBudget,
    SweepCancelled,
    SweepCellFailed,
    SweepTracing,
)
from repro.sim.results import RunResult
from repro.service.jobs import (
    CANCELLED,
    DONE as JOB_DONE,
    FAILED,
    JobError,
    JobSpec,
    new_job_id,
)

__all__ = [
    "FleetExecutor",
    "FleetTelemetry",
    "WorkerClient",
    "WorkerError",
    "serve_coordinator",
]

#: Fixed upper bounds for per-cell latency histograms (seconds).  Cells
#: run whole traces, so the scale is job-like, not request-like.
CELL_SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Consecutive transport failures (probe or poll) before a worker is
#: declared dead and its in-flight cells are requeued.
DEAD_AFTER_ERRORS = 2


class WorkerError(RuntimeError):
    """A worker endpoint misbehaved (transport error or HTTP failure).

    ``status`` carries the HTTP status code when there was one, else 0
    (connection refused, timeout, DNS...).
    """

    def __init__(self, message: str, *, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class WorkerClient:
    """Stdlib HTTP client for one ``deuce-sim serve`` worker's /v1 API."""

    def __init__(self, url: str, *, timeout_s: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(
        self,
        method: str,
        path: str,
        payload: object | None = None,
        trace_id: str = "",
    ) -> dict:
        body = None
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
        request = urllib.request.Request(
            self.url + path, data=body, method=method
        )
        request.add_header("Content-Type", "application/json")
        if trace_id:
            request.add_header("X-Trace-Id", trace_id)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read() or b"{}").get("error", "")
            except (ValueError, OSError):
                pass
            raise WorkerError(
                f"{method} {self.url}{path} -> HTTP {exc.code}"
                + (f": {detail}" if detail else ""),
                status=exc.code,
            ) from exc
        except (
            urllib.error.URLError,
            http.client.HTTPException,  # e.g. IncompleteRead on SIGKILL
            OSError,
            ValueError,
        ) as exc:
            raise WorkerError(
                f"{method} {self.url}{path} failed: {exc}"
            ) from exc
        if not raw:
            return {}
        try:
            decoded = json.loads(raw)
        except ValueError as exc:
            raise WorkerError(
                f"{method} {self.url}{path} returned non-JSON"
            ) from exc
        return decoded if isinstance(decoded, dict) else {"value": decoded}

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def submit(self, envelope: dict, trace_id: str = "") -> str:
        """POST a job envelope; returns the worker's job id."""
        reply = self._request("POST", "/v1/jobs", envelope, trace_id)
        job_id = reply.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise WorkerError(
                f"POST {self.url}/v1/jobs returned no job_id: {reply!r}"
            )
        return job_id

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> None:
        self._request("DELETE", f"/v1/jobs/{job_id}")


class FleetTelemetry:
    """Per-worker fleet counters on a :class:`MetricsRegistry`.

    Instruments (all labeled ``worker=<name>``):

    * ``fleet.cells_dispatched`` / ``fleet.cells_completed`` /
      ``fleet.cells_failed`` — dispatch outcomes.
    * ``fleet.cells_stolen`` — cells re-dispatched *away from* this
      worker (it was the straggler).
    * ``fleet.cells_requeued`` — in-flight cells requeued because this
      worker died.
    * ``fleet.duplicate_completions`` — steal-race losers deduplicated.
    * ``fleet.cell_seconds`` — dispatch-to-completion latency histogram.
    * ``fleet.worker_healthy`` / ``fleet.worker_in_flight`` — gauges.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()

    def _labels(self, worker: str) -> dict[str, str]:
        return {"worker": worker}

    def dispatched(self, worker: str) -> None:
        with self._lock:
            self.registry.counter(
                "fleet.cells_dispatched", self._labels(worker)
            ).inc()

    def completed(self, worker: str, seconds: float, trace_id: str = "") -> None:
        with self._lock:
            self.registry.counter(
                "fleet.cells_completed", self._labels(worker)
            ).inc()
            self.registry.bucket_histogram(
                "fleet.cell_seconds",
                self._labels(worker),
                buckets=CELL_SECONDS_BUCKETS,
            ).observe(seconds, exemplar=trace_id)

    def failed(self, worker: str) -> None:
        with self._lock:
            self.registry.counter(
                "fleet.cells_failed", self._labels(worker)
            ).inc()

    def stolen(self, worker: str) -> None:
        with self._lock:
            self.registry.counter(
                "fleet.cells_stolen", self._labels(worker)
            ).inc()

    def requeued(self, worker: str, cells: int) -> None:
        with self._lock:
            self.registry.counter(
                "fleet.cells_requeued", self._labels(worker)
            ).inc(cells)

    def duplicate(self, worker: str) -> None:
        with self._lock:
            self.registry.counter(
                "fleet.duplicate_completions", self._labels(worker)
            ).inc()

    def health(self, worker: str, healthy: bool) -> None:
        with self._lock:
            self.registry.gauge(
                "fleet.worker_healthy", self._labels(worker)
            ).set(1.0 if healthy else 0.0)

    def in_flight(self, worker: str, count: int) -> None:
        with self._lock:
            self.registry.gauge(
                "fleet.worker_in_flight", self._labels(worker)
            ).set(float(count))

    def snapshot(self) -> dict:
        with self._lock:
            return self.registry.snapshot()


@dataclass
class _Dispatch:
    """One live (worker, cell) assignment."""

    job_id: str
    index: int
    started: float
    stolen: bool = False
    writes_done: int = 0


class _FleetWorker:
    """Coordinator-side state for one worker endpoint."""

    def __init__(self, name: str, client: WorkerClient) -> None:
        self.name = name
        self.client = client
        self.url = client.url
        self.healthy = True
        self.errors = 0  # consecutive transport failures
        self.next_probe = 0.0
        self.in_flight: dict[str, _Dispatch] = {}
        self.dispatched = 0
        self.completed = 0
        self.lane: Tracer | None = None

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "url": self.url,
            "healthy": self.healthy,
            "in_flight": len(self.in_flight),
            "dispatched": self.dispatched,
            "completed": self.completed,
        }


def _worker_name(index: int, url: str) -> str:
    host = urlsplit(url).netloc or url
    return f"w{index}:{host}"


class FleetExecutor:
    """Shard sweep cells across worker endpoints over HTTP.

    Drop-in executor for :meth:`repro.api.Session.sweep`'s ``executor``
    seam: ``run_suite`` mirrors
    :func:`~repro.sim.parallel.run_suite_parallel`'s contract (ordering,
    ledger/checkpoint recording, cancellation, retry semantics) while
    scheduling over the fleet instead of a local process pool.

    Parameters
    ----------
    worker_urls:
        Base URLs of ``deuce-sim serve`` endpoints (at least one).
    window:
        Bounded in-flight cells per worker.
    probe_interval_s:
        Seconds between ``/v1/healthz`` probes per worker.
    poll_interval_s:
        Scheduler tick; in-flight job statuses are polled at this rate.
    straggler_factor / straggler_min_s:
        A cell becomes stealable once it has run longer than
        ``max(straggler_min_s, straggler_factor * median completed cell
        latency)``; an idle worker then gets a duplicate dispatch and
        the first completion wins.
    request_timeout_s:
        Per-HTTP-request timeout.
    fleet_down_timeout_s:
        With every worker unhealthy for this long, the sweep fails
        (:class:`SweepCellFailed`, resumable) instead of spinning.
    telemetry:
        Optional :class:`FleetTelemetry` (shared in coordinate mode so
        all sweeps land on one ``/v1/metrics``).
    client_factory:
        Injection point for tests: ``(url) -> WorkerClient``-shaped
        object.
    """

    def __init__(
        self,
        worker_urls: Sequence[str],
        *,
        window: int = 2,
        probe_interval_s: float = 2.0,
        poll_interval_s: float = 0.05,
        straggler_factor: float = 4.0,
        straggler_min_s: float = 5.0,
        request_timeout_s: float = 10.0,
        fleet_down_timeout_s: float = 60.0,
        telemetry: FleetTelemetry | None = None,
        client_factory: Callable[[str], WorkerClient] | None = None,
    ) -> None:
        urls = [u for u in worker_urls if u]
        if not urls:
            raise ValueError("a fleet needs at least one worker URL")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        factory = client_factory or (
            lambda url: WorkerClient(url, timeout_s=request_timeout_s)
        )
        self.workers = [
            _FleetWorker(_worker_name(i, url), factory(url))
            for i, url in enumerate(urls)
        ]
        self.window = window
        self.probe_interval_s = probe_interval_s
        self.poll_interval_s = poll_interval_s
        self.straggler_factor = straggler_factor
        self.straggler_min_s = straggler_min_s
        self.fleet_down_timeout_s = fleet_down_timeout_s
        self.telemetry = telemetry if telemetry is not None else FleetTelemetry()
        self.steals = 0
        self.requeues = 0
        self.duplicates = 0

    # -- helpers -------------------------------------------------------------

    def _cell_envelope(self, config: SimConfig, label: str) -> dict:
        return {
            "kind": "run",
            "config": config.to_dict(),
            "options": {"label": label},
        }

    def _try_cancel(self, worker: _FleetWorker, job_id: str) -> None:
        try:
            worker.client.cancel(job_id)
        except WorkerError:
            pass  # best-effort; the job will finish and be deduplicated

    def fleet_stats(self) -> list[dict[str, object]]:
        return [worker.stats() for worker in self.workers]

    # -- the scheduler -------------------------------------------------------

    def run_suite(
        self,
        configs: Sequence[SimConfig],
        *,
        progress: Callable[[ProgressEvent], None] | None = None,
        heartbeat_every: int = 0,
        ledger=None,
        ledger_label: str = "",
        should_stop: Callable[[], bool] | None = None,
        retries: int = 0,
        retry_backoff_s: float = 0.5,
        checkpoint: "SweepCheckpoint | str | None" = None,
        tracing: SweepTracing | None = None,
    ) -> list[RunResult]:
        """Run the grid over the fleet; same contract as the local pool.

        ``heartbeat_every`` is accepted for signature parity but unused:
        fleet heartbeats derive from the workers' own job progress
        (``writes_done`` in the polled status).
        """
        del heartbeat_every
        configs = list(configs)
        if not configs:
            return []
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if checkpoint is not None and not isinstance(
            checkpoint, SweepCheckpoint
        ):
            checkpoint = SweepCheckpoint(checkpoint)

        n = len(configs)
        results: list[RunResult | None] = [None] * n
        if checkpoint is not None:
            restored = checkpoint.restore()
            for i, config in enumerate(configs):
                hit = restored.get(config_signature(config))
                if hit is not None:
                    results[i] = hit
        todo = [i for i in range(n) if results[i] is None]
        if not todo:
            return results  # type: ignore[return-value]

        def on_complete(index: int, result: RunResult) -> None:
            """Record one finished cell durably, the moment it finishes."""
            config = configs[index]
            if tracing is not None:
                tracing.tracer.event(
                    "cell.done", cell=index, workload=config.workload,
                    scheme=config.scheme,
                )
            if ledger is not None:
                result.manifest = ledger.record_result(
                    result, config, kind="sweep-cell", label=ledger_label
                )
            if checkpoint is not None:
                run_id = result.manifest.run_id if result.manifest else ""
                checkpoint.record(index, config, result, run_id=run_id)

        if tracing is not None:
            Path(tracing.dir).mkdir(parents=True, exist_ok=True)
        started_monotonic = time.monotonic()
        self._open_worker_lanes(tracing)
        try:
            self._schedule(
                configs, todo, results, progress, should_stop,
                RetryBudget(configs, todo, retries, retry_backoff_s),
                on_complete, tracing,
            )
        finally:
            self._close_worker_lanes()
        if ledger is not None:
            self._record_fleet_manifest(
                ledger, ledger_label, n,
                time.monotonic() - started_monotonic,
            )
        return results  # type: ignore[return-value]

    def _schedule(
        self,
        configs: list[SimConfig],
        todo: list[int],
        results: "list[RunResult | None]",
        progress: Callable[[ProgressEvent], None] | None,
        should_stop: Callable[[], bool] | None,
        budget: RetryBudget,
        on_complete: Callable[[int, RunResult], None],
        tracing: SweepTracing | None,
    ) -> None:
        n = len(configs)
        trace_id = tracing.context.trace_id if tracing is not None else ""
        ready: deque[int] = deque(todo)
        delayed: list[tuple[float, int]] = []
        remaining = set(todo)
        completed: set[int] = set()
        # index -> live dispatches; 2 entries while a steal race is open.
        active: dict[int, list[tuple[_FleetWorker, _Dispatch]]] = {}
        latencies: list[float] = []
        all_dead_since: float | None = None

        def emit(kind: str, index: int, writes_done: int = 0) -> None:
            if progress is None:
                return
            config = configs[index]
            progress(ProgressEvent(
                kind=kind, cell=index, n_cells=n,
                writes_done=(
                    config.n_writes if kind == DONE else writes_done
                ),
                n_writes=config.n_writes,
                workload=config.workload, scheme=config.scheme,
            ))

        def lane_event(worker: _FleetWorker, name: str, **fields) -> None:
            if worker.lane is not None:
                worker.lane.event(name, **fields)

        def mark_dead(worker: _FleetWorker, why: str) -> None:
            if not worker.healthy and not worker.in_flight:
                return
            worker.healthy = False
            self.telemetry.health(worker.name, False)
            lost = [
                d for d in worker.in_flight.values()
                if d.index not in completed
            ]
            worker.in_flight.clear()
            self.telemetry.in_flight(worker.name, 0)
            requeued = 0
            for dispatch in lost:
                entries = active.get(dispatch.index, [])
                active[dispatch.index] = [
                    (w, d) for (w, d) in entries if d is not dispatch
                ]
                if active[dispatch.index]:
                    continue  # a stolen duplicate is still running elsewhere
                active.pop(dispatch.index, None)
                delay = budget.charge(
                    dispatch.index,
                    WorkerError(f"worker {worker.name} died: {why}"),
                    results=results,
                )
                heapq.heappush(
                    delayed, (time.monotonic() + delay, dispatch.index)
                )
                requeued += 1
            if requeued:
                self.requeues += requeued
                self.telemetry.requeued(worker.name, requeued)
            lane_event(worker, "worker.dead", reason=why, requeued=requeued)
            if tracing is not None:
                tracing.tracer.event(
                    "worker.dead", worker=worker.name, requeued=requeued
                )

        def transport_error(worker: _FleetWorker, why: str) -> None:
            worker.errors += 1
            if worker.errors >= DEAD_AFTER_ERRORS:
                mark_dead(worker, why)

        def remove_dispatch(
            worker: _FleetWorker, dispatch: _Dispatch
        ) -> None:
            worker.in_flight.pop(dispatch.job_id, None)
            self.telemetry.in_flight(worker.name, len(worker.in_flight))
            entries = active.get(dispatch.index, [])
            entries = [(w, d) for (w, d) in entries if d is not dispatch]
            if entries:
                active[dispatch.index] = entries
            else:
                active.pop(dispatch.index, None)

        def fail_dispatch(
            worker: _FleetWorker, dispatch: _Dispatch, exc: Exception
        ) -> None:
            remove_dispatch(worker, dispatch)
            self.telemetry.failed(worker.name)
            if dispatch.index in completed:
                return
            if any(True for _ in active.get(dispatch.index, ())):
                return  # its duplicate is still in flight
            delay = budget.charge(dispatch.index, exc, results=results)
            heapq.heappush(
                delayed, (time.monotonic() + delay, dispatch.index)
            )

        def complete(
            worker: _FleetWorker, dispatch: _Dispatch, result: RunResult
        ) -> None:
            latency = time.monotonic() - dispatch.started
            remove_dispatch(worker, dispatch)
            if dispatch.index in completed:
                # Steal-race loser: the cell already completed elsewhere.
                self.duplicates += 1
                self.telemetry.duplicate(worker.name)
                lane_event(
                    worker, "cell.duplicate", cell=dispatch.index,
                    job_id=dispatch.job_id,
                )
                return
            completed.add(dispatch.index)
            remaining.discard(dispatch.index)
            worker.completed += 1
            latencies.append(latency)
            results[dispatch.index] = result
            on_complete(dispatch.index, result)
            self.telemetry.completed(worker.name, latency, trace_id)
            lane_event(
                worker, "cell.complete", cell=dispatch.index,
                job_id=dispatch.job_id, dur=round(latency, 6),
            )
            emit(DONE, dispatch.index)
            # First completion wins: cancel the loser of a steal race.
            for other_worker, other in list(active.get(dispatch.index, ())):
                self._try_cancel(other_worker, other.job_id)

        def dispatch_cell(
            worker: _FleetWorker, index: int, *, stolen: bool = False
        ) -> bool:
            config = configs[index]
            label = (
                f"fleet/cell-{index}" if not stolen
                else f"fleet/cell-{index}/steal"
            )
            envelope = self._cell_envelope(config, label)
            try:
                job_id = worker.client.submit(envelope, trace_id)
            except WorkerError as exc:
                transport_error(worker, str(exc))
                return False
            worker.errors = 0
            record = _Dispatch(
                job_id=job_id, index=index,
                started=time.monotonic(), stolen=stolen,
            )
            worker.in_flight[job_id] = record
            worker.dispatched += 1
            active.setdefault(index, []).append((worker, record))
            self.telemetry.dispatched(worker.name)
            self.telemetry.in_flight(worker.name, len(worker.in_flight))
            lane_event(
                worker, "cell.dispatch", cell=index, job_id=job_id,
                workload=config.workload, scheme=config.scheme,
                stolen=stolen,
            )
            if tracing is not None:
                tracing.tracer.event(
                    "cell.submit", cell=index, workload=config.workload,
                    scheme=config.scheme, worker=worker.name,
                )
            if not stolen:
                emit(START, index)
            return True

        def poll_worker(worker: _FleetWorker) -> None:
            for dispatch in list(worker.in_flight.values()):
                if dispatch.job_id not in worker.in_flight:
                    continue  # removed by a dead-worker sweep mid-loop
                try:
                    snapshot = worker.client.status(dispatch.job_id)
                except WorkerError as exc:
                    if exc.status == 404:
                        # The worker restarted and forgot the job.
                        fail_dispatch(worker, dispatch, exc)
                        continue
                    transport_error(worker, str(exc))
                    return  # this worker's loop is over for the tick
                worker.errors = 0
                state = str(snapshot.get("state", ""))
                if state == JOB_DONE:
                    try:
                        payload = worker.client.result(dispatch.job_id)
                    except WorkerError as exc:
                        if exc.status == 404:
                            fail_dispatch(worker, dispatch, exc)
                            continue
                        transport_error(worker, str(exc))
                        return
                    result = _decode_cell_result(payload)
                    if result is None:
                        fail_dispatch(
                            worker, dispatch,
                            WorkerError("malformed result payload"),
                        )
                        continue
                    complete(worker, dispatch, result)
                elif state in (FAILED, CANCELLED):
                    error = str(snapshot.get("error", "")) or state
                    if dispatch.stolen or state == CANCELLED:
                        # Cancelled steal losers aren't failures.
                        remove_dispatch(worker, dispatch)
                        if (
                            dispatch.index not in completed
                            and not active.get(dispatch.index)
                        ):
                            # Genuine cancel of the only dispatch: requeue.
                            fail_dispatch(
                                worker, dispatch,
                                WorkerError(f"job {state}: {error}"),
                            )
                    else:
                        fail_dispatch(
                            worker, dispatch,
                            WorkerError(f"job failed: {error}"),
                        )
                else:
                    writes = snapshot.get("writes_done", 0)
                    if (
                        isinstance(writes, int)
                        and writes > dispatch.writes_done
                    ):
                        dispatch.writes_done = writes
                        emit(HEARTBEAT, dispatch.index, writes)

        def steal_candidate() -> "tuple[_FleetWorker, _Dispatch] | None":
            if not latencies:
                threshold = self.straggler_min_s
            else:
                ordered = sorted(latencies)
                median = ordered[len(ordered) // 2]
                threshold = max(
                    self.straggler_min_s, self.straggler_factor * median
                )
            now = time.monotonic()
            best: "tuple[float, _FleetWorker, _Dispatch] | None" = None
            for worker in self.workers:
                if not worker.healthy:
                    continue
                for dispatch in worker.in_flight.values():
                    if dispatch.index in completed:
                        continue  # a steal-race loser still draining
                    age = now - dispatch.started
                    if age < threshold:
                        continue
                    if len(active.get(dispatch.index, ())) != 1:
                        continue  # already stolen once
                    if best is None or age > best[0]:
                        best = (age, worker, dispatch)
            return None if best is None else (best[1], best[2])

        while remaining:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                index = heapq.heappop(delayed)[1]
                if index not in completed:
                    ready.append(index)

            # Health probes (they also revive recovered workers).
            for worker in self.workers:
                if now < worker.next_probe:
                    continue
                worker.next_probe = now + self.probe_interval_s
                try:
                    worker.client.healthz()
                except WorkerError as exc:
                    if worker.healthy:
                        transport_error(worker, f"healthz failed: {exc}")
                    continue
                worker.errors = 0
                if not worker.healthy:
                    worker.healthy = True
                    self.telemetry.health(worker.name, True)
                    lane_event(worker, "worker.recovered")

            healthy = [w for w in self.workers if w.healthy]
            if not healthy:
                if all_dead_since is None:
                    all_dead_since = now
                elif now - all_dead_since > self.fleet_down_timeout_s:
                    index = min(remaining)
                    raise SweepCellFailed(
                        f"every fleet worker is unreachable "
                        f"({len(remaining)} cell(s) outstanding)",
                        index=index,
                        config=configs[index],
                        attempts=budget.attempts.get(index, 0),
                        results=list(results),
                    )
                time.sleep(self.poll_interval_s)
                continue
            all_dead_since = None

            # Dispatch into each healthy worker's bounded window.
            for worker in sorted(healthy, key=lambda w: len(w.in_flight)):
                while (
                    ready
                    and worker.healthy
                    and len(worker.in_flight) < self.window
                ):
                    index = ready.popleft()
                    if index in completed:
                        continue
                    if not dispatch_cell(worker, index):
                        ready.appendleft(index)
                        break

            # Poll in-flight jobs for completion/progress.
            for worker in self.workers:
                if worker.healthy and worker.in_flight:
                    poll_worker(worker)

            # Work stealing: idle capacity + a straggler = duplicate
            # dispatch; dedup-by-cell-index keeps the first completion.
            if not ready and not delayed:
                idle = [
                    w for w in self.workers
                    if w.healthy and len(w.in_flight) < self.window
                ]
                candidate = steal_candidate()
                if idle and candidate is not None:
                    victim, dispatch = candidate
                    thief = min(
                        (w for w in idle if w is not victim),
                        key=lambda w: len(w.in_flight),
                        default=None,
                    )
                    if thief is not None and dispatch_cell(
                        thief, dispatch.index, stolen=True
                    ):
                        self.steals += 1
                        self.telemetry.stolen(victim.name)
                        if tracing is not None:
                            tracing.tracer.event(
                                "cell.steal", cell=dispatch.index,
                                victim=victim.name, thief=thief.name,
                            )

            if remaining and should_stop is not None and should_stop():
                for worker in self.workers:
                    for dispatch in list(worker.in_flight.values()):
                        self._try_cancel(worker, dispatch.job_id)
                n_done = sum(r is not None for r in results)
                raise SweepCancelled(
                    f"sweep cancelled with {n_done}/{len(results)} cells "
                    "finished",
                    list(results),
                )

            if remaining:
                time.sleep(self.poll_interval_s)

    # -- tracing / ledger side-channels --------------------------------------

    def _open_worker_lanes(self, tracing: SweepTracing | None) -> None:
        """One child trace lane per worker (``worker-<i>.jsonl``).

        Lanes are children of the sweep's :class:`TraceContext`, so the
        trace exporter merges dispatch/steal/completion timelines of the
        whole fleet into the one correlated trace the sweep already
        exports.  Best-effort: a lane that cannot open leaves the worker
        untraced.
        """
        if tracing is None:
            return
        for i, worker in enumerate(self.workers):
            try:
                ctx = tracing.context.child()
                name = f"worker-{i}"
                sink = JsonlSink(
                    Path(tracing.dir) / f"{name}.jsonl",
                    meta={
                        **ctx.to_dict(), "lane": name,
                        "worker": worker.name, "url": worker.url,
                    },
                )
                worker.lane = Tracer(sink)
            except Exception:
                worker.lane = None

    def _close_worker_lanes(self) -> None:
        for worker in self.workers:
            if worker.lane is not None:
                try:
                    worker.lane.close()
                except Exception:
                    pass
                worker.lane = None

    def _record_fleet_manifest(
        self, ledger, label: str, n_cells: int, wall_time_s: float
    ) -> None:
        """One ``kind="fleet-sweep"`` manifest summarizing the fabric.

        The dashboard's fleet panel reads these; ``fleet.json`` carries
        the per-worker breakdown as an artifact.
        """
        from repro.obs.ledger import build_manifest

        stats = self.fleet_stats()
        try:
            ledger.record(
                build_manifest(
                    kind="fleet-sweep",
                    label=label,
                    n_writes=0,
                    wall_time_s=wall_time_s,
                    summary={
                        "cells": n_cells,
                        "workers": len(self.workers),
                        "dispatched": sum(
                            s["dispatched"] for s in stats  # type: ignore
                        ),
                        "steals": self.steals,
                        "requeues": self.requeues,
                        "duplicates": self.duplicates,
                    },
                ),
                artifact_text={
                    "fleet.json": json.dumps(
                        {"workers": stats}, indent=2, sort_keys=True
                    ) + "\n"
                },
            )
        except Exception:
            pass  # telemetry must never fail a finished sweep


def _decode_cell_result(payload: dict) -> RunResult | None:
    """Extract the single RunResult from a worker's run-job result reply."""
    body = payload.get("result")
    if not isinstance(body, dict):
        return None
    results = body.get("results")
    if not isinstance(results, list) or len(results) != 1:
        return None
    try:
        return RunResult.from_dict(results[0])
    except Exception:
        return None


# ---------------------------------------------------------------------------
# deuce-sim coordinate: the long-running coordinator service
# ---------------------------------------------------------------------------

_SWEEP_PATH = re.compile(r"^/sweeps/([A-Za-z0-9._-]+)(/result)?$")


def new_sweep_id() -> str:
    """Sortable unique fleet-sweep id."""
    return new_job_id().replace("job-", "fleet-", 1)


class _FleetSweep:
    """One sweep accepted by the coordinator service."""

    def __init__(self, sweep_id: str, spec: JobSpec) -> None:
        self.id = sweep_id
        self.spec = spec
        self.state = "queued"
        self.error = ""
        self.created_utc = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        self.cells_done = 0
        self.results: list[dict] | None = None
        self.thread: threading.Thread | None = None
        self.lock = threading.Lock()

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "sweep_id": self.id,
                "state": self.state,
                "error": self.error,
                "created_utc": self.created_utc,
                "n_cells": len(self.spec.configs),
                "cells_done": self.cells_done,
                "label": self.spec.label,
            }


class CoordinatorState:
    """Shared state behind the coordinate-mode HTTP handlers."""

    def __init__(
        self,
        session,
        worker_urls: Sequence[str],
        *,
        window: int = 2,
        probe_interval_s: float = 2.0,
        request_timeout_s: float = 10.0,
        default_retries: int = 2,
    ) -> None:
        self.session = session
        self.worker_urls = list(worker_urls)
        self.window = window
        self.probe_interval_s = probe_interval_s
        self.request_timeout_s = request_timeout_s
        self.default_retries = default_retries
        self.telemetry = FleetTelemetry()
        self.sweeps: dict[str, _FleetSweep] = {}
        self.executors: dict[str, FleetExecutor] = {}
        self.started = time.monotonic()
        self._lock = threading.Lock()

    def submit(self, spec: JobSpec, sweep_id: str = "") -> _FleetSweep:
        """Accept a sweep and run it over the fleet in the background.

        Re-submitting an id whose previous run finished (or failed)
        resumes from the ledger-keyed checkpoint — the coordinator's
        restart story is the same as a local ``--resume``.
        """
        sweep_id = sweep_id or new_sweep_id()
        with self._lock:
            existing = self.sweeps.get(sweep_id)
            if existing is not None and existing.state in (
                "queued", "running"
            ):
                raise JobError(
                    f"sweep {sweep_id!r} is already {existing.state}"
                )
            sweep = _FleetSweep(sweep_id, spec)
            self.sweeps[sweep_id] = sweep
            executor = FleetExecutor(
                self.worker_urls,
                window=self.window,
                probe_interval_s=self.probe_interval_s,
                request_timeout_s=self.request_timeout_s,
                telemetry=self.telemetry,
            )
            self.executors[sweep_id] = executor
        thread = threading.Thread(
            target=self._run, args=(sweep, executor), daemon=True,
            name=f"fleet-{sweep_id}",
        )
        sweep.thread = thread
        thread.start()
        return sweep

    def _run(self, sweep: _FleetSweep, executor: FleetExecutor) -> None:
        with sweep.lock:
            sweep.state = "running"

        def on_progress(event: ProgressEvent) -> None:
            if event.kind == DONE:
                with sweep.lock:
                    sweep.cells_done += 1

        spec = sweep.spec
        try:
            kwargs: dict = {}
            if self.session.ledger is not None:
                kwargs["sweep_id"] = sweep.id
                kwargs["trace_dir"] = (
                    self.session.ledger.root / "traces" / sweep.id
                )
            results = self.session.sweep(
                spec.configs,
                executor=executor,
                retries=(
                    spec.retries if spec.retries else self.default_retries
                ),
                label=spec.label,
                progress=on_progress,
                **kwargs,
            )
        except SweepCellFailed as exc:
            with sweep.lock:
                sweep.state = "failed"
                sweep.error = str(exc)
        except SweepCancelled as exc:
            with sweep.lock:
                sweep.state = "cancelled"
                sweep.error = str(exc)
        except Exception as exc:  # noqa: BLE001 - surfaced via the API
            with sweep.lock:
                sweep.state = "failed"
                sweep.error = f"{type(exc).__name__}: {exc}"
        else:
            with sweep.lock:
                sweep.state = "done"
                sweep.results = [r.to_dict() for r in results]

    def healthz(self) -> dict:
        with self._lock:
            states = [s.snapshot()["state"] for s in self.sweeps.values()]
        return {
            "status": "ok",
            "role": "coordinator",
            "api_version": "v1",
            "uptime_s": round(time.monotonic() - self.started, 3),
            "workers": list(self.worker_urls),
            "sweeps": {
                "total": len(states),
                "running": states.count("running"),
                "done": states.count("done"),
                "failed": states.count("failed"),
            },
        }

    def fleet(self) -> dict:
        with self._lock:
            executors = dict(self.executors)
            sweeps = [s.snapshot() for s in self.sweeps.values()]
        workers: dict[str, dict] = {}
        for executor in executors.values():
            for stats in executor.fleet_stats():
                name = str(stats["name"])
                agg = workers.setdefault(
                    name,
                    {
                        "name": name, "url": stats["url"],
                        "healthy": True, "in_flight": 0,
                        "dispatched": 0, "completed": 0,
                    },
                )
                agg["healthy"] = bool(agg["healthy"]) and bool(
                    stats["healthy"]
                )
                for key in ("in_flight", "dispatched", "completed"):
                    agg[key] = int(agg[key]) + int(stats[key])  # type: ignore
        return {
            "workers": sorted(workers.values(), key=lambda w: w["name"]),
            "sweeps": sweeps,
        }


class CoordinatorServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, state: CoordinatorState, quiet=True) -> None:
        super().__init__(address, _CoordinatorHandler)
        self.state = state
        self.quiet = quiet

    @property
    def port(self) -> int:
        return self.server_address[1]


class _CoordinatorHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: CoordinatorServer

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _route(self, raw_path: str) -> str:
        if raw_path == "/v1" or raw_path.startswith("/v1/"):
            return raw_path[len("/v1"):] or "/"
        return raw_path

    def _json(self, status: int, payload: object) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._json(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        path = self._route(url.path)
        state = self.server.state
        if path == "/healthz":
            return self._json(200, state.healthz())
        if path == "/fleet":
            return self._json(200, state.fleet())
        if path == "/metrics":
            return self._get_metrics(parse_qs(url.query))
        if path == "/sweeps":
            return self._json(
                200,
                {"sweeps": [s.snapshot() for s in state.sweeps.values()]},
            )
        match = _SWEEP_PATH.match(path)
        if match:
            sweep = state.sweeps.get(match.group(1))
            if sweep is None:
                return self._error(404, f"no sweep {match.group(1)!r}")
            if not match.group(2):
                return self._json(200, sweep.snapshot())
            snapshot = sweep.snapshot()
            if snapshot["state"] in ("queued", "running"):
                return self._json(202, snapshot)
            if snapshot["state"] != "done":
                return self._json(409, snapshot)
            return self._json(
                200, {**snapshot, "results": sweep.results or []}
            )
        self._error(404, f"no route for GET {url.path}")

    def _get_metrics(self, query: dict) -> None:
        state = self.server.state
        accept = self.headers.get("Accept", "")
        fmt = query.get("format", [""])[0]
        if fmt == "prometheus" or (
            not fmt and "text/plain" in accept
        ):
            from repro.obs.promfmt import render_prometheus

            text = render_prometheus(state.telemetry.registry)
            body = text.encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._json(200, state.telemetry.snapshot())

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        url = urlsplit(self.path)
        path = self._route(url.path)
        if path != "/sweeps":
            return self._error(404, f"no route for POST {url.path}")
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else None
        except ValueError:
            return self._error(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            return self._error(400, "request body must be a JSON object")
        # ``sweep_id`` is a coordinator-level option (it keys the merged
        # checkpoint); pull it out before the shared envelope decode.
        options = payload.get("options")
        sweep_id = ""
        if isinstance(options, dict) and "sweep_id" in options:
            options = dict(options)
            sweep_id = str(options.pop("sweep_id"))
            payload = {**payload, "options": options}
        try:
            spec, _deprecated = JobSpec.decode(payload)
            if spec.kind != "sweep":
                raise JobError(
                    "the coordinator accepts only kind='sweep' envelopes"
                )
            sweep = self.server.state.submit(spec, sweep_id)
        except JobError as exc:
            return self._error(400, str(exc))
        self._json(
            201,
            {
                "sweep_id": sweep.id,
                "state": sweep.snapshot()["state"],
                "status_url": f"/v1/sweeps/{sweep.id}",
                "result_url": f"/v1/sweeps/{sweep.id}/result",
            },
        )


def serve_coordinator(
    host: str = "127.0.0.1",
    port: int = 8788,
    *,
    session,
    worker_urls: Sequence[str],
    window: int = 2,
    probe_interval_s: float = 2.0,
    request_timeout_s: float = 10.0,
    quiet: bool = False,
    ready: threading.Event | None = None,
) -> int:
    """Run the coordinator service until SIGTERM/SIGINT.

    ``POST /v1/sweeps`` takes the standard job envelope (``kind="sweep"``)
    plus an optional ``options.sweep_id`` that keys the merged checkpoint
    under the session ledger, so a coordinator restart + re-POST of the
    same id resumes exactly like a local ``--resume``.
    """
    state = CoordinatorState(
        session,
        worker_urls,
        window=window,
        probe_interval_s=probe_interval_s,
        request_timeout_s=request_timeout_s,
    )
    server = CoordinatorServer((host, port), state, quiet=quiet)
    stop = threading.Event()

    def _graceful(signum, _frame) -> None:
        stop.set()
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _graceful)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    if not quiet:
        print(
            f"deuce-sim coordinate: listening on http://{host}:{server.port}"
            f" with {len(state.worker_urls)} worker(s): "
            + ", ".join(state.worker_urls),
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
    if not quiet:
        print("deuce-sim coordinate: bye", flush=True)
    return 0
