"""Service-level telemetry for the job service (``GET /v1/metrics``).

:mod:`repro.obs` instruments individual simulation runs; this module
instruments the *service* around them — the request path, the job queue,
and the worker pool — so operators can see queue-wait, backpressure, and
tail latency before they become outages.  One :class:`ServiceTelemetry` is
shared by the :class:`~repro.service.jobs.JobManager` and the HTTP layer
and is exposed at ``GET /v1/metrics`` as JSON or Prometheus text
(:mod:`repro.obs.promfmt`).

Metric catalog
--------------
``deuce_http_requests_total{method,route,status}``
    Counter of handled requests, labeled by route *template*
    (``/jobs/{id}``, never raw ids — bounded cardinality).
``deuce_http_request_duration_seconds{method,route}``
    Fixed-bucket latency histogram per route with p50/p95/p99 estimates.
``deuce_http_backpressure_total`` / ``deuce_http_draining_total``
    Counters of 429 (queue full) and 503 (draining) rejections.
``deuce_jobs_submitted_total{kind}`` / ``deuce_jobs_finished_total{kind,state}``
    Job lifecycle counters.
``deuce_job_queue_wait_seconds{kind}`` / ``deuce_job_exec_seconds{kind}`` /
``deuce_job_total_seconds{kind}``
    Job phase histograms: queued→running, running→terminal, and end to end.
``deuce_queue_depth`` / ``deuce_jobs_in_flight`` / ``deuce_queue_capacity`` /
``deuce_service_draining``
    Queue gauges, refreshed at scrape time.
``deuce_worker_heartbeat_seconds{worker}`` / ``deuce_worker_busy{worker}`` /
``deuce_worker_jobs_total{worker}``
    Per-worker liveness: the heartbeat gauge holds seconds-since-start of
    the worker's last poll (compare against uptime to spot a stuck worker).
``deuce_service_uptime_seconds`` / ``deuce_metrics_scrapes_total``
    Service uptime and scrape count (the latter makes counter
    monotonicity visible across consecutive scrapes).

All updates take one internal lock — HTTP handler threads and job workers
mutate instruments concurrently, and a torn histogram update would corrupt
bucket counts.  The lock is uncontended in practice (sub-microsecond
critical sections against millisecond-scale requests).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.promfmt import render_prometheus

#: Request latency bucket bounds (seconds): sub-ms health probes up to
#: multi-second ledger queries.
REQUEST_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Job phase bucket bounds (seconds): jobs run for seconds to minutes.
JOB_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 300.0, 900.0,
)


class ServiceTelemetry:
    """Thread-safe instrument bundle for the job service.

    Parameters
    ----------
    registry:
        The backing :class:`~repro.obs.metrics.MetricsRegistry`; a fresh
        one by default.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        self.started = clock()
        # Pre-register the unlabeled families so an idle service still
        # exposes a complete catalog on its very first scrape.
        with self._lock:
            self.registry.counter("deuce_http_backpressure_total")
            self.registry.counter("deuce_http_draining_total")
            self.registry.gauge("deuce_queue_depth")
            self.registry.gauge("deuce_jobs_in_flight")
            self.registry.gauge("deuce_queue_capacity")
            self.registry.gauge("deuce_service_draining")
            self.registry.gauge("deuce_service_uptime_seconds")
            self.registry.counter("deuce_metrics_scrapes_total")

    @property
    def uptime_s(self) -> float:
        return self._clock() - self.started

    # -- request path --------------------------------------------------------

    def observe_request(
        self,
        method: str,
        route: str,
        status: int,
        seconds: float,
        trace_id: str = "",
    ) -> None:
        """Record one handled HTTP request.

        ``route`` must be a bounded template (``/jobs/{id}``), never a raw
        path — every distinct label set is a live instrument.  ``trace_id``
        becomes the latency bucket's exemplar, linking the histogram to
        the concrete request that landed there.
        """
        with self._lock:
            self.registry.counter(
                "deuce_http_requests_total",
                {"method": method, "route": route, "status": str(status)},
            ).inc()
            self.registry.bucket_histogram(
                "deuce_http_request_duration_seconds",
                {"method": method, "route": route},
                buckets=REQUEST_BUCKETS,
            ).observe(seconds, exemplar=trace_id)
            if status == 429:
                self.registry.counter("deuce_http_backpressure_total").inc()
            elif status == 503:
                self.registry.counter("deuce_http_draining_total").inc()

    # -- job lifecycle -------------------------------------------------------

    def job_submitted(self, kind: str) -> None:
        with self._lock:
            self.registry.counter(
                "deuce_jobs_submitted_total", {"kind": kind}
            ).inc()

    def job_started(
        self, kind: str, queue_wait_s: float, trace_id: str = ""
    ) -> None:
        """A job left the queue; records its queue-wait phase."""
        with self._lock:
            self.registry.bucket_histogram(
                "deuce_job_queue_wait_seconds", {"kind": kind},
                buckets=JOB_BUCKETS,
            ).observe(queue_wait_s, exemplar=trace_id)

    def job_finished(
        self,
        kind: str,
        state: str,
        exec_s: float,
        total_s: float,
        trace_id: str = "",
    ) -> None:
        """A job reached a terminal state; records exec and total phases.

        ``trace_id`` (the job's correlated-trace id) becomes the bucket
        exemplar, so a slow ``deuce_job_exec_seconds`` bucket points at an
        exportable trace (``deuce-sim trace export <job_id>``).
        """
        with self._lock:
            self.registry.counter(
                "deuce_jobs_finished_total", {"kind": kind, "state": state}
            ).inc()
            self.registry.bucket_histogram(
                "deuce_job_exec_seconds", {"kind": kind}, buckets=JOB_BUCKETS
            ).observe(exec_s, exemplar=trace_id)
            self.registry.bucket_histogram(
                "deuce_job_total_seconds", {"kind": kind}, buckets=JOB_BUCKETS
            ).observe(total_s, exemplar=trace_id)

    # -- queue / workers -----------------------------------------------------

    def sample_queue(
        self, *, depth: int, in_flight: int, capacity: int, draining: bool
    ) -> None:
        """Refresh the queue gauges (called at scrape/health time)."""
        with self._lock:
            self.registry.gauge("deuce_queue_depth").set(depth)
            self.registry.gauge("deuce_jobs_in_flight").set(in_flight)
            self.registry.gauge("deuce_queue_capacity").set(capacity)
            self.registry.gauge("deuce_service_draining").set(
                1.0 if draining else 0.0
            )

    def worker_heartbeat(self, worker: str, *, busy: bool = False) -> None:
        """A worker thread polled the queue (or picked up / finished a job)."""
        with self._lock:
            self.registry.gauge(
                "deuce_worker_heartbeat_seconds", {"worker": worker}
            ).set(round(self.uptime_s, 3))
            self.registry.gauge(
                "deuce_worker_busy", {"worker": worker}
            ).set(1.0 if busy else 0.0)
            if busy:
                self.registry.counter(
                    "deuce_worker_jobs_total", {"worker": worker}
                ).inc()

    # -- export --------------------------------------------------------------

    def snapshot(self) -> list[dict[str, object]]:
        """All instruments as JSON-safe dicts (one scrape)."""
        with self._lock:
            self.registry.gauge("deuce_service_uptime_seconds").set(
                round(self.uptime_s, 3)
            )
            self.registry.counter("deuce_metrics_scrapes_total").inc()
            return self.registry.snapshot()

    def to_prometheus(self) -> str:
        """One scrape in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())
