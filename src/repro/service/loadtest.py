"""Concurrent load-test harness for the job service (``deuce-sim loadtest``).

Stdlib-only soak generator: N client threads hammer a running service with
a weighted mix of operations (job submission, status polling, sweep
submission, cancellation, health probes) for a fixed duration, while a
sampler thread records the queue-depth/in-flight time series from
``/v1/healthz``.  The result is a JSON report with exact latency
percentiles (client-side, every request measured — no bucketing error),
error rates, per-operation breakdowns, the queue time series, and a final
``/v1/metrics`` scrape from the server for cross-checking.

The report doubles as an SLO gate: give ``p99_slo_ms`` and/or
``max_error_rate`` and ``report["slo"]["passed"]`` says whether the
service held them.  429 backpressure responses are *not* errors — the
service shedding load by design is healthy behaviour; errors are
transport failures plus 5xx.

When a ledger is given the report is recorded as a ``kind="loadtest"``
manifest with the full JSON attached as an artifact, which is what the
dashboard's "Service SLO" tiles render.

:func:`spawned_service` spins up a private in-process service on an
ephemeral port for self-contained soaks (CI smoke, tests); point
``run_loadtest`` at an external URL to soak a real deployment.
"""

from __future__ import annotations

import contextlib
import json
import math
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.ledger import RunLedger, build_manifest
from repro.service.jobs import JobManager
from repro.service.server import SimulationServer

#: Relative operation weights of the default soak mix: mostly status
#: polling (the cheap, chatty op real clients do), a steady trickle of
#: run/sweep submissions, occasional cancels, and health probes.
DEFAULT_MIX: dict[str, float] = {
    "run": 2.0,
    "status": 6.0,
    "sweep": 0.5,
    "cancel": 0.5,
    "healthz": 1.0,
}

#: Operations :func:`parse_mix` accepts.
KNOWN_OPS = frozenset(DEFAULT_MIX)


def parse_mix(text: str) -> dict[str, float]:
    """``"run=2,status=6"`` → ``{"run": 2.0, "status": 6.0}``.

    Unlisted operations get weight 0 (never issued); at least one weight
    must be positive.
    """
    mix = dict.fromkeys(DEFAULT_MIX, 0.0)
    for part in filter(None, (p.strip() for p in text.split(","))):
        op, sep, weight = part.partition("=")
        op = op.strip()
        if op not in KNOWN_OPS:
            raise ValueError(
                f"unknown operation {op!r}; valid: "
                + ", ".join(sorted(KNOWN_OPS))
            )
        if not sep:
            raise ValueError(f"mix entry {part!r} must be 'op=weight'")
        try:
            value = float(weight)
        except ValueError:
            raise ValueError(
                f"weight for {op!r} must be a number, got {weight!r}"
            ) from None
        if value < 0:
            raise ValueError(f"weight for {op!r} must be >= 0, got {value}")
        mix[op] = value
    if not any(mix.values()):
        raise ValueError(f"mix {text!r} has no positive weights")
    return mix


def percentile(sorted_vals: list[float], q: float) -> float:
    """Exact linear-interpolation percentile of pre-sorted values.

    ``q`` in [0, 1].  Matches ``numpy.percentile``'s default ("linear")
    method; the empty list yields 0.0.
    """
    if not sorted_vals:
        return 0.0
    rank = q * (len(sorted_vals) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(sorted_vals[lo])
    frac = rank - lo
    return sorted_vals[lo] + (sorted_vals[hi] - sorted_vals[lo]) * frac


@dataclass
class LoadTestOptions:
    """Knobs for one soak.

    ``p99_slo_ms`` <= 0 and ``max_error_rate`` < 0 disable the respective
    SLO checks (the report still carries the measured values).
    """

    duration_s: float = 10.0
    clients: int = 8
    mix: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    writes: int = 200
    workload: str = "mcf"
    scheme: str = "deuce"
    seed: int = 0
    timeout_s: float = 30.0
    sample_every_s: float = 0.25
    p99_slo_ms: float = 0.0
    max_error_rate: float = -1.0
    label: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "duration_s": self.duration_s,
            "clients": self.clients,
            "mix": dict(self.mix),
            "writes": self.writes,
            "workload": self.workload,
            "scheme": self.scheme,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "p99_slo_ms": self.p99_slo_ms,
            "max_error_rate": self.max_error_rate,
        }


def _http(
    method: str,
    url: str,
    payload: object = None,
    timeout: float = 30.0,
) -> tuple[int, object, float]:
    """One request → ``(status, decoded body or None, latency seconds)``.

    Status 0 means the request never got an HTTP response (connection
    refused, timeout, reset) — a *transport* error, counted separately
    from server 5xx in the report.
    """
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, headers=headers,
                                 method=method)
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
            elapsed = time.perf_counter() - t0
            try:
                body = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                body = None
            return resp.status, body, elapsed
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code, None, time.perf_counter() - t0
    except Exception:
        return 0, None, time.perf_counter() - t0


class _Soak:
    """Shared state of one running load test."""

    def __init__(self, base_url: str, options: LoadTestOptions) -> None:
        self.base = base_url.rstrip("/")
        self.options = options
        self.deadline = 0.0
        self._lock = threading.Lock()
        self._job_ids: list[str] = []
        self.records: list[list[tuple[str, int, float]]] = []
        self.queue_samples: list[tuple[float, int, int]] = []
        self.queue_capacity = 0

    # -- shared job-id pool --------------------------------------------------

    def _remember_job(self, job_id: str) -> None:
        with self._lock:
            self._job_ids.append(job_id)
            # Status/cancel ops only need recent ids; cap the pool.
            if len(self._job_ids) > 512:
                del self._job_ids[:256]

    def _pick_job(self, rng: random.Random) -> str | None:
        with self._lock:
            return rng.choice(self._job_ids) if self._job_ids else None

    def known_jobs(self) -> list[str]:
        with self._lock:
            return list(self._job_ids)

    # -- client threads ------------------------------------------------------

    def _config(self, rng: random.Random) -> dict[str, object]:
        opts = self.options
        return {
            "workload": opts.workload,
            "scheme": opts.scheme,
            "n_writes": opts.writes,
            "seed": rng.randrange(1_000_000),
        }

    def _do_op(
        self, op: str, rng: random.Random
    ) -> tuple[str, int, float]:
        timeout = self.options.timeout_s
        if op == "run":
            status, body, dt = _http(
                "POST", f"{self.base}/v1/jobs",
                {"kind": "run", "config": self._config(rng)},
                timeout,
            )
            if status == 201 and isinstance(body, dict):
                self._remember_job(body["job_id"])
            return op, status, dt
        if op == "sweep":
            configs = [self._config(rng), self._config(rng)]
            status, body, dt = _http(
                "POST", f"{self.base}/v1/jobs",
                {"kind": "sweep", "configs": configs, "workers": 1},
                timeout,
            )
            if status == 201 and isinstance(body, dict):
                self._remember_job(body["job_id"])
            return op, status, dt
        if op == "cancel":
            job_id = self._pick_job(rng)
            if job_id is not None:
                status, _, dt = _http(
                    "DELETE", f"{self.base}/v1/jobs/{job_id}",
                    timeout=timeout,
                )
                return op, status, dt
            op = "status"  # nothing to cancel yet; fall through
        if op == "status":
            job_id = self._pick_job(rng)
            url = (
                f"{self.base}/v1/jobs/{job_id}"
                if job_id is not None
                else f"{self.base}/v1/jobs"
            )
            status, _, dt = _http("GET", url, timeout=timeout)
            return op, status, dt
        status, _, dt = _http(
            "GET", f"{self.base}/v1/healthz", timeout=timeout
        )
        return "healthz", status, dt

    def _client_loop(self, index: int) -> None:
        rng = random.Random(self.options.seed * 7919 + index)
        ops = [op for op, w in self.options.mix.items() if w > 0]
        weights = [self.options.mix[op] for op in ops]
        mine: list[tuple[str, int, float]] = []
        while time.monotonic() < self.deadline:
            op = rng.choices(ops, weights)[0]
            mine.append(self._do_op(op, rng))
        with self._lock:
            self.records.append(mine)

    # -- sampler thread ------------------------------------------------------

    def _sampler_loop(self, t0: float) -> None:
        while time.monotonic() < self.deadline:
            status, body, _ = _http(
                "GET", f"{self.base}/v1/healthz",
                timeout=self.options.timeout_s,
            )
            if status == 200 and isinstance(body, dict):
                sample = (
                    round(time.monotonic() - t0, 3),
                    int(body.get("queue_depth", 0)),
                    int(body.get("in_flight", 0)),
                )
                with self._lock:
                    self.queue_samples.append(sample)
                    self.queue_capacity = int(
                        body.get("queue_capacity", self.queue_capacity)
                    )
            time.sleep(self.options.sample_every_s)


def run_loadtest(
    base_url: str,
    options: LoadTestOptions | None = None,
    *,
    ledger: RunLedger | None = None,
) -> dict[str, object]:
    """Soak a running service and return (and optionally record) a report.

    Blocks for ``options.duration_s`` plus cleanup.  Outstanding jobs
    submitted by the soak are cancelled best-effort afterwards so a
    short-lived smoke run doesn't leave a service grinding through
    leftover work.
    """
    options = options if options is not None else LoadTestOptions()
    soak = _Soak(base_url, options)
    t0 = time.monotonic()
    soak.deadline = t0 + options.duration_s
    threads = [
        threading.Thread(
            target=soak._client_loop, args=(i,), daemon=True,
            name=f"loadtest-client-{i}",
        )
        for i in range(options.clients)
    ]
    sampler = threading.Thread(
        target=soak._sampler_loop, args=(t0,), daemon=True,
        name="loadtest-sampler",
    )
    for thread in threads:
        thread.start()
    sampler.start()
    for thread in threads:
        thread.join()
    sampler.join()
    wall_s = time.monotonic() - t0

    # Leave the service quiet: cancel anything the soak queued up.
    for job_id in soak.known_jobs():
        _http("DELETE", f"{soak.base}/v1/jobs/{job_id}",
              timeout=options.timeout_s)
    _, metrics_body, _ = _http(
        "GET", f"{soak.base}/v1/metrics", timeout=options.timeout_s
    )

    report = _build_report(soak, wall_s, metrics_body)
    if ledger is not None:
        record_report(ledger, report, label=options.label)
    return report


def _build_report(
    soak: _Soak, wall_s: float, metrics_body: object
) -> dict[str, object]:
    options = soak.options
    flat = [rec for client in soak.records for rec in client]
    latencies = sorted(dt * 1000.0 for _, _, dt in flat)
    transport = sum(1 for _, status, _ in flat if status == 0)
    server_5xx = sum(1 for _, status, _ in flat if status >= 500)
    backpressure = sum(1 for _, status, _ in flat if status == 429)
    errors = transport + server_5xx
    total = len(flat)
    error_rate = errors / total if total else 0.0

    per_op: dict[str, dict[str, float]] = {}
    for op in sorted({rec[0] for rec in flat}):
        mine = sorted(dt * 1000.0 for o, _, dt in flat if o == op)
        op_errors = sum(
            1 for o, status, _ in flat
            if o == op and (status == 0 or status >= 500)
        )
        per_op[op] = {
            "requests": len(mine),
            "errors": op_errors,
            "p50_ms": round(percentile(mine, 0.50), 3),
            "p99_ms": round(percentile(mine, 0.99), 3),
        }

    depths = [depth for _, depth, _ in soak.queue_samples]
    p99_ms = percentile(latencies, 0.99)
    slo: dict[str, object] = {
        "p99_slo_ms": options.p99_slo_ms,
        "max_error_rate": options.max_error_rate,
        "p99_ms": round(p99_ms, 3),
        "error_rate": round(error_rate, 6),
    }
    passed = True
    if options.p99_slo_ms > 0 and p99_ms > options.p99_slo_ms:
        passed = False
    if 0 <= options.max_error_rate < error_rate:
        passed = False
    slo["passed"] = passed

    return {
        "kind": "loadtest",
        "base_url": soak.base,
        "options": options.to_dict(),
        "duration_s": round(wall_s, 3),
        "totals": {
            "requests": total,
            "rps": round(total / wall_s, 2) if wall_s else 0.0,
            "errors": errors,
            "error_rate": round(error_rate, 6),
            "backpressure_429": backpressure,
            "server_5xx": server_5xx,
            "transport_errors": transport,
        },
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p90": round(percentile(latencies, 0.90), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "p99": round(p99_ms, 3),
            "mean": round(
                sum(latencies) / len(latencies), 3
            ) if latencies else 0.0,
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "ops": per_op,
        "queue": {
            "samples": [list(s) for s in soak.queue_samples],
            "depth_peak": max(depths) if depths else 0,
            "depth_mean": round(
                sum(depths) / len(depths), 3
            ) if depths else 0.0,
            "capacity": soak.queue_capacity,
        },
        "server_metrics": (
            metrics_body.get("metrics")
            if isinstance(metrics_body, dict)
            else None
        ),
        "slo": slo,
    }


def record_report(
    ledger: RunLedger, report: dict[str, object], *, label: str = ""
) -> "object":
    """Persist a loadtest report as a ledger manifest + JSON artifact.

    The summary carries the flat numbers the dashboard tiles need; the
    full report (queue time series included) lands in the
    ``loadtest.json`` artifact.
    """
    totals = report["totals"]
    latency = report["latency_ms"]
    queue = report["queue"]
    slo = report["slo"]
    capacity = queue["capacity"] or 0
    manifest = build_manifest(
        kind="loadtest",
        label=label,
        config={"options": report["options"]},
        wall_time_s=float(report["duration_s"]),
        summary={
            "requests": float(totals["requests"]),
            "rps": float(totals["rps"]),
            "errors": float(totals["errors"]),
            "error_rate": float(totals["error_rate"]),
            "backpressure_429": float(totals["backpressure_429"]),
            "p50_ms": float(latency["p50"]),
            "p95_ms": float(latency["p95"]),
            "p99_ms": float(latency["p99"]),
            "queue_depth_peak": float(queue["depth_peak"]),
            "saturation": (
                queue["depth_peak"] / capacity if capacity else 0.0
            ),
            "slo_passed": 1.0 if slo["passed"] else 0.0,
        },
    )
    return ledger.record(
        manifest,
        artifact_text={
            "loadtest.json": json.dumps(report, indent=2, sort_keys=True)
            + "\n"
        },
    )


@contextlib.contextmanager
def spawned_service(
    session,
    *,
    job_workers: int = 2,
    queue_size: int = 16,
    max_sweep_workers: int = 2,
) -> Iterator[str]:
    """A private in-process service on an ephemeral port; yields its URL.

    For self-contained soaks (tests, CI smoke): no sockets are shared, the
    service drains with cancellation on exit.
    """
    manager = JobManager(
        session,
        job_workers=job_workers,
        queue_size=queue_size,
        max_sweep_workers=max_sweep_workers,
    ).start()
    server = SimulationServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        manager.drain(10, cancel=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
