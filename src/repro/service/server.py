"""HTTP front end for the simulation job service (``deuce-sim serve``).

Zero-dependency JSON API over :class:`http.server.ThreadingHTTPServer`.
Every route is mounted under the versioned ``/v1`` prefix; the bare paths
remain as deprecated aliases (see *API versioning* below).  Endpoints:

============================  =================================================
``GET  /v1/healthz``          liveness + uptime + queue depth/in-flight/
                              completed counters + drain state +
                              ``api_version``
``GET  /v1/metrics``          service telemetry (request latency histograms,
                              job phase timings, queue gauges, worker
                              heartbeats) as JSON, or Prometheus text with
                              ``?format=prometheus`` / ``Accept: text/plain``
``POST /v1/jobs``             submit a run/sweep/experiment job (``201``;
                              ``400`` bad payload, ``429`` queue full,
                              ``503`` draining)
``GET  /v1/jobs``             snapshots of every known job
``GET  /v1/jobs/{id}``        one job's status + progress counters
``GET  /v1/jobs/{id}/result`` the finished job's result (``202`` while
                              pending, ``409`` for failed/cancelled)
``GET  /v1/jobs/{id}/events`` chunked JSONL progress stream (``?since=N``
                              cursor, ``?follow=0`` for a one-shot page)
``DELETE /v1/jobs/{id}``      cooperative cancellation
``GET  /v1/runs``             ledger query (``kind``/``scheme``/``workload``/
                              ``label``/``limit`` filters)
============================  =================================================

API versioning: clients should call the ``/v1/...`` forms.  The bare
legacy paths (``/healthz``, ``/jobs``, ...) keep working but every
response to them carries a ``Deprecation: true`` header plus a ``Link``
pointing at the ``/v1`` successor; they will be removed when a ``/v2``
ships.  URLs the service emits (the ``status_url``/``result_url``/
``events_url`` of a ``201``) echo the prefix the request used.

Restart durability: when the session has a ledger, the manager journals
jobs to ``<ledger>/service/jobs.jsonl`` and rehydrates them on startup —
finished jobs stay queryable, unfinished ones are resubmitted and sweep
jobs resume from their per-job sweep checkpoint.

Graceful shutdown: SIGTERM/SIGINT flip the service into *draining* —
``POST /jobs`` answers ``503``, ``/healthz`` reports it — then the job
manager drains (in-flight sweeps finish or cancel cooperatively, no
orphaned worker processes) and the listener closes.
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.api import Session
from repro.obs import promfmt
from repro.service.jobs import (
    TERMINAL_STATES,
    DONE,
    JobError,
    JobManager,
    JobSpec,
    JobStore,
    QueueFullError,
    ServiceDraining,
    UnknownJobError,
)

#: Version segment all routes are mounted under (bare paths are aliases).
API_VERSION = "v1"

#: Seconds between polls while following a job's event stream.
EVENT_POLL_S = 0.05

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9._-]+)(/result|/events)?$")


class SimulationServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a :class:`JobManager` + Session."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        manager: JobManager,
        *,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.manager = manager
        self.session = manager.session
        self.telemetry = manager.telemetry
        self.quiet = quiet
        self.started_monotonic = time.monotonic()

    @property
    def port(self) -> int:
        return self.server_address[1]


def route_template(path: str) -> str:
    """Collapse a request path to its bounded route template.

    Metric labels must never carry raw job ids (every distinct label set
    is a live time series); unknown paths fold to ``"other"``.
    """
    if path in ("/healthz", "/metrics", "/runs", "/jobs", "/"):
        return path
    match = _JOB_PATH.match(path)
    if match:
        return "/jobs/{id}" + (match.group(2) or "")
    return "other"


class _Handler(BaseHTTPRequestHandler):
    server: SimulationServer
    protocol_version = "HTTP/1.1"

    #: ``"/v1"`` when the request used the versioned prefix, else ``""``.
    _prefix = ""
    #: The route path with the version prefix stripped (set per request).
    _route_path = "/"
    #: Last status code sent on this request (for telemetry).
    _status = 0
    #: Trace id for this request (client ``X-Trace-Id`` or freshly minted).
    _trace_id = ""

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def send_response(self, code: int, message: str | None = None) -> None:
        self._status = code
        super().send_response(code, message)

    def _timed(self, method: str, handle: Callable[[], None]) -> None:
        """Dispatch one request, recording latency by route template/status.

        The route template is derived after the handler ran (it parses the
        path), so labels reflect the normalized ``/jobs/{id}`` form; a
        handler that died before sending anything records status 500.

        Every request gets a trace id — the client's ``X-Trace-Id`` header
        when sent (so callers can correlate their own traces), otherwise a
        fresh one — echoed back on the response and attached to the latency
        histogram bucket as an exemplar.
        """
        t0 = time.perf_counter()
        self._status = 0
        header = (self.headers.get("X-Trace-Id") or "").strip()
        self._trace_id = header[:64] if header else uuid.uuid4().hex[:16]
        try:
            handle()
        finally:
            self.server.telemetry.observe_request(
                method,
                route_template(self._route_path),
                self._status or 500,
                time.perf_counter() - t0,
                trace_id=self._trace_id,
            )

    def _route(self, raw_path: str) -> str:
        """Strip an optional ``/v1`` prefix; remember which form was used."""
        versioned = f"/{API_VERSION}"
        if raw_path == versioned or raw_path.startswith(versioned + "/"):
            self._prefix = versioned
            path = raw_path[len(versioned):] or "/"
        else:
            self._prefix = ""
            path = raw_path
        self._route_path = path
        return path

    def _deprecation_headers(self) -> dict[str, str]:
        """Alias headers for requests that used a bare legacy path."""
        if self._prefix:
            return {}
        successor = f"/{API_VERSION}{self._route_path}"
        return {
            "Deprecation": "true",
            "Link": f'<{successor}>; rel="successor-version"',
        }

    def _json(self, status: int, payload: object, **headers: str) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        for name, value in self._deprecation_headers().items():
            self.send_header(name, value)
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        for name, value in self._deprecation_headers().items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **headers: str) -> None:
        self._json(status, {"error": message}, **headers)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._timed("GET", self._do_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._timed("POST", self._do_post)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._timed("DELETE", self._do_delete)

    def _do_get(self) -> None:
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        path = self._route(url.path)
        if path == "/healthz":
            return self._get_healthz()
        if path == "/metrics":
            return self._get_metrics(query)
        if path == "/runs":
            return self._get_runs(query)
        if path == "/jobs":
            return self._json(
                200,
                {"jobs": [j.snapshot() for j in self.server.manager.jobs()]},
            )
        match = _JOB_PATH.match(path)
        if match:
            try:
                job = self.server.manager.get(match.group(1))
            except UnknownJobError as exc:
                return self._error(404, str(exc))
            tail = match.group(2)
            if tail is None:
                return self._json(200, job.snapshot())
            if tail == "/result":
                return self._get_result(job)
            return self._stream_events(job, query)
        self._error(404, f"no route for GET {url.path}")

    def _do_post(self) -> None:
        url = urlsplit(self.path)
        path = self._route(url.path)
        if path != "/jobs":
            return self._error(404, f"no route for POST {url.path}")
        try:
            spec, deprecated_shape = JobSpec.decode(self._read_json())
            job = self.server.manager.submit(spec)
        except JobError as exc:
            return self._error(400, str(exc))
        except QueueFullError as exc:
            return self._error(429, str(exc), Retry_After="1")
        except ServiceDraining as exc:
            return self._error(503, str(exc))
        # Echo the version prefix the client used, so versioned clients
        # stay on /v1 and legacy clients keep working unchanged.  A legacy
        # payload *shape* is deprecated independently of the path: flag it
        # with the same header pair the bare-path aliases use.
        base = self._prefix
        shape_headers = (
            {
                "Deprecation": "true",
                "Link": f'</{API_VERSION}/jobs>; rel="successor-version"',
            }
            if deprecated_shape and self._prefix
            else {}
        )
        self._json(
            201,
            {
                "job_id": job.id,
                "state": job.state,
                "status_url": f"{base}/jobs/{job.id}",
                "result_url": f"{base}/jobs/{job.id}/result",
                "events_url": f"{base}/jobs/{job.id}/events",
            },
            **shape_headers,
        )

    def _do_delete(self) -> None:
        url = urlsplit(self.path)
        match = _JOB_PATH.match(self._route(url.path))
        if not match or match.group(2):
            return self._error(404, f"no route for DELETE {url.path}")
        try:
            job = self.server.manager.cancel(match.group(1))
        except UnknownJobError as exc:
            return self._error(404, str(exc))
        self._json(200, job.snapshot())

    # -- endpoint bodies -----------------------------------------------------

    def _get_healthz(self) -> None:
        manager = self.server.manager
        counts = manager.counts()
        self._json(
            200,
            {
                "status": "draining" if manager.draining else "ok",
                "api_version": API_VERSION,
                "jobs": counts,
                "jobs_completed": sum(
                    counts.get(state, 0) for state in TERMINAL_STATES
                ),
                "queue_depth": manager.queue_depth,
                "in_flight": manager.in_flight,
                "job_workers": manager.job_workers,
                "queue_capacity": manager._queue.maxsize,
                "ledger": (
                    str(self.server.session.ledger.root)
                    if self.server.session.ledger is not None
                    else None
                ),
                "uptime_s": round(
                    time.monotonic() - self.server.started_monotonic, 3
                ),
            },
        )

    def _get_metrics(self, query: dict[str, list[str]]) -> None:
        """One telemetry scrape, as JSON or Prometheus text exposition.

        Queue gauges are sampled at scrape time so they reflect this
        instant rather than the last request that happened to touch them.
        """
        manager = self.server.manager
        telemetry = self.server.telemetry
        telemetry.sample_queue(
            depth=manager.queue_depth,
            in_flight=manager.in_flight,
            capacity=manager._queue.maxsize,
            draining=manager.draining,
        )
        fmt = query.get("format", [""])[0].lower()
        accept = self.headers.get("Accept", "")
        wants_text = fmt in ("prometheus", "text") or (
            not fmt
            and "text/plain" in accept
            and "application/json" not in accept
        )
        if wants_text:
            return self._text(
                200, telemetry.to_prometheus(), promfmt.CONTENT_TYPE
            )
        self._json(
            200,
            {
                "api_version": API_VERSION,
                "uptime_s": round(telemetry.uptime_s, 3),
                "metrics": telemetry.snapshot(),
            },
        )

    def _get_runs(self, query: dict[str, list[str]]) -> None:
        ledger = self.server.session.ledger
        if ledger is None:
            return self._error(404, "ledger is disabled on this server")
        try:
            limit = int(query.get("limit", ["20"])[0])
        except ValueError:
            return self._error(400, "'limit' must be an integer")
        manifests = ledger.list(
            kind=query.get("kind", [None])[0],
            scheme=query.get("scheme", [None])[0],
            workload=query.get("workload", [None])[0],
            label=query.get("label", [None])[0],
            limit=limit or None,
        )
        self._json(200, {"runs": [m.to_dict() for m in manifests]})

    def _get_result(self, job) -> None:
        snapshot = job.snapshot()
        if snapshot["state"] not in TERMINAL_STATES:
            return self._json(202, snapshot)
        if snapshot["state"] != DONE:
            return self._json(409, snapshot)
        self._json(200, {**snapshot, "result": job.result})

    def _stream_events(self, job, query: dict[str, list[str]]) -> None:
        """Chunked JSONL: replay events from ``since``, follow until done."""
        try:
            since = int(query.get("since", ["0"])[0])
        except ValueError:
            return self._error(400, "'since' must be an integer")
        follow = query.get("follow", ["1"])[0] not in ("0", "false", "no")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        for name, value in self._deprecation_headers().items():
            self.send_header(name, value)
        self.end_headers()
        cursor = since
        try:
            while True:
                events = job.events_since(cursor)
                for event in events:
                    self._chunk(json.dumps(event, sort_keys=True) + "\n")
                    cursor = event["seq"] + 1
                snapshot = job.snapshot()
                if snapshot["state"] in TERMINAL_STATES or not follow:
                    self._chunk(
                        json.dumps(
                            {
                                "kind": "end",
                                "state": snapshot["state"],
                                "error": snapshot["error"],
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                    break
                job.wait(EVENT_POLL_S)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def _chunk(self, text: str) -> None:
        data = text.encode()
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    *,
    session: Session | None = None,
    job_workers: int = 2,
    queue_size: int = 16,
    job_timeout_s: float | None = None,
    max_sweep_workers: int = 4,
    drain_timeout_s: float = 30.0,
    quiet: bool = False,
    ready: threading.Event | None = None,
) -> int:
    """Run the job service until SIGTERM/SIGINT, then drain gracefully.

    Blocks the calling thread in ``serve_forever``.  The first signal
    starts a drain (new submissions get ``503``, in-flight jobs finish or
    cancel within ``drain_timeout_s``); a second signal cancels remaining
    jobs outright.  Returns the process exit code.
    """
    session = session if session is not None else Session()
    manager = JobManager(
        session,
        job_workers=job_workers,
        queue_size=queue_size,
        default_timeout_s=job_timeout_s,
        max_sweep_workers=max_sweep_workers,
        store=(
            JobStore(session.ledger.root / "service")
            if session.ledger is not None
            else None
        ),
    ).start()
    restored = manager.rehydrate()
    if not quiet and restored:
        print(
            f"deuce-sim serve: rehydrated {len(restored)} unfinished "
            f"job(s) from the ledger journal",
            flush=True,
        )
    server = SimulationServer((host, port), manager, quiet=quiet)
    signals_seen = []

    def _graceful(signum, _frame) -> None:
        signals_seen.append(signum)
        cancel = len(signals_seen) > 1
        # shutdown() must not run on the serve_forever thread (deadlock),
        # and a signal handler interrupts exactly that thread — hand off.
        threading.Thread(
            target=_drain_and_stop,
            args=(manager, server, drain_timeout_s, cancel),
            daemon=True,
        ).start()

    previous = {
        signum: signal.signal(signum, _graceful)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    if not quiet:
        print(
            f"deuce-sim serve: listening on http://{host}:{server.port} "
            f"({job_workers} job workers, queue {queue_size}, ledger "
            # "is not None": an empty-but-enabled RunLedger has len() == 0.
            f"{session.ledger.root if session.ledger is not None else 'off'})",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
    if not quiet:
        print("deuce-sim serve: drained, bye", flush=True)
    return 0


def _drain_and_stop(
    manager: JobManager,
    server: SimulationServer,
    drain_timeout_s: float,
    cancel: bool,
) -> None:
    manager.drain(drain_timeout_s, cancel=cancel)
    server.shutdown()
