"""Performance substrate: bank timing, system model, energy model."""

from repro.perf.energy import (
    EnergyConfig,
    EnergyReport,
    energy_report,
)
from repro.perf.queueing import (
    QueueingEstimate,
    analytic_read_latency,
    per_bank_rates,
    write_service_moments,
)
from repro.perf.system import CoreConfig, ExecutionResult, simulate_execution
from repro.perf.timing import BankModel, BankStats, MemorySystem, MemorySystemStats

__all__ = [
    "BankModel",
    "BankStats",
    "CoreConfig",
    "EnergyConfig",
    "EnergyReport",
    "ExecutionResult",
    "MemorySystem",
    "MemorySystemStats",
    "QueueingEstimate",
    "analytic_read_latency",
    "energy_report",
    "per_bank_rates",
    "simulate_execution",
    "write_service_moments",
]
