"""System performance model (Figure 16's speedups).

Rate mode makes all eight cores statistically identical, so we simulate one
core's slice of the machine: its share of the PCM banks, its Table 2 request
rates, and an in-order-at-the-miss-level core model:

* the core retires instructions at ``cpi_base`` until an L4 miss;
* an L4 read miss stalls the core for the read's memory latency (queueing
  included) beyond an overlappable ``hide_ns`` window;
* writebacks are fire-and-forget until the bank's write queue fills, at
  which point the core stalls for the forced drain (section 6.2's
  "servicing the writes quickly can reduce the memory contention for
  reads").

Write durations are drawn from the *measured* write-slot distribution of the
scheme under test (the coupling between Figures 10, 15 and 16).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.perf.timing import MemorySystem
from repro.workloads.profiles import WorkloadProfile


@dataclass(frozen=True)
class CoreConfig:
    """One core's slice of the baseline system (Table 1).

    Attributes
    ----------
    cpi_base:
        Cycles per instruction with a perfect memory system (4-wide core).
    freq_ghz:
        Core frequency.
    banks_per_core:
        PCM banks in this core's slice (32 banks / 8 cores).
    write_queue_depth:
        Controller write queue entries per bank.
    hide_ns:
        Read latency the out-of-order window can overlap with execution.
    """

    cpi_base: float = 0.30
    freq_ghz: float = 4.0
    banks_per_core: int = 4
    write_queue_depth: int = 8
    hide_ns: float = 30.0
    write_pausing: bool = False
    max_concurrent_write_slots: int | None = None


@dataclass
class ExecutionResult:
    """Outcome of executing a fixed instruction budget."""

    workload: str
    scheme: str
    instructions: int
    exec_time_ns: float
    avg_read_latency_ns: float
    avg_slots_per_write: float
    reads: int
    writes: int

    @property
    def ipc(self) -> float:
        if self.exec_time_ns <= 0:
            return 0.0
        return self.instructions / self.exec_time_ns  # per ns; relative use only

    def speedup_over(self, baseline: "ExecutionResult") -> float:
        """Execution-time ratio (Figure 16's metric)."""
        if self.exec_time_ns <= 0:
            return float("inf")
        return baseline.exec_time_ns / self.exec_time_ns


def simulate_execution(
    profile: WorkloadProfile,
    slot_histogram: Counter,
    instructions: int = 2_000_000,
    core: CoreConfig | None = None,
    seed: int = 0,
    scheme: str = "",
) -> ExecutionResult:
    """Execute ``instructions`` of a workload against a memory scheme.

    Parameters
    ----------
    profile:
        Workload (provides MPKI / WBPKI request rates).
    slot_histogram:
        Write-slot distribution measured for the scheme (from
        :class:`~repro.sim.results.RunResult.slot_histogram`); write
        durations are drawn from it.
    instructions:
        Instruction budget for this core.
    core:
        Core/memory-slice parameters.
    seed:
        RNG seed for request interleaving (same seed -> same arrival
        pattern across schemes, so execution-time differences come only
        from write durations).
    """
    core = core or CoreConfig()
    if not slot_histogram:
        raise ValueError("slot_histogram is empty")
    rng = random.Random(f"{profile.name}:{seed}:perf")
    memory = MemorySystem(
        n_banks=core.banks_per_core,
        write_queue_depth=core.write_queue_depth,
        write_pausing=core.write_pausing,
        max_concurrent_write_slots=core.max_concurrent_write_slots,
    )

    # Pre-expand the slot distribution for cheap sampling.
    slot_values: list[int] = []
    slot_weights: list[int] = []
    for slots, count in sorted(slot_histogram.items()):
        slot_values.append(max(1, slots))
        slot_weights.append(count)

    ns_per_instr = core.cpi_base / core.freq_ghz
    rate_per_instr = (profile.read_mpki + profile.wbpki) / 1000.0
    p_read = profile.read_mpki / (profile.read_mpki + profile.wbpki)

    now = 0.0
    instructions_done = 0
    reads = writes = 0
    total_read_latency = 0.0
    while instructions_done < instructions:
        # Instructions until the next memory event (geometric approx of the
        # per-instruction miss process).
        gap = min(
            instructions - instructions_done,
            max(1, int(rng.expovariate(rate_per_instr))),
        )
        instructions_done += gap
        now += gap * ns_per_instr
        if instructions_done >= instructions:
            break
        address = rng.randrange(profile.working_set_lines)
        if rng.random() < p_read:
            latency = memory.read(now, address)
            total_read_latency += latency
            now += max(0.0, latency - core.hide_ns)
            reads += 1
        else:
            slots = rng.choices(slot_values, weights=slot_weights)[0]
            stall = memory.write(now, address, slots)
            now += stall
            writes += 1

    stats = memory.stats()
    return ExecutionResult(
        workload=profile.name,
        scheme=scheme,
        instructions=instructions,
        exec_time_ns=now,
        avg_read_latency_ns=(total_read_latency / reads) if reads else 0.0,
        avg_slots_per_write=stats.avg_slots_per_write,
        reads=reads,
        writes=writes,
    )
