"""Analytic M/G/1 cross-check for the bank timing model.

The event-driven bank model (:mod:`repro.perf.timing`) is the ground truth
for Figures 15-17, but an analytic model makes its behaviour auditable: a
PCM bank under Poisson read/write traffic with read priority is an M/G/1
queue with two non-preemptive priority classes, whose mean read waiting
time has the classical closed form

    W_read = R / (1 - rho_read),   R = sum_i lambda_i * E[S_i^2] / 2

(reads are the high-priority class; the residual term R includes the
write class because a read can arrive while a long write occupies the
bank).  Tests verify the event simulation agrees with this form in its
domain of validity (open-loop, moderate load) — the kind of cross-model
validation a simulator needs before its absolute numbers are trusted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.memory.pcm import READ_LATENCY_NS, SLOT_LATENCY_NS


@dataclass
class QueueingEstimate:
    """Analytic latency estimate for one bank."""

    read_utilization: float
    write_utilization: float
    residual_ns: float
    read_wait_ns: float
    read_latency_ns: float

    @property
    def total_utilization(self) -> float:
        return self.read_utilization + self.write_utilization

    @property
    def stable(self) -> bool:
        """Is the queue stable (all work eventually served)?"""
        return self.total_utilization < 1.0


def write_service_moments(
    slot_histogram: Counter, slot_latency_ns: float = SLOT_LATENCY_NS
) -> tuple[float, float]:
    """(E[S], E[S^2]) of the write service time from a slot histogram."""
    total = sum(slot_histogram.values())
    if total == 0:
        raise ValueError("slot_histogram is empty")
    mean = 0.0
    second = 0.0
    for slots, count in slot_histogram.items():
        service = max(1, slots) * slot_latency_ns
        weight = count / total
        mean += weight * service
        second += weight * service * service
    return mean, second


def analytic_read_latency(
    read_rate_per_ns: float,
    write_rate_per_ns: float,
    slot_histogram: Counter,
    read_latency_ns: float = READ_LATENCY_NS,
    slot_latency_ns: float = SLOT_LATENCY_NS,
) -> QueueingEstimate:
    """Mean read latency of one bank under priority M/G/1 assumptions.

    Parameters
    ----------
    read_rate_per_ns / write_rate_per_ns:
        Per-bank Poisson arrival rates.
    slot_histogram:
        Write-slot distribution (defines the write service time).
    """
    if read_rate_per_ns < 0 or write_rate_per_ns < 0:
        raise ValueError("arrival rates must be non-negative")
    s_w_mean, s_w_2 = write_service_moments(slot_histogram, slot_latency_ns)
    s_r_2 = read_latency_ns * read_latency_ns

    rho_r = read_rate_per_ns * read_latency_ns
    rho_w = write_rate_per_ns * s_w_mean
    residual = (
        read_rate_per_ns * s_r_2 + write_rate_per_ns * s_w_2
    ) / 2.0
    if rho_r >= 1.0:
        wait = float("inf")
    else:
        wait = residual / (1.0 - rho_r)
    return QueueingEstimate(
        read_utilization=rho_r,
        write_utilization=rho_w,
        residual_ns=residual,
        read_wait_ns=wait,
        read_latency_ns=wait + read_latency_ns,
    )


def per_bank_rates(
    read_mpki: float,
    wbpki: float,
    n_banks: int,
    cpi: float,
    freq_ghz: float,
) -> tuple[float, float]:
    """Per-bank arrival rates (per ns) for a core at a given CPI."""
    if n_banks < 1:
        raise ValueError("n_banks must be >= 1")
    instr_per_ns = freq_ghz / cpi
    reads = instr_per_ns * read_mpki / 1000.0 / n_banks
    writes = instr_per_ns * wbpki / 1000.0 / n_banks
    return reads, writes
