"""PCM energy, power, and EDP model (Figure 17).

PCM write energy is per *programmed cell*, so memory energy tracks the bit
flips each scheme produces; reads and background controller power add a
scheme-independent component.  The model is deliberately linear:

    E = flips_total * e_write_bit + reads * e_read_line + P_static * T

Power is ``E / T`` and EDP is ``E * T``, with ``T`` taken from the system
performance model — so a scheme that both flips less and finishes sooner
(DEUCE) wins on energy by the flip ratio but on power by less (shorter T),
exactly the asymmetry the paper reports (-43% energy vs -28% power).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Energy to program one PCM cell (SET/RESET average), joules.
E_WRITE_BIT_J = 25e-12
#: Energy of one line read (array + peripheral), joules.
E_READ_LINE_J = 0.3e-9
#: Background (controller + idle array) power, watts, per core slice.
#: Kept small: the paper's Figure 17 measures PCM memory energy, which is
#: dominated by cell programs ("taking into account the power consumed for
#: each bit written") — write energy is ~84% of the encrypted baseline.
P_STATIC_W = 0.002


@dataclass(frozen=True)
class EnergyConfig:
    """Tunable energy parameters.

    ``e_set_bit_j`` / ``e_reset_bit_j`` enable the asymmetric-program model
    [2] (SET is long/low-current, RESET short/high-current); when either is
    ``None`` the symmetric ``e_write_bit_j`` is charged per flip.
    """

    e_write_bit_j: float = E_WRITE_BIT_J
    e_read_line_j: float = E_READ_LINE_J
    p_static_w: float = P_STATIC_W
    e_set_bit_j: float | None = None
    e_reset_bit_j: float | None = None

    @property
    def asymmetric(self) -> bool:
        return self.e_set_bit_j is not None and self.e_reset_bit_j is not None


@dataclass
class EnergyReport:
    """Energy/power/EDP of one run.

    All absolute values are per the simulated window; only ratios against a
    baseline configuration are meaningful (the paper normalizes to the
    encrypted memory system).
    """

    workload: str
    scheme: str
    energy_j: float
    write_energy_j: float
    read_energy_j: float
    static_energy_j: float
    exec_time_s: float

    @property
    def power_w(self) -> float:
        return self.energy_j / self.exec_time_s if self.exec_time_s > 0 else 0.0

    @property
    def edp(self) -> float:
        return self.energy_j * self.exec_time_s

    def relative_to(self, baseline: "EnergyReport") -> dict[str, float]:
        """Energy/power/EDP ratios vs a baseline (Figure 17's bars)."""
        return {
            "energy": self.energy_j / baseline.energy_j,
            "power": self.power_w / baseline.power_w,
            "edp": self.edp / baseline.edp,
            "speedup": baseline.exec_time_s / self.exec_time_s,
        }


def energy_report(
    workload: str,
    scheme: str,
    total_flips: int,
    n_reads: int,
    exec_time_ns: float,
    config: EnergyConfig | None = None,
    set_flips: int | None = None,
    reset_flips: int | None = None,
) -> EnergyReport:
    """Build an :class:`EnergyReport` from run measurements.

    Parameters
    ----------
    total_flips:
        Cell programs over the window (from the flip simulation, scaled to
        the same request count as the timing run).
    n_reads:
        Line reads over the window.
    exec_time_ns:
        Execution time from :func:`repro.perf.system.simulate_execution`.
    set_flips / reset_flips:
        Directional program counts; used instead of ``total_flips`` when
        the config's asymmetric energies are set.
    """
    config = config or EnergyConfig()
    if exec_time_ns <= 0:
        raise ValueError("exec_time_ns must be positive")
    exec_time_s = exec_time_ns * 1e-9
    if config.asymmetric and set_flips is not None and reset_flips is not None:
        write_energy = (
            set_flips * config.e_set_bit_j
            + reset_flips * config.e_reset_bit_j
        )
    else:
        write_energy = total_flips * config.e_write_bit_j
    read_energy = n_reads * config.e_read_line_j
    static_energy = config.p_static_w * exec_time_s
    return EnergyReport(
        workload=workload,
        scheme=scheme,
        energy_j=write_energy + read_energy + static_energy,
        write_energy_j=write_energy,
        read_energy_j=read_energy,
        static_energy_j=static_energy,
        exec_time_s=exec_time_s,
    )
