"""PCM bank timing: an event-driven model of the read/write path.

The paper's performance results (Figures 15-17) all flow from one mechanism:
writes occupy a bank for ``slots x 150 ns`` (section 6.1), and while a bank
drains a write, reads queue behind it.  Fewer bit flips -> fewer slots ->
shorter writes -> less read queueing -> higher performance.

:class:`BankModel` is a per-bank accounting model with the controller
policies that matter:

* reads have priority over *queued* writes, but cannot preempt a write that
  already started;
* writes sit in a finite write queue and drain when the bank is idle;
* when the write queue fills, the oldest write is forced out ahead of
  everything — this is the write-induced stall that makes encrypted memory
  slow.

The model processes requests in arrival order, which is exact for a FIFO
bank with idle-drain and gives deterministic, testable behaviour.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.memory.pcm import READ_LATENCY_NS, SLOT_LATENCY_NS


@dataclass
class BankStats:
    """Counters accumulated by one :class:`BankModel`."""

    reads: int = 0
    writes: int = 0
    total_read_latency_ns: float = 0.0
    total_write_slots: int = 0
    busy_ns: float = 0.0
    forced_write_drains: int = 0
    paused_writes: int = 0

    @property
    def avg_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0


class BankModel:
    """One PCM bank: FIFO service, read priority, finite write queue.

    Parameters
    ----------
    read_latency_ns:
        Array read time (75 ns in Table 1).
    slot_latency_ns:
        One write slot (150 ns per 128-bit slot [19]).
    write_queue_depth:
        Pending writes the controller buffers per bank before it must
        stall the core to drain one.
    write_pausing:
        Enable write pausing [6]: a read arriving while a write is in
        flight waits only until the current *slot* boundary instead of the
        whole write; the write's remaining slots resume afterwards.
    """

    def __init__(
        self,
        read_latency_ns: float = READ_LATENCY_NS,
        slot_latency_ns: float = SLOT_LATENCY_NS,
        write_queue_depth: int = 8,
        write_pausing: bool = False,
    ) -> None:
        if write_queue_depth < 1:
            raise ValueError("write_queue_depth must be >= 1")
        self.read_latency_ns = read_latency_ns
        self.slot_latency_ns = slot_latency_ns
        self.write_queue_depth = write_queue_depth
        self.write_pausing = write_pausing
        self.free_at = 0.0
        # In-flight write window (for pausing): set while the bank's
        # current occupation is a write.
        self._write_started_at: float | None = None
        self._write_queue: deque[tuple[float, float]] = deque()  # (arrival, dur)
        self.stats = BankStats()

    # -- internals ---------------------------------------------------------

    def _drain_idle_writes(self, now: float) -> None:
        """Service queued writes for as long as the bank is idle before now."""
        while self._write_queue and self.free_at < now:
            arrival, duration = self._write_queue[0]
            start = max(self.free_at, arrival)
            if start >= now:
                break
            self._write_queue.popleft()
            self.free_at = start + duration
            self._write_started_at = start
            self.stats.busy_ns += duration

    def _force_drain_one(self, now: float) -> float:
        """Drain the oldest write immediately; returns its completion time."""
        arrival, duration = self._write_queue.popleft()
        start = max(self.free_at, arrival, now)
        self.free_at = start + duration
        self._write_started_at = start
        self.stats.busy_ns += duration
        self.stats.forced_write_drains += 1
        return self.free_at

    def _pause_write_for_read(self, now: float) -> float:
        """Write pausing: the read starts at the next slot boundary.

        Returns the read's start time.  The paused write's remaining slots
        are pushed back by the read's duration.
        """
        started = self._write_started_at
        if started is None or now >= self.free_at or now < started:
            return max(now, self.free_at)
        # Next slot boundary at or after `now`.
        elapsed_slots = int((now - started) // self.slot_latency_ns) + 1
        boundary = min(
            started + elapsed_slots * self.slot_latency_ns, self.free_at
        )
        self.free_at += self.read_latency_ns  # write resumes after the read
        self.stats.paused_writes += 1
        return boundary

    # -- request API ---------------------------------------------------------

    def read(self, now: float) -> float:
        """Issue a read at ``now``; returns its latency in ns.

        The read waits for the in-flight operation but bypasses queued
        writes (read priority).  With write pausing enabled, an in-flight
        write yields at its next slot boundary instead.
        """
        self._drain_idle_writes(now)
        in_write = (
            self._write_started_at is not None
            and self._write_started_at <= now < self.free_at
        )
        if self.write_pausing and in_write:
            start = self._pause_write_for_read(now)
            done = start + self.read_latency_ns
        else:
            start = max(now, self.free_at)
            done = start + self.read_latency_ns
            self.free_at = done
            self._write_started_at = None
        self.stats.busy_ns += self.read_latency_ns
        latency = done - now
        self.stats.reads += 1
        self.stats.total_read_latency_ns += latency
        return latency

    def write(self, now: float, slots: int) -> float:
        """Issue a write of ``slots`` write-slots at ``now``.

        Returns the stall imposed on the issuing core: zero while the write
        queue has room, otherwise the time until the forced drain of the
        oldest write frees a slot.
        """
        self._drain_idle_writes(now)
        duration = max(1, slots) * self.slot_latency_ns
        self.stats.writes += 1
        self.stats.total_write_slots += max(1, slots)
        self._write_queue.append((now, duration))
        if len(self._write_queue) <= self.write_queue_depth:
            return 0.0
        done = self._force_drain_one(now)
        return max(0.0, done - now)

    @property
    def queued_writes(self) -> int:
        return len(self._write_queue)


@dataclass
class MemorySystemStats:
    """Aggregate over all banks of a memory system."""

    reads: int = 0
    writes: int = 0
    total_read_latency_ns: float = 0.0
    total_write_slots: int = 0
    total_core_stall_ns: float = 0.0
    per_bank: list[BankStats] = field(default_factory=list)

    @property
    def avg_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0

    @property
    def avg_slots_per_write(self) -> float:
        return self.total_write_slots / self.writes if self.writes else 0.0


class MemorySystem:
    """A set of banks with hash-spread request routing.

    Parameters
    ----------
    n_banks / read_latency_ns / slot_latency_ns / write_queue_depth /
    write_pausing:
        Forwarded to each :class:`BankModel`.
    max_concurrent_write_slots:
        Power-token budget [22]: a rank-wide cap on write slots in flight
        (current capacity limits how many 128-bit slot programs can run at
        once).  ``None`` disables the constraint.  The check is applied at
        issue time: a write that would exceed the budget is delayed until
        an in-flight write completes.
    """

    def __init__(
        self,
        n_banks: int = 4,
        read_latency_ns: float = READ_LATENCY_NS,
        slot_latency_ns: float = SLOT_LATENCY_NS,
        write_queue_depth: int = 8,
        write_pausing: bool = False,
        max_concurrent_write_slots: int | None = None,
    ) -> None:
        if n_banks < 1:
            raise ValueError("n_banks must be >= 1")
        if max_concurrent_write_slots is not None and max_concurrent_write_slots < 1:
            raise ValueError("max_concurrent_write_slots must be >= 1")
        self.banks = [
            BankModel(
                read_latency_ns,
                slot_latency_ns,
                write_queue_depth,
                write_pausing=write_pausing,
            )
            for _ in range(n_banks)
        ]
        self.slot_latency_ns = slot_latency_ns
        self.max_concurrent_write_slots = max_concurrent_write_slots
        self._active_writes: list[tuple[float, int]] = []  # (end, slots)
        self.power_delays = 0

    def bank_for(self, address: int) -> BankModel:
        return self.banks[address % len(self.banks)]

    def read(self, now: float, address: int) -> float:
        return self.bank_for(address).read(now)

    def _power_token_delay(self, now: float, slots: int) -> float:
        """Delay (ns) before this write may start under the token budget."""
        budget = self.max_concurrent_write_slots
        if budget is None:
            return 0.0
        self._active_writes = [
            (end, s) for end, s in self._active_writes if end > now
        ]
        start = now
        active = sorted(self._active_writes)
        in_flight = sum(s for _, s in active)
        while in_flight + min(slots, budget) > budget and active:
            end, s = active.pop(0)
            in_flight -= s
            start = end
        if start > now:
            self.power_delays += 1
        return start - now

    def write(self, now: float, address: int, slots: int) -> float:
        # The power delay postpones when the write can occupy the bank; it
        # does not stall the issuing core (the write sits in the queue).
        delay = self._power_token_delay(now, max(1, slots))
        arrival = now + delay
        stall = self.bank_for(address).write(arrival, slots)
        if self.max_concurrent_write_slots is not None:
            end = arrival + max(1, slots) * self.slot_latency_ns
            self._active_writes.append((end, max(1, slots)))
        return stall

    def stats(self) -> MemorySystemStats:
        agg = MemorySystemStats()
        for bank in self.banks:
            s = bank.stats
            agg.reads += s.reads
            agg.writes += s.writes
            agg.total_read_latency_ns += s.total_read_latency_ns
            agg.total_write_slots += s.total_write_slots
            agg.per_bank.append(s)
        return agg
