"""Command-line interface: ``deuce-sim``.

Subcommands
-----------
``run``
    Stream a workload trace through one scheme and print the summary
    (persisting a run manifest into the ledger unless ``--no-ledger``).
    ``--checkpoint-every N`` makes the run durably resumable; ``--resume
    RUN_ID`` continues a killed run bit-identically.
``sweep``
    Fan a (workloads x schemes) grid over worker processes with per-cell
    retries and crash recovery; ``--sweep-id``/``--resume`` checkpoint
    completed cells so an interrupted sweep re-runs only the missing ones.
``experiment``
    Reproduce one of the paper's figures/tables (or ``all``).
``serve``
    Start the HTTP simulation job service (submit runs/sweeps/experiments
    as JSON jobs, stream progress, query the ledger).
``loadtest``
    Soak the job service with concurrent clients and report latency
    percentiles, error rates, and SLO pass/fail (spawns a private
    service unless ``--url`` points at a running one).
``trace``
    Export a correlated trace (sweep/run/service job) as Chrome
    trace-event JSON (``export``) or print its critical path, top spans,
    and straggler lanes (``report``).
``runs``
    Query the run ledger: ``list``, ``show``, ``diff``, ``gc``.
``gate``
    Compare the newest ledger runs against the pinned baselines; exits
    nonzero on regression.
``dashboard``
    Write a self-contained HTML dashboard of the ledger's history.
``report``
    Run every experiment and write a Markdown reproduction report.
``list``
    Show available workloads, schemes, and experiments.

Examples
--------
::

    deuce-sim run --workload mcf --scheme deuce --writes 10000
    deuce-sim run --workload mcf --scheme deuce --checkpoint-every 5000
    deuce-sim run --resume 20260501T120000-ab12cd
    deuce-sim sweep --workloads mcf libq --schemes deuce encr-fnw \\
        --sweep-id nightly --workers 4
    deuce-sim experiment fig10
    deuce-sim serve --port 8787 --job-workers 2
    deuce-sim loadtest --duration 30 --clients 8 --p99-slo 500
    deuce-sim trace export my-trace-dir --out trace.json
    deuce-sim runs list --scheme deuce
    deuce-sim gate && echo "no regressions"
    deuce-sim dashboard --output dashboard.html
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import render_table
from repro.sim.config import SimConfig
from repro.sim.experiments import EXPERIMENTS


def _make_session(args: argparse.Namespace):
    """The :class:`repro.api.Session` selected by CLI flags.

    This is the single config-resolution path: the same Session the job
    service and library callers use, so CLI runs and service runs record
    identical manifests and aggregates.
    """
    from repro.api import Session

    return Session(
        ledger=getattr(args, "ledger", True),
        runs_dir=getattr(args, "runs_dir", None),
        label=getattr(args, "label", "") or "",
    )


def _parse_workload_params(raw: str | None) -> dict:
    """``--workload-params`` JSON -> dict, or exit-2-worthy ConfigError."""
    import json

    from repro.sim.config import ConfigError

    if not raw:
        return {}
    try:
        params = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"--workload-params is not valid JSON: {exc}"
        ) from None
    if not isinstance(params, dict):
        raise ConfigError(
            "--workload-params must be a JSON object, "
            f"got {type(params).__name__}"
        )
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.export import summary_row
    from repro.api import CheckpointError, ObsOptions
    from repro.sim.config import ConfigError

    config = None
    if args.resume is None:
        if not args.workload:
            print(
                "error: --workload is required unless --resume is given",
                file=sys.stderr,
            )
            return 2
        # Decode through SimConfig.from_dict — the exact validation path
        # Session and the /v1 envelope use — so a typo'd workload or a bad
        # workload_params field fails here with the same field-path
        # message an API client would see.
        try:
            config = SimConfig.from_dict(
                {
                    "workload": args.workload,
                    "scheme": args.scheme,
                    "n_writes": args.writes,
                    "seed": args.seed,
                    "word_bytes": args.word_bytes,
                    "epoch_interval": args.epoch_interval,
                    "wear_leveling": args.wear_leveling,
                    "pad_kind": args.pad_kind,
                    "pad_cache_lines": args.pad_cache_lines,
                    "chunk_size": args.chunk_size,
                    "workload_params": _parse_workload_params(
                        args.workload_params
                    ),
                }
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    session = _make_session(args)
    try:
        result = session.run(
            config,
            checkpoint_every=args.checkpoint_every,
            resume_from=args.resume,
            obs=ObsOptions(
                metrics_out=args.metrics_out,
                trace_out=args.trace_out,
                sample_interval=args.sample_interval,
                series_out=args.series_out,
            ),
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if result.series is not None:
        print(
            f"sampled {len(result.series)} intervals "
            f"(every {result.series.interval} writes)"
        )
        if args.series_out:
            print(f"time-series written to {args.series_out}")
    row = summary_row(result, result.manifest)
    print(render_table(list(row), [row]))
    if result.lifetime is not None:
        print(f"lifetime vs encrypted baseline: {result.lifetime.normalized:.2f}x")
    if result.manifest is not None:
        print(f"run {result.manifest.run_id} recorded in {session.ledger.root}")
        if args.checkpoint_every > 0:
            print(
                f"checkpointed every {args.checkpoint_every} writes "
                f"(resume with: deuce-sim run --resume {result.manifest.run_id})"
            )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.api import CheckpointError, SweepCellFailed
    from repro.sim.config import ConfigError

    session = _make_session(args)
    try:
        params = _parse_workload_params(args.workload_params)
        configs = [
            SimConfig.from_dict(
                {
                    "workload": workload,
                    "scheme": scheme,
                    "n_writes": args.writes,
                    "seed": args.seed,
                    "chunk_size": args.chunk_size,
                    "workload_params": params,
                }
            )
            for workload in args.workloads
            for scheme in args.schemes
        ]
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sweep_id = args.resume or args.sweep_id
    executor = None
    if getattr(args, "workers_url", None):
        from repro.service.coordinator import FleetExecutor

        executor = FleetExecutor(
            args.workers_url,
            window=args.fleet_window,
            probe_interval_s=args.fleet_probe_interval,
        )
    renderer = _progress_renderer(args, sweep_id or "sweep")
    try:
        results = session.sweep(
            configs,
            workers=args.workers,
            retries=args.retries,
            sweep_id=sweep_id,
            progress=renderer,
            trace_dir=args.trace_dir,
            executor=executor,
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepCellFailed as exc:
        print(f"error: {exc}", file=sys.stderr)
        if sweep_id:
            print(
                f"completed cells are checkpointed; re-run with "
                f"--resume {sweep_id} to pick up where it stopped",
                file=sys.stderr,
            )
        return 1
    finally:
        if renderer is not None:
            renderer.close()
    rows = [r.summary_row() for r in results]
    print(render_table(list(rows[0]), rows))
    if executor is not None:
        for stats in executor.fleet_stats():
            print(
                f"fleet: {stats['name']} completed {stats['completed']} "
                f"cell(s) ({'healthy' if stats['healthy'] else 'dead'})"
            )
        if executor.steals or executor.requeues:
            print(
                f"fleet: {executor.steals} steal(s), "
                f"{executor.requeues} requeue(s), "
                f"{executor.duplicates} duplicate completion(s)"
            )
    if args.out:
        payload = {
            "sweep_id": sweep_id or "",
            "results": [r.to_dict() for r in results],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.out}")
    if sweep_id and session.ledger is not None:
        print(
            f"sweep {sweep_id} checkpointed in "
            f"{session.ledger.root / 'sweeps' / sweep_id}"
        )
    if args.trace_dir:
        print(
            f"trace lanes written to {args.trace_dir} "
            f"(export with: deuce-sim trace export {args.trace_dir})"
        )
    return 0


def _progress_renderer(args: argparse.Namespace, label: str):
    """A live renderer when progress is requested (or stderr is a TTY)."""
    enabled = args.progress
    if enabled is None:
        enabled = sys.stderr.isatty()
    if not enabled:
        return None
    from repro.obs import ProgressRenderer

    return ProgressRenderer(label=label)


def _cmd_experiment(args: argparse.Namespace) -> int:
    session = _make_session(args)
    for name in (list(EXPERIMENTS) if args.name == "all" else [args.name]):
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        renderer = _progress_renderer(args, name)
        try:
            result = session.experiment(
                name,
                n_writes=args.writes,
                workers=args.workers,
                progress=renderer,
            )
        finally:
            if renderer is not None:
                renderer.close()
        print(result.render())
        if result.manifest is not None:
            print(f"experiment {name} recorded as {result.manifest.run_id}")
        print()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    return serve(
        args.host,
        args.port,
        session=_make_session(args),
        job_workers=args.job_workers,
        queue_size=args.queue_size,
        job_timeout_s=args.job_timeout,
        max_sweep_workers=args.max_sweep_workers,
        drain_timeout_s=args.drain_timeout,
    )


def _cmd_coordinate(args: argparse.Namespace) -> int:
    from repro.service.coordinator import serve_coordinator

    return serve_coordinator(
        args.host,
        args.port,
        session=_make_session(args),
        worker_urls=args.workers_url,
        window=args.fleet_window,
        probe_interval_s=args.fleet_probe_interval,
        request_timeout_s=args.request_timeout,
    )


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import contextlib
    import json
    from pathlib import Path

    from repro.service.loadtest import (
        LoadTestOptions,
        parse_mix,
        run_loadtest,
        spawned_service,
    )

    try:
        mix = parse_mix(args.mix) if args.mix else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    options = LoadTestOptions(
        duration_s=args.duration,
        clients=args.clients,
        writes=args.writes,
        workload=args.workload,
        scheme=args.scheme,
        seed=args.seed,
        p99_slo_ms=args.p99_slo,
        max_error_rate=args.max_error_rate,
        label=getattr(args, "label", "") or "",
    )
    if mix is not None:
        options.mix = mix
    session = _make_session(args)
    with contextlib.ExitStack() as stack:
        base = args.url or stack.enter_context(
            spawned_service(
                session,
                job_workers=args.job_workers,
                queue_size=args.queue_size,
                max_sweep_workers=args.max_sweep_workers,
            )
        )
        report = run_loadtest(base, options, ledger=session.ledger)
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    totals = report["totals"]
    latency = report["latency_ms"]
    slo = report["slo"]
    print(
        f"loadtest: {totals['requests']} requests in "
        f"{report['duration_s']}s ({totals['rps']} rps) | "
        f"p50 {latency['p50']}ms p95 {latency['p95']}ms "
        f"p99 {latency['p99']}ms | errors {totals['errors']} "
        f"({totals['error_rate']:.2%}), 429s {totals['backpressure_429']}"
    )
    if not slo["passed"]:
        parts = []
        if options.p99_slo_ms > 0 and slo["p99_ms"] > options.p99_slo_ms:
            parts.append(
                f"p99 {slo['p99_ms']}ms > {options.p99_slo_ms}ms"
            )
        if 0 <= options.max_error_rate < slo["error_rate"]:
            parts.append(
                f"error rate {slo['error_rate']:.2%} > "
                f"{options.max_error_rate:.2%}"
            )
        print("loadtest: SLO FAILED: " + "; ".join(parts), file=sys.stderr)
        return 1
    if options.p99_slo_ms > 0 or options.max_error_rate >= 0:
        print("loadtest: SLO passed")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.ledger import LedgerError, RunLedger

    ledger = RunLedger(args.runs_dir)
    try:
        if args.runs_command == "list":
            manifests = ledger.list(
                kind=args.kind,
                scheme=args.scheme,
                workload=args.workload,
                limit=args.limit or None,
            )
            if not manifests:
                print("no runs recorded")
                return 0
            rows = [
                {
                    "run_id": m.run_id,
                    "kind": m.kind,
                    "label": m.label,
                    "workload": m.workload,
                    "scheme": m.scheme,
                    "writes": m.n_writes,
                    "wall_s": round(m.wall_time_s, 3),
                    "git_rev": m.git_rev,
                }
                for m in manifests
            ]
            print(render_table(list(rows[0]), rows))
        elif args.runs_command == "show":
            import json

            manifest = ledger.get(args.run_id)
            print(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
        elif args.runs_command == "diff":
            deltas = ledger.diff(args.run_a, args.run_b)
            if not deltas:
                print("no shared numeric metrics")
                return 0
            rows = [
                {
                    "metric": metric,
                    "a": sides["a"],
                    "b": sides["b"],
                    "delta": (
                        round(sides["delta"], 6)
                        if isinstance(sides["delta"], (int, float))
                        else "(differs)"
                    ),
                }
                for metric, sides in deltas.items()
            ]
            print(render_table(list(rows[0]), rows,
                               title=f"{args.run_a} vs {args.run_b}:"))
        elif args.runs_command == "gc":
            removed = ledger.gc(keep=args.keep)
            print(f"removed {len(removed)} runs, kept {len(ledger)}")
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _resolve_trace_path(args: argparse.Namespace):
    """Resolve the ``trace`` argument to a lane file or directory.

    Accepts a path to a ``.jsonl`` lane, a directory of lanes, or a job id
    — the latter resolved against ``<runs-dir>/traces/<id>`` (the place
    the job service writes its lanes).
    """
    from pathlib import Path

    from repro.obs.ledger import default_runs_dir

    candidate = Path(args.trace)
    if candidate.exists():
        return candidate
    runs_dir = Path(args.runs_dir) if args.runs_dir else default_runs_dir()
    by_job = runs_dir / "traces" / args.trace
    if by_job.exists():
        return by_job
    print(
        f"error: no trace at {candidate} and no job trace at {by_job}",
        file=sys.stderr,
    )
    return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.traceexport import (
        build_report,
        export_chrome_trace,
        load_trace,
    )

    path = _resolve_trace_path(args)
    if path is None:
        return 2
    try:
        if args.trace_command == "export":
            out = args.out or "trace.json"
            export_chrome_trace(path, out)
            lanes = load_trace(path)
            spans = sum(
                1 for lane in lanes
                for r in lane.records if r.get("type") == "span"
            )
            print(
                f"chrome trace written to {out} "
                f"({len(lanes)} lanes, {spans} spans; open in "
                f"https://ui.perfetto.dev or chrome://tracing)"
            )
        else:
            print(build_report(load_trace(path), top=args.top))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from repro.obs.gate import GateError, evaluate_gate, pin_baselines
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(args.runs_dir)
    try:
        if args.pin:
            path = pin_baselines(ledger, args.baselines)
            print(f"baselines re-pinned to latest ledger runs: {path}")
            return 0
        report = evaluate_gate(
            ledger,
            baselines_dir=args.baselines,
            tolerance_scale=args.tolerance_scale,
            run_ids=args.run_id or None,
        )
    except GateError as exc:
        print(f"gate error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.passed else 1


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.analysis.dashboard import write_dashboard
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(args.runs_dir)
    path = write_dashboard(
        args.output, ledger,
        baselines_dir=args.baselines, limit=args.limit or None,
    )
    print(f"dashboard written to {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all

    paths = export_all(args.output, n_writes=args.writes, progress=print)
    print(f"{len(paths)} CSV files written to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.workloads.stats import analyze_trace, recommend_scheme
    from repro.workloads.trace import Trace, generate_trace

    if args.trace_file:
        trace = Trace.load(args.trace_file)
        source = args.trace_file
    else:
        trace = generate_trace(args.workload, args.writes, seed=args.seed)
        source = f"generated {args.workload} trace"
    stats = analyze_trace(trace)
    print(render_table(list(stats.summary()), [stats.summary()],
                       title=f"write behaviour of {source}:"))
    scheme, why = recommend_scheme(stats)
    print(f"recommended scheme: {scheme}")
    print(f"rationale: {why}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(
        args.output, n_writes=args.writes, progress=print
    )
    print(f"report written to {path}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    from repro import registry

    print("workloads: " + ", ".join(registry.WORKLOADS.names))
    print("schemes:   " + ", ".join(registry.SCHEMES.names))
    print("experiments: " + ", ".join(EXPERIMENTS) + ", all")
    return 0


def _cmd_plugins(args: argparse.Namespace) -> int:
    import json

    from repro import registry

    registries = registry.REGISTRIES
    if args.plugins_verb == "describe" and not args.name:
        print("error: 'plugins describe' needs a plugin name", file=sys.stderr)
        return 2
    if args.name:
        # Search every registry for the named plugin; a name can appear in
        # more than one (unlikely but legal), so print every match.
        matches = {
            kind: reg.describe()[args.name]
            for kind, reg in registries.items()
            if args.name in reg.names
        }
        if not matches:
            all_names = sorted(
                name for reg in registries.values() for name in reg.names
            )
            import difflib

            close = difflib.get_close_matches(args.name, all_names, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            print(f"error: unknown plugin {args.name!r}{hint}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(matches, indent=2, sort_keys=True))
            return 0
        for kind, info in matches.items():
            print(f"{args.name} ({kind.rstrip('s')})")
            if info["description"]:
                print(f"  {info['description']}")
            print("  config schema: " + ", ".join(info["schema"]))
            if info["params"]:
                rows = [
                    {
                        "param": p["name"],
                        "type": p["type"],
                        "default": p["default"],
                        "range": _param_range(p),
                        "doc": p.get("doc", ""),
                    }
                    for p in info["params"]
                ]
                print(render_table(list(rows[0]), rows))
            else:
                print("  parameters: none")
        return 0
    described = {
        kind: reg.describe() for kind, reg in registries.items()
    }
    if args.json:
        print(json.dumps(described, indent=2, sort_keys=True))
        return 0
    for kind, plugins in described.items():
        print(f"{kind}:")
        for name, info in plugins.items():
            n_params = len(info["params"])
            suffix = f" [{n_params} params]" if n_params else ""
            desc = info["description"] or ""
            print(f"  {name:<14}{suffix:<12} {desc}")
    print(
        "\nuse 'deuce-sim plugins describe <name>' for a plugin's "
        "parameter schema"
    )
    return 0


def _param_range(p: dict) -> str:
    lo, hi = p.get("minimum"), p.get("maximum")
    if p.get("choices"):
        return "|".join(str(c) for c in p["choices"])
    if lo is None and hi is None:
        return ""
    return f"[{'' if lo is None else lo}, {'' if hi is None else hi}]"


def _cmd_kv(args: argparse.Namespace) -> int:
    from repro.workloads.suite import (
        CANNED_SUITES,
        RequestSuite,
        build_canned_suite,
        record_suite,
        replay_suite,
    )

    if args.kv_command == "suites":
        for name, spec in CANNED_SUITES.items():
            print(
                f"{name:<12} profile={spec['profile']:<12} "
                f"writes={spec['n_writes']:<6} seed={spec['seed']:<3} "
                f"params={spec['params']}"
            )
        return 0
    if args.kv_command == "record":
        from repro.sim.config import ConfigError

        from repro.registry import RegistryError

        if args.suite:
            suite, trace = build_canned_suite(args.suite)
        else:
            try:
                suite, trace = record_suite(
                    args.profile,
                    args.writes,
                    seed=args.seed,
                    params=_parse_workload_params(args.workload_params),
                )
            except (ConfigError, RegistryError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        suite.save(args.out)
        print(
            f"suite {suite.profile_name} (seed {suite.seed}) recorded to "
            f"{args.out}: {len(suite.requests)} requests -> "
            f"{trace.n_writes} writebacks, phases "
            + ", ".join(f"{n}@{s}" for n, s in trace.phases)
        )
        if args.trace_out:
            trace.save(args.trace_out)
            print(f"writeback trace written to {args.trace_out}")
        return 0
    if args.kv_command == "verify":
        suite = RequestSuite.load(args.suite_file)
        replayed = replay_suite(suite)
        fresh_suite, fresh = record_suite(
            suite.profile_name,
            suite.n_writes,
            seed=suite.seed,
            line_bytes=suite.line_bytes,
            params=suite.params,
        )
        problems = []
        if tuple(fresh_suite.requests) != tuple(suite.requests):
            problems.append("request stream drifted from profile+seed")
        if replayed.phases != fresh.phases:
            problems.append(
                f"phase mismatch: {replayed.phases} != {fresh.phases}"
            )
        n = min(len(replayed.records), len(fresh.records))
        if len(replayed.records) != len(fresh.records):
            problems.append(
                f"length mismatch: {len(replayed.records)} != "
                f"{len(fresh.records)}"
            )
        diverged = next(
            (
                i
                for i in range(n)
                if replayed.records[i] != fresh.records[i]
            ),
            None,
        )
        if diverged is not None:
            problems.append(f"writeback streams diverge at write {diverged}")
        if replayed.initial != fresh.initial:
            problems.append("initial line sets differ")
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        print(
            f"OK: replay of {args.suite_file} is bit-identical to a fresh "
            f"{suite.profile_name} recording ({len(replayed.records)} "
            "writebacks)"
        )
        return 0
    print("error: unknown kv subcommand", file=sys.stderr)
    return 2


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="persist a run manifest into the ledger (default: on; "
        "--no-ledger also skips run-scoped instrumentation)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="ledger directory (default: $DEUCE_RUNS_DIR or .deuce-runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deuce-sim",
        description="DEUCE (ASPLOS'15) secure-NVM write-efficiency simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one (workload, scheme) simulation")
    p_run.add_argument(
        "--workload",
        default=None,
        help="workload registry name: a Table 2 trace or a KV profile "
        "(required unless --resume is given; see 'deuce-sim plugins'); "
        "unknown names fail with a did-you-mean registry error",
    )
    p_run.add_argument(
        "--scheme",
        default="deuce",
        help="scheme registry name (see 'deuce-sim plugins')",
    )
    p_run.add_argument(
        "--workload-params",
        default=None,
        metavar="JSON",
        help="workload parameter overrides as a JSON object, validated "
        "against the plugin's declared schema (e.g. "
        "'{\"zipf_alpha\": 1.2}' for kv-* profiles)",
    )
    p_run.add_argument("--writes", type=int, default=10_000)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--word-bytes", type=int, default=2)
    p_run.add_argument("--epoch-interval", type=int, default=32)
    p_run.add_argument(
        "--wear-leveling",
        choices=("none", "hwl", "hwl-hashed", "sr-hwl"),
        default="none",
    )
    p_run.add_argument("--pad-kind", choices=("blake2", "aes"), default="blake2")
    p_run.add_argument(
        "--pad-cache-lines",
        type=int,
        default=SimConfig("mcf", "deuce").pad_cache_lines,
        help="LRU pad-cache capacity in line pads (0 disables caching)",
    )
    p_run.add_argument(
        "--chunk-size",
        type=int,
        default=SimConfig("mcf", "deuce").chunk_size,
        metavar="N",
        help="writes handed to the scheme's batched write path at once "
        "(1 forces the per-write loop; results are bit-identical at any "
        "value)",
    )
    p_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write end-of-run metrics (counters/timers) as JSONL",
    )
    p_run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream pipeline spans/events (scheme.write, pad.fetch, "
        "pcm.apply, epoch resets, ...) as JSONL",
    )
    p_run.add_argument(
        "--sample-interval",
        type=int,
        default=0,
        metavar="N",
        help="snapshot flip-rate/pad-hit-rate/wear percentiles every N "
        "writes into a time-series (0 = off)",
    )
    p_run.add_argument(
        "--series-out",
        metavar="PATH",
        help="write the sampled time-series as CSV (implies sampling "
        "at ~100 points if --sample-interval is unset)",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="snapshot all mutable simulation state every N writes into "
        "the run's ledger directory (0 = off); a killed run can then be "
        "continued bit-identically with --resume",
    )
    p_run.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="continue a checkpointed run (a ledger run id or a "
        "checkpoint directory); config flags are read from the checkpoint",
    )
    _add_ledger_flags(p_run)
    p_run.add_argument(
        "--label",
        default="",
        help="free-form tag stored in the run's ledger manifest",
    )
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a (workloads x schemes) grid through the fault-tolerant "
        "parallel sweep engine",
    )
    p_sweep.add_argument(
        "--workloads",
        nargs="+",
        required=True,
        help="workload registry names (Table 2 traces and kv-* profiles)",
    )
    p_sweep.add_argument(
        "--schemes",
        nargs="+",
        required=True,
        help="scheme registry names",
    )
    p_sweep.add_argument(
        "--workload-params",
        default=None,
        metavar="JSON",
        help="workload parameter overrides (JSON object) applied to every "
        "workload in the grid; schema-validated per workload",
    )
    p_sweep.add_argument("--writes", type=int, default=10_000)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--chunk-size",
        type=int,
        default=SimConfig("mcf", "deuce").chunk_size,
        metavar="N",
        help="batched write-path chunk size for every cell (1 forces the "
        "per-write loop; results are bit-identical at any value)",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (1 = serial, 0 = auto)",
    )
    p_sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="per-cell retry budget (crashed workers are detected and "
        "their cells requeued with exponential backoff)",
    )
    p_sweep.add_argument(
        "--sweep-id",
        default=None,
        metavar="ID",
        help="checkpoint completed cells under <runs-dir>/sweeps/<ID>/ "
        "as they finish; re-running with the same id (or --resume ID) "
        "runs only the missing cells",
    )
    p_sweep.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume a checkpointed sweep (same as --sweep-id ID on a "
        "sweep that already has completed cells)",
    )
    p_sweep.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full per-cell results as JSON",
    )
    p_sweep.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write correlated trace lanes (sweep.jsonl + one "
        "cell-<i>.jsonl per cell) here; view with 'deuce-sim trace "
        "export DIR'",
    )
    p_sweep.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="live cells-done/in-flight/ETA line on stderr "
        "(default: only when stderr is a terminal)",
    )
    p_sweep.add_argument(
        "--workers-url",
        action="append",
        dest="workers_url",
        default=None,
        metavar="URL",
        help="shard cells across this 'deuce-sim serve' endpoint instead "
        "of local processes (repeatable; e.g. --workers-url "
        "http://a:8787 --workers-url http://b:8787)",
    )
    p_sweep.add_argument(
        "--fleet-window",
        type=int,
        default=2,
        metavar="N",
        help="bounded in-flight cells per fleet worker",
    )
    p_sweep.add_argument(
        "--fleet-probe-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between /v1/healthz probes per fleet worker",
    )
    _add_ledger_flags(p_sweep)
    p_sweep.add_argument(
        "--label",
        default="",
        help="free-form tag stored on recorded sweep-cell manifests",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_exp = sub.add_parser("experiment", help="reproduce a paper figure/table")
    p_exp.add_argument("name", help=f"one of {', '.join(EXPERIMENTS)} or 'all'")
    p_exp.add_argument("--writes", type=int, default=5_000)
    p_exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial, 0 = auto)",
    )
    p_exp.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="live cells-done/in-flight/ETA line on stderr "
        "(default: only when stderr is a terminal)",
    )
    _add_ledger_flags(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_serve = sub.add_parser(
        "serve",
        help="start the HTTP simulation job service "
        "(POST /jobs, GET /jobs/{id}, GET /runs, ...)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="concurrent jobs (worker threads; each sweep job may also "
        "fan cells over processes, see --max-sweep-workers)",
    )
    p_serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="jobs allowed to wait; submissions past this get HTTP 429",
    )
    p_serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job deadline (jobs may set their own timeout_s)",
    )
    p_serve.add_argument(
        "--max-sweep-workers",
        type=int,
        default=4,
        help="cap on any job's requested per-sweep worker processes",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds SIGTERM waits for in-flight jobs before forcing "
        "cooperative cancellation",
    )
    _add_ledger_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_coord = sub.add_parser(
        "coordinate",
        help="start the fleet coordinator: accepts sweep envelopes on "
        "POST /v1/sweeps and shards their cells across 'deuce-sim "
        "serve' workers",
    )
    p_coord.add_argument("--host", default="127.0.0.1")
    p_coord.add_argument("--port", type=int, default=8788)
    p_coord.add_argument(
        "--workers-url",
        action="append",
        dest="workers_url",
        required=True,
        metavar="URL",
        help="a 'deuce-sim serve' worker endpoint (repeat per worker)",
    )
    p_coord.add_argument(
        "--fleet-window",
        type=int,
        default=2,
        metavar="N",
        help="bounded in-flight cells per fleet worker",
    )
    p_coord.add_argument(
        "--fleet-probe-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between /v1/healthz probes per fleet worker",
    )
    p_coord.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-HTTP-request timeout when talking to workers",
    )
    _add_ledger_flags(p_coord)
    p_coord.set_defaults(func=_cmd_coordinate)

    p_load = sub.add_parser(
        "loadtest",
        help="soak the job service with concurrent clients; report "
        "latency percentiles + error rates, optionally gate on SLOs",
    )
    p_load.add_argument(
        "--url",
        default=None,
        help="base URL of a running service; omitted = spawn a private "
        "in-process service for the soak",
    )
    p_load.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="soak length (default: 10)",
    )
    p_load.add_argument(
        "--clients", type=int, default=8,
        help="concurrent client threads (default: 8)",
    )
    p_load.add_argument(
        "--writes", type=int, default=200,
        help="n_writes of each submitted job (default: 200)",
    )
    p_load.add_argument("--workload", default="mcf",
                        help="workload of submitted jobs")
    p_load.add_argument("--scheme", default="deuce",
                        help="scheme of submitted jobs")
    p_load.add_argument(
        "--mix", default=None, metavar="OP=W,...",
        help="operation weights, e.g. run=2,status=6,cancel=0.5 "
        "(ops: run, sweep, status, cancel, healthz)",
    )
    p_load.add_argument("--seed", type=int, default=0,
                        help="base RNG seed for the client mix")
    p_load.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the full report JSON here",
    )
    p_load.add_argument(
        "--p99-slo", dest="p99_slo", type=float, default=0.0,
        metavar="MS",
        help="fail (exit 1) if p99 latency exceeds this many ms",
    )
    p_load.add_argument(
        "--max-error-rate", type=float, default=-1.0, metavar="RATE",
        help="fail (exit 1) if error rate exceeds this fraction "
        "(429 backpressure is not an error)",
    )
    p_load.add_argument(
        "--job-workers", type=int, default=2,
        help="spawned service: concurrent jobs (ignored with --url)",
    )
    p_load.add_argument(
        "--queue-size", type=int, default=16,
        help="spawned service: queue bound (ignored with --url)",
    )
    p_load.add_argument(
        "--max-sweep-workers", type=int, default=2,
        help="spawned service: per-sweep process cap (ignored with --url)",
    )
    p_load.add_argument("--label", default="",
                        help="label for the recorded loadtest manifest")
    _add_ledger_flags(p_load)
    p_load.set_defaults(func=_cmd_loadtest)

    p_runs = sub.add_parser("runs", help="query the run ledger")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    p_runs_list.add_argument("--kind", default=None)
    p_runs_list.add_argument("--scheme", default=None)
    p_runs_list.add_argument("--workload", default=None)
    p_runs_list.add_argument(
        "--limit", type=int, default=20, help="newest N runs (0 = all)"
    )
    p_runs_show = runs_sub.add_parser("show", help="print one run's manifest")
    p_runs_show.add_argument("run_id")
    p_runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs' summary metrics"
    )
    p_runs_diff.add_argument("run_a")
    p_runs_diff.add_argument("run_b")
    p_runs_gc = runs_sub.add_parser(
        "gc", help="prune the ledger to the newest N runs"
    )
    p_runs_gc.add_argument("--keep", type=int, default=100)
    for sp in (p_runs_list, p_runs_show, p_runs_diff, p_runs_gc):
        sp.add_argument(
            "--runs-dir",
            default=None,
            metavar="DIR",
            help="ledger directory (default: $DEUCE_RUNS_DIR or .deuce-runs)",
        )
    p_runs.set_defaults(func=_cmd_runs)

    p_trace = sub.add_parser(
        "trace",
        help="export or summarize a correlated trace (from a traced "
        "sweep, run, or service job)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_export = trace_sub.add_parser(
        "export",
        help="merge trace lanes into one Chrome trace-event JSON "
        "(open in Perfetto / chrome://tracing)",
    )
    p_trace_export.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: trace.json)",
    )
    p_trace_report = trace_sub.add_parser(
        "report",
        help="print the critical path, top spans, and straggler lanes",
    )
    p_trace_report.add_argument(
        "--top", type=int, default=10,
        help="rows in the top-spans table (default: 10)",
    )
    for sp in (p_trace_export, p_trace_report):
        sp.add_argument(
            "trace",
            help="a lane file (.jsonl), a trace directory, or a service "
            "job id (resolved under <runs-dir>/traces/)",
        )
        sp.add_argument(
            "--runs-dir", default=None, metavar="DIR",
            help="ledger directory for job-id lookup "
            "(default: $DEUCE_RUNS_DIR or .deuce-runs)",
        )
    p_trace.set_defaults(func=_cmd_trace)

    p_gate = sub.add_parser(
        "gate",
        help="check the newest ledger runs against pinned baselines "
        "(exit 1 on regression, 2 on misconfiguration)",
    )
    p_gate.add_argument(
        "--baselines",
        default="baselines",
        metavar="DIR",
        help="directory holding flip_rates.json / perf.json",
    )
    p_gate.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="ledger directory (default: $DEUCE_RUNS_DIR or .deuce-runs)",
    )
    p_gate.add_argument(
        "--tolerance-scale",
        type=float,
        default=1.0,
        help="multiply every baseline tolerance band by this factor",
    )
    p_gate.add_argument(
        "--run-id",
        action="append",
        default=[],
        metavar="RUN_ID",
        help="gate these specific runs instead of the latest per scheme "
        "(repeatable)",
    )
    p_gate.add_argument(
        "--pin",
        action="store_true",
        help="re-pin flip-rate baselines from the latest matching ledger "
        "runs instead of gating",
    )
    p_gate.set_defaults(func=_cmd_gate)

    p_dash = sub.add_parser(
        "dashboard", help="write a self-contained HTML dashboard"
    )
    p_dash.add_argument("--output", default="deuce_dashboard.html")
    p_dash.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="ledger directory (default: $DEUCE_RUNS_DIR or .deuce-runs)",
    )
    p_dash.add_argument(
        "--baselines",
        default="baselines",
        metavar="DIR",
        help="baselines directory for the gate status panel",
    )
    p_dash.add_argument(
        "--limit",
        type=int,
        default=200,
        help="newest N ledger runs to chart (0 = all)",
    )
    p_dash.set_defaults(func=_cmd_dashboard)

    p_report = sub.add_parser(
        "report", help="run all experiments into a Markdown report"
    )
    p_report.add_argument("--output", default="deuce_report.md")
    p_report.add_argument("--writes", type=int, default=3_000)
    p_report.set_defaults(func=_cmd_report)

    p_export = sub.add_parser(
        "export", help="export every experiment's rows as CSV"
    )
    p_export.add_argument("--output", default="deuce_csv")
    p_export.add_argument("--writes", type=int, default=3_000)
    p_export.set_defaults(func=_cmd_export)

    p_analyze = sub.add_parser(
        "analyze", help="characterize a trace and recommend a scheme"
    )
    p_analyze.add_argument(
        "--trace-file", help="a trace saved with Trace.save()"
    )
    p_analyze.add_argument("--workload", default="mcf")
    p_analyze.add_argument("--writes", type=int, default=3_000)
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_list = sub.add_parser("list", help="list workloads/schemes/experiments")
    p_list.set_defaults(func=_cmd_list)

    p_plugins = sub.add_parser(
        "plugins",
        help="list registered plugins (schemes, wear levelers, pad "
        "sources, workloads) and their config schemas",
    )
    p_plugins.add_argument(
        "plugins_verb",
        nargs="?",
        choices=("describe",),
        default=None,
        help="'describe <name>' prints one plugin's parameter schema",
    )
    p_plugins.add_argument(
        "name",
        nargs="?",
        default=None,
        help="plugin name to describe",
    )
    p_plugins.add_argument(
        "--json",
        action="store_true",
        help="machine-readable describe() output instead of tables",
    )
    p_plugins.set_defaults(func=_cmd_plugins)

    p_kv = sub.add_parser(
        "kv",
        help="record / verify on-disk KV request suites "
        "(reusable workload artifacts)",
    )
    kv_sub = p_kv.add_subparsers(dest="kv_command", required=True)
    p_kv_suites = kv_sub.add_parser(
        "suites", help="list the canned suite recipes"
    )
    p_kv_suites.set_defaults(func=_cmd_kv)
    p_kv_record = kv_sub.add_parser(
        "record",
        help="generate a KV request stream and save it (.jsonl or .npz)",
    )
    p_kv_record.add_argument(
        "--suite",
        default=None,
        metavar="NAME",
        help="record a canned recipe (see 'deuce-sim kv suites') instead "
        "of --profile/--writes",
    )
    p_kv_record.add_argument("--profile", default="kv-udb")
    p_kv_record.add_argument("--writes", type=int, default=5_000)
    p_kv_record.add_argument("--seed", type=int, default=0)
    p_kv_record.add_argument(
        "--workload-params",
        default=None,
        metavar="JSON",
        help="profile overrides as a JSON object (schema-validated)",
    )
    p_kv_record.add_argument("--out", required=True, metavar="PATH")
    p_kv_record.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also save the produced writeback trace (binary trace file)",
    )
    p_kv_record.set_defaults(func=_cmd_kv)
    p_kv_verify = kv_sub.add_parser(
        "verify",
        help="replay a saved suite and check it is bit-identical to a "
        "fresh recording (exit 1 on drift)",
    )
    p_kv_verify.add_argument("suite_file", metavar="SUITE_PATH")
    p_kv_verify.set_defaults(func=_cmd_kv)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
