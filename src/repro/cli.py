"""Command-line interface: ``deuce-sim``.

Subcommands
-----------
``run``
    Stream a workload trace through one scheme and print the summary.
``experiment``
    Reproduce one of the paper's figures/tables (or ``all``).
``report``
    Run every experiment and write a Markdown reproduction report.
``list``
    Show available workloads, schemes, and experiments.

Examples
--------
::

    deuce-sim run --workload mcf --scheme deuce --writes 10000
    deuce-sim experiment fig10
    deuce-sim list
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import render_table
from repro.schemes import SCHEME_NAMES
from repro.sim.config import SimConfig
from repro.sim.experiments import EXPERIMENTS
from repro.sim.runner import run
from repro.workloads.profiles import WORKLOAD_NAMES


def _build_instruments(args: argparse.Namespace):
    """Assemble the run's observability bundle from CLI flags.

    Returns ``(instruments, metrics, tracer)``; all ``None`` when every
    observability flag is off, so the runner takes its uninstrumented fast
    path.
    """
    sample_interval = args.sample_interval
    if args.series_out and not sample_interval:
        # A series was requested without a cadence: default to ~100 points.
        sample_interval = max(1, args.writes // 100)
    if not (args.metrics_out or args.trace_out or sample_interval):
        return None, None, None
    from repro.obs import Instruments, JsonlSink, MetricsRegistry, Tracer

    metrics = MetricsRegistry() if args.metrics_out else None
    tracer = Tracer(JsonlSink(args.trace_out)) if args.trace_out else None
    instruments = Instruments(sample_interval=sample_interval)
    if metrics is not None:
        instruments.metrics = metrics
    if tracer is not None:
        instruments.tracer = tracer
    return instruments, metrics, tracer


def _cmd_run(args: argparse.Namespace) -> int:
    config = SimConfig(
        workload=args.workload,
        scheme=args.scheme,
        n_writes=args.writes,
        seed=args.seed,
        word_bytes=args.word_bytes,
        epoch_interval=args.epoch_interval,
        wear_leveling=args.wear_leveling,
        pad_kind=args.pad_kind,
        pad_cache_lines=args.pad_cache_lines,
    )
    instruments, metrics, tracer = _build_instruments(args)
    result = run(config, instruments=instruments)
    print(render_table(list(result.summary_row()), [result.summary_row()]))
    if result.lifetime is not None:
        print(f"lifetime vs encrypted baseline: {result.lifetime.normalized:.2f}x")
    if tracer is not None:
        tracer.close()
        print(f"trace written to {args.trace_out}")
    if metrics is not None:
        metrics.dump_jsonl(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if result.series is not None:
        print(
            f"sampled {len(result.series)} intervals "
            f"(every {result.series.interval} writes)"
        )
        if args.series_out:
            from repro.analysis.export import export_series_csv

            export_series_csv(result.series, args.series_out)
            print(f"time-series written to {args.series_out}")
    return 0


def _progress_renderer(args: argparse.Namespace, label: str):
    """A live renderer when progress is requested (or stderr is a TTY)."""
    enabled = args.progress
    if enabled is None:
        enabled = sys.stderr.isatty()
    if not enabled:
        return None
    from repro.obs import ProgressRenderer

    return ProgressRenderer(label=label)


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        fn = EXPERIMENTS[name]
        if name == "table2":
            result = fn()
        else:
            renderer = _progress_renderer(args, name)
            try:
                result = fn(
                    n_writes=args.writes,
                    max_workers=args.workers,
                    progress=renderer,
                )
            finally:
                if renderer is not None:
                    renderer.close()
        print(result.render())
        print()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_all

    paths = export_all(args.output, n_writes=args.writes, progress=print)
    print(f"{len(paths)} CSV files written to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.workloads.stats import analyze_trace, recommend_scheme
    from repro.workloads.trace import Trace, generate_trace

    if args.trace_file:
        trace = Trace.load(args.trace_file)
        source = args.trace_file
    else:
        trace = generate_trace(args.workload, args.writes, seed=args.seed)
        source = f"generated {args.workload} trace"
    stats = analyze_trace(trace)
    print(render_table(list(stats.summary()), [stats.summary()],
                       title=f"write behaviour of {source}:"))
    scheme, why = recommend_scheme(stats)
    print(f"recommended scheme: {scheme}")
    print(f"rationale: {why}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(
        args.output, n_writes=args.writes, progress=print
    )
    print(f"report written to {path}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("workloads: " + ", ".join(WORKLOAD_NAMES))
    print("schemes:   " + ", ".join(SCHEME_NAMES))
    print("experiments: " + ", ".join(EXPERIMENTS) + ", all")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="deuce-sim",
        description="DEUCE (ASPLOS'15) secure-NVM write-efficiency simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one (workload, scheme) simulation")
    p_run.add_argument("--workload", choices=WORKLOAD_NAMES, required=True)
    p_run.add_argument("--scheme", choices=SCHEME_NAMES, default="deuce")
    p_run.add_argument("--writes", type=int, default=10_000)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--word-bytes", type=int, default=2)
    p_run.add_argument("--epoch-interval", type=int, default=32)
    p_run.add_argument(
        "--wear-leveling",
        choices=("none", "hwl", "hwl-hashed", "sr-hwl"),
        default="none",
    )
    p_run.add_argument("--pad-kind", choices=("blake2", "aes"), default="blake2")
    p_run.add_argument(
        "--pad-cache-lines",
        type=int,
        default=SimConfig("mcf", "deuce").pad_cache_lines,
        help="LRU pad-cache capacity in line pads (0 disables caching)",
    )
    p_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write end-of-run metrics (counters/timers) as JSONL",
    )
    p_run.add_argument(
        "--trace-out",
        metavar="PATH",
        help="stream pipeline spans/events (scheme.write, pad.fetch, "
        "pcm.apply, epoch resets, ...) as JSONL",
    )
    p_run.add_argument(
        "--sample-interval",
        type=int,
        default=0,
        metavar="N",
        help="snapshot flip-rate/pad-hit-rate/wear percentiles every N "
        "writes into a time-series (0 = off)",
    )
    p_run.add_argument(
        "--series-out",
        metavar="PATH",
        help="write the sampled time-series as CSV (implies sampling "
        "at ~100 points if --sample-interval is unset)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiment", help="reproduce a paper figure/table")
    p_exp.add_argument("name", help=f"one of {', '.join(EXPERIMENTS)} or 'all'")
    p_exp.add_argument("--writes", type=int, default=5_000)
    p_exp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial, 0 = auto)",
    )
    p_exp.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="live cells-done/in-flight/ETA line on stderr "
        "(default: only when stderr is a terminal)",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_report = sub.add_parser(
        "report", help="run all experiments into a Markdown report"
    )
    p_report.add_argument("--output", default="deuce_report.md")
    p_report.add_argument("--writes", type=int, default=3_000)
    p_report.set_defaults(func=_cmd_report)

    p_export = sub.add_parser(
        "export", help="export every experiment's rows as CSV"
    )
    p_export.add_argument("--output", default="deuce_csv")
    p_export.add_argument("--writes", type=int, default=3_000)
    p_export.set_defaults(func=_cmd_export)

    p_analyze = sub.add_parser(
        "analyze", help="characterize a trace and recommend a scheme"
    )
    p_analyze.add_argument(
        "--trace-file", help="a trace saved with Trace.save()"
    )
    p_analyze.add_argument("--workload", choices=WORKLOAD_NAMES, default="mcf")
    p_analyze.add_argument("--writes", type=int, default=3_000)
    p_analyze.add_argument("--seed", type=int, default=0)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_list = sub.add_parser("list", help="list workloads/schemes/experiments")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
