"""Start-Gap vertical wear leveling [Qureshi et al., MICRO-42 2009].

Start-Gap levels wear *across* lines with two global registers and one spare
line: every ``gap_write_interval`` writes the gap line moves by one (copying
its neighbour's content), and once the gap has traversed the whole region the
``Start`` register increments — the entire region has rotated by one line.
The logical-to-physical mapping is an O(1) algebraic function of (Start,
Gap), which is exactly the property section 5.3 exploits to derive a free
intra-line rotation amount for Horizontal Wear Leveling.

This implementation keeps the algebraic mapping and (for tests) can be
cross-checked against an explicit permutation simulation.
"""

from __future__ import annotations


class StartGap:
    """Start-Gap remapping over ``n_lines`` logical lines (+1 gap line).

    Parameters
    ----------
    n_lines:
        Number of logical lines in the leveled region.
    gap_write_interval:
        Writes between gap movements (the paper suggests ~100; smaller
        values level faster at higher write overhead).
    """

    def __init__(self, n_lines: int, gap_write_interval: int = 100) -> None:
        if n_lines < 1:
            raise ValueError("n_lines must be >= 1")
        if gap_write_interval < 1:
            raise ValueError("gap_write_interval must be >= 1")
        self.n_lines = n_lines
        self.gap_write_interval = gap_write_interval
        self.start = 0
        #: gap position in physical space, N down to 0, then wraps to N.
        self.gap = n_lines
        self._writes_since_move = 0
        #: extra line writes caused by gap movement (each move copies a line)
        self.move_writes = 0

    # -- write notification ---------------------------------------------------

    def on_write(self) -> bool:
        """Count one demand write; move the gap when the interval elapses.

        Returns True when a gap movement happened on this write.
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return False
        self._writes_since_move = 0
        self._move_gap()
        return True

    @property
    def writes_until_event(self) -> int:
        """Demand writes remaining until the next gap movement (>= 1).

        The chunked runner cuts its batches here so a chunk contains at
        most one gap movement — as its final write — keeping the rotation
        constant across the chunk.
        """
        return self.gap_write_interval - self._writes_since_move

    def advance(self, k: int) -> bool:
        """Count ``k`` demand writes at once; equivalent to ``k`` on_write().

        ``k`` must not exceed :attr:`writes_until_event`, so at most one
        gap movement can fire (on the final write).  Returns True when it
        did.
        """
        if k < 0 or k > self.writes_until_event:
            raise ValueError(
                f"advance({k}) crosses a gap movement "
                f"(writes_until_event={self.writes_until_event})"
            )
        self._writes_since_move += k
        if self._writes_since_move < self.gap_write_interval:
            return False
        self._writes_since_move = 0
        self._move_gap()
        return True

    def _move_gap(self) -> None:
        self.move_writes += 1
        if self.gap == 0:
            # Wrap: the spare slot returns to the top; one full rotation done.
            self.gap = self.n_lines
            self.start += 1
        else:
            self.gap -= 1

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "start": self.start,
            "gap": self.gap,
            "writes_since_move": self._writes_since_move,
            "move_writes": self.move_writes,
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.start = int(state["start"])
        self.gap = int(state["gap"])
        self._writes_since_move = int(state["writes_since_move"])
        self.move_writes = int(state["move_writes"])

    # -- mapping ---------------------------------------------------------------

    def gap_crossed(self, logical: int) -> bool:
        """Has the gap already passed this line in the current rotation?

        Equivalently: has the line already been shifted by the current
        rotation, so its effective start is ``start + 1``.

        At the start of every rotation the line sits at slot
        ``(logical + start) % n_lines`` — modulo the *line* count, because
        the gap always restarts its sweep from the spare slot — and the
        downward-moving gap has crossed it once the gap position is at or
        below that slot.
        """
        self._check(logical)
        base = (logical + self.start) % self.n_lines
        return base >= self.gap

    def physical_index(self, logical: int) -> int:
        """O(1) logical-to-physical mapping from (Start, Gap)."""
        self._check(logical)
        base = (logical + self.start) % self.n_lines
        if base >= self.gap:
            return base + 1
        return base

    def effective_start(self, logical: int) -> int:
        """The Start' of section 5.3: Start+1 once the gap crossed the line."""
        return self.start + 1 if self.gap_crossed(logical) else self.start

    def _check(self, logical: int) -> None:
        if not 0 <= logical < self.n_lines:
            raise ValueError(
                f"logical index {logical} out of range [0, {self.n_lines})"
            )


class StartGapReference:
    """Explicit-permutation Start-Gap used to validate the algebraic mapping.

    Maintains the physical array as a list of logical ids (``None`` for the
    gap) and performs the copy-to-gap movement literally.  Slow, obviously
    correct, test-only.
    """

    def __init__(self, n_lines: int, gap_write_interval: int = 100) -> None:
        self.n_lines = n_lines
        self.gap_write_interval = gap_write_interval
        self._slots: list[int | None] = list(range(n_lines)) + [None]
        self._writes_since_move = 0

    def on_write(self) -> bool:
        self._writes_since_move += 1
        if self._writes_since_move < self.gap_write_interval:
            return False
        self._writes_since_move = 0
        gap = self._slots.index(None)
        prev = (gap - 1) % (self.n_lines + 1)
        self._slots[gap] = self._slots[prev]
        self._slots[prev] = None
        return True

    def physical_index(self, logical: int) -> int:
        return self._slots.index(logical)
