"""Horizontal Wear Leveling (HWL) — section 5.3.

HWL makes bit writes *within* a line uniform without any per-line storage:
the intra-line rotation amount is an algebraic function of the global
Start-Gap registers,

    rotation = Start' % bits_in_line,

where ``Start'`` is ``Start + 1`` once the gap has already crossed the line
in the current rotation (so that all lines land on the new rotation amount
at the same moment the Start register increments).  Because the rotation
only changes when the gap moves *through* the line — a moment when the line
is being copied anyway — re-rotating costs no extra writes.

Footnote 2's hardened variant makes the rotation a keyed hash of
``(Start', line address)`` so an adversary cannot phase-lock a write pattern
to the rotation schedule.
"""

from __future__ import annotations

import hashlib

from repro.wear.startgap import StartGap


class HorizontalWearLeveler:
    """Derives per-line bit-rotation amounts from a Start-Gap instance.

    Parameters
    ----------
    startgap:
        The vertical wear leveler whose registers drive the rotation.
    bits_per_line:
        Total rotated width — data bits plus any per-line metadata bits
        ("including any metadata bits associated with the line").
    hashed:
        Enable the footnote-2 hardening: rotation =
        ``Hash(Start', line) % bits_per_line`` instead of ``Start' %
        bits_per_line``.
    key:
        Key for the hashed variant (must be secret for the hardening to
        mean anything; any bytes work for simulation).
    """

    def __init__(
        self,
        startgap: StartGap,
        bits_per_line: int,
        hashed: bool = False,
        key: bytes = b"hwl-key",
    ) -> None:
        if bits_per_line <= 0:
            raise ValueError("bits_per_line must be positive")
        self.startgap = startgap
        self.bits_per_line = bits_per_line
        self.hashed = hashed
        self.key = bytes(key)

    def state_dict(self) -> dict[str, object]:
        """The leveler itself is stateless; delegate to Start-Gap."""
        return self.startgap.state_dict()

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.startgap.load_state_dict(state)

    def rotation(self, logical_line: int) -> int:
        """Current rotation amount for a line, in bit positions."""
        start_prime = self.startgap.effective_start(logical_line)
        if not self.hashed:
            return start_prime % self.bits_per_line
        digest = hashlib.blake2b(
            start_prime.to_bytes(8, "little")
            + logical_line.to_bytes(8, "little"),
            key=self.key,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % self.bits_per_line


class NoWearLeveler:
    """Null object: no rotation (the DEUCE-without-HWL configurations)."""

    def rotation(self, logical_line: int) -> int:
        return 0

    def state_dict(self) -> dict[str, object]:
        return {}

    def load_state_dict(self, state: dict[str, object]) -> None:
        if state:
            raise ValueError("NoWearLeveler carries no state")
