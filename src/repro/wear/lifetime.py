"""Endurance-limited lifetime model (sections 5.1, 5.4).

PCM dies when its most-worn cell exhausts its program endurance, so lifetime
is set by the *hottest* bit, not the average:

    lifetime ∝ endurance / (writes-per-unit-time to the hottest cell).

With vertical wear leveling assumed (line writes spread evenly across the
array), the hottest cell is determined by the per-*bit-position* write rate
aggregated over lines.  The baseline encrypted memory programs every position
with probability ~0.5 per writeback (avalanche), which is both high and
perfectly uniform — that is the "1.0" that Figure 14 normalizes against.

A scheme's normalized lifetime is therefore::

    lifetime_norm = 0.5 / max_position_rate

where ``max_position_rate`` is the hottest position's flips per writeback.
For perfectly leveled writes the max equals the mean and the lifetime gain
equals the bit-flip reduction (DEUCE+HWL's 2x); without HWL the hot
positions cap the gain (DEUCE's 1.1x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Baseline encrypted memory's per-position flip probability per writeback.
ENCRYPTED_FLIP_PROB = 0.5

#: A typical PCM cell endurance, used for absolute-years estimates.
DEFAULT_CELL_ENDURANCE = 2.5e7


@dataclass
class LifetimeReport:
    """Lifetime figures for one (scheme, workload, leveling) configuration.

    Attributes
    ----------
    max_position_rate:
        Flips per writeback of the hottest bit position.
    mean_position_rate:
        Average flips per writeback per position (= flip fraction).
    normalized:
        Lifetime relative to the encrypted-memory baseline (Figure 14).
    perfect_leveling:
        Lifetime this scheme would reach with ideal intra-line leveling
        (the bound HWL approaches within ~0.5%, section 5.3).
    """

    max_position_rate: float
    mean_position_rate: float
    normalized: float
    perfect_leveling: float

    @property
    def leveling_efficiency(self) -> float:
        """How close actual leveling gets to the perfect-leveling bound."""
        if self.perfect_leveling == 0:
            return 0.0
        return self.normalized / self.perfect_leveling


def lifetime_report(
    position_writes: np.ndarray,
    total_writes: int,
    baseline_flip_prob: float = ENCRYPTED_FLIP_PROB,
) -> LifetimeReport:
    """Build a :class:`LifetimeReport` from per-position wear counts.

    Parameters
    ----------
    position_writes:
        Programs per bit position aggregated across the array (from
        :meth:`repro.memory.pcm.PcmArray.summary`).
    total_writes:
        Number of line writebacks those counts accumulate over.
    baseline_flip_prob:
        The reference per-position rate; 0.5 for the encrypted baseline.
    """
    if total_writes <= 0:
        raise ValueError("total_writes must be positive")
    if position_writes.size == 0:
        raise ValueError("position_writes is empty")
    rates = position_writes.astype(np.float64) / total_writes
    max_rate = float(rates.max())
    mean_rate = float(rates.mean())
    normalized = baseline_flip_prob / max_rate if max_rate > 0 else float("inf")
    perfect = baseline_flip_prob / mean_rate if mean_rate > 0 else float("inf")
    return LifetimeReport(
        max_position_rate=max_rate,
        mean_position_rate=mean_rate,
        normalized=normalized,
        perfect_leveling=perfect,
    )


def absolute_lifetime_years(
    max_position_rate: float,
    writes_per_second: float,
    cell_endurance: float = DEFAULT_CELL_ENDURANCE,
    n_memory_lines: int = 1,
) -> float:
    """Rough absolute lifetime, assuming vertical WL spreads line writes.

    Parameters
    ----------
    max_position_rate:
        Flips per writeback of the hottest bit position.
    writes_per_second:
        Writeback rate hitting the whole memory.
    cell_endurance:
        Programs a cell survives.
    n_memory_lines:
        Lines the vertical wear leveler spreads the write stream over.
    """
    if max_position_rate <= 0 or writes_per_second <= 0:
        return float("inf")
    per_line_write_rate = writes_per_second / max(n_memory_lines, 1)
    hottest_cell_rate = per_line_write_rate * max_position_rate
    seconds = cell_endurance / hottest_cell_rate
    return seconds / (365.25 * 24 * 3600)
