"""Security Refresh vertical wear leveling [Seong et al., ISCA 2010].

The second VWL algorithm the paper cites (section 5.2).  Security Refresh
remaps lines inside a region by XORing the logical address with a random
key; every ``refresh_interval`` writes, one line is *refreshed* — swapped
toward its position under the next key — and once a full round completes
the region has migrated from the old key to the new one.  Because the key
is random, an adversary cannot target a physical line.

This implementation follows the single-level scheme: a region of
``n_lines`` (power of two), a current and next remap key, and a refresh
pointer that sweeps the region.  Migration is pairwise, as in the original
design: refreshing logical line ``l`` also migrates its partner
``l ^ current_key ^ next_key`` (their physical locations swap), which is
what keeps the mid-round mapping a permutation.

Horizontal Wear Leveling composes with it the same way as with Start-Gap
(section 5.3's insight is "make the rotation an algebraic function of the
global structures"): here the natural choice is the hashed variant keyed by
the completed-round count, exposed via :meth:`rotation_round`.
"""

from __future__ import annotations

import hashlib

import numpy as np


class SecurityRefresh:
    """Single-level Security Refresh over a power-of-two region.

    Parameters
    ----------
    n_lines:
        Region size; must be a power of two (XOR remapping).
    refresh_interval:
        Demand writes between refresh operations.
    seed:
        Deterministic source for the remap keys (a real controller uses a
        hardware RNG).
    """

    def __init__(
        self, n_lines: int, refresh_interval: int = 100, seed: int = 0
    ) -> None:
        if n_lines < 2 or n_lines & (n_lines - 1):
            raise ValueError("n_lines must be a power of two >= 2")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be >= 1")
        self.n_lines = n_lines
        self.refresh_interval = refresh_interval
        self._seed = seed
        self.round = 0
        self.current_key = self._key_for_round(0)
        self.next_key = self._key_for_round(1)
        #: Sweep pointer over logical ids for the current round.
        self.refresh_ptr = 0
        self._migrated = [False] * n_lines
        self._writes_since_refresh = 0
        #: Extra line writes caused by refresh swaps.
        self.refresh_writes = 0

    def _key_for_round(self, round_index: int) -> int:
        digest = hashlib.blake2b(
            round_index.to_bytes(8, "little") + self._seed.to_bytes(8, "little"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % self.n_lines

    # -- write notification -----------------------------------------------------

    def on_write(self) -> bool:
        """Count a demand write; perform a refresh when the interval elapses.

        Returns True when a refresh (line migration) happened.
        """
        self._writes_since_refresh += 1
        if self._writes_since_refresh < self.refresh_interval:
            return False
        self._writes_since_refresh = 0
        self._refresh_one()
        return True

    @property
    def writes_until_event(self) -> int:
        """Demand writes remaining until the next refresh (>= 1).

        Chunk-boundary hook for the batched runner, mirroring
        :attr:`StartGap.writes_until_event`.
        """
        return self.refresh_interval - self._writes_since_refresh

    def advance(self, k: int) -> bool:
        """Count ``k`` demand writes at once; equivalent to ``k`` on_write().

        ``k`` must not exceed :attr:`writes_until_event`, so at most one
        refresh can fire (on the final write).  Returns True when it did.
        """
        if k < 0 or k > self.writes_until_event:
            raise ValueError(
                f"advance({k}) crosses a refresh "
                f"(writes_until_event={self.writes_until_event})"
            )
        self._writes_since_refresh += k
        if self._writes_since_refresh < self.refresh_interval:
            return False
        self._writes_since_refresh = 0
        self._refresh_one()
        return True

    def _refresh_one(self) -> None:
        # Skip lines already migrated as a partner of an earlier refresh.
        while (
            self.refresh_ptr < self.n_lines
            and self._migrated[self.refresh_ptr]
        ):
            self.refresh_ptr += 1
        if self.refresh_ptr < self.n_lines:
            line = self.refresh_ptr
            partner = line ^ self.current_key ^ self.next_key
            # The swap writes both lines (unless the keys coincide and the
            # migration is a no-op move).
            self.refresh_writes += 1 if partner == line else 2
            self._migrated[line] = True
            self._migrated[partner] = True
            self.refresh_ptr += 1
        while (
            self.refresh_ptr < self.n_lines
            and self._migrated[self.refresh_ptr]
        ):
            self.refresh_ptr += 1
        if self.refresh_ptr >= self.n_lines:
            # Round complete: next key becomes current, draw a fresh one.
            self.round += 1
            self.current_key = self.next_key
            self.next_key = self._key_for_round(self.round + 1)
            self.refresh_ptr = 0
            self._migrated = [False] * self.n_lines

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        return {
            "round": self.round,
            "current_key": self.current_key,
            "next_key": self.next_key,
            "refresh_ptr": self.refresh_ptr,
            "writes_since_refresh": self._writes_since_refresh,
            "refresh_writes": self.refresh_writes,
            "migrated": np.asarray(self._migrated, dtype=np.uint8),
        }

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.round = int(state["round"])
        self.current_key = int(state["current_key"])
        self.next_key = int(state["next_key"])
        self.refresh_ptr = int(state["refresh_ptr"])
        self._writes_since_refresh = int(state["writes_since_refresh"])
        self.refresh_writes = int(state["refresh_writes"])
        self._migrated = [
            bool(v) for v in np.asarray(state["migrated"], dtype=np.uint8)
        ]

    # -- mapping --------------------------------------------------------------------

    def physical_index(self, logical: int) -> int:
        """Current logical-to-physical mapping."""
        if not 0 <= logical < self.n_lines:
            raise ValueError(f"logical index {logical} out of range")
        key = self.next_key if self._migrated[logical] else self.current_key
        return logical ^ key

    def remapped_by_sweep(self, logical: int) -> bool:
        """Has the current round's sweep already migrated this line?"""
        return self._migrated[logical]

    # -- HWL hook ---------------------------------------------------------------------

    def rotation_round(self, logical: int) -> int:
        """Monotone per-line epoch counter for hashed HWL rotation.

        Advances by one every completed remap round (plus one early for
        lines the sweep already migrated), mirroring Start-Gap's
        ``effective_start``.
        """
        return self.round + (1 if self.remapped_by_sweep(logical) else 0)


class SecurityRefreshHWL:
    """Hashed Horizontal Wear Leveling driven by Security Refresh rounds.

    rotation = Hash(round', line) % bits_per_line — the footnote-2 form,
    which is also the natural fit here since Security Refresh has no
    monotone Start register to use algebraically.
    """

    def __init__(
        self,
        refresh: SecurityRefresh,
        bits_per_line: int,
        key: bytes = b"sr-hwl-key",
    ) -> None:
        if bits_per_line <= 0:
            raise ValueError("bits_per_line must be positive")
        self.refresh = refresh
        self.bits_per_line = bits_per_line
        self.key = bytes(key)

    def state_dict(self) -> dict[str, object]:
        """The HWL layer is stateless; delegate to Security Refresh."""
        return self.refresh.state_dict()

    def load_state_dict(self, state: dict[str, object]) -> None:
        self.refresh.load_state_dict(state)

    def rotation(self, logical_line: int) -> int:
        round_prime = self.refresh.rotation_round(logical_line)
        digest = hashlib.blake2b(
            round_prime.to_bytes(8, "little")
            + logical_line.to_bytes(8, "little"),
            key=self.key,
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "little") % self.bits_per_line
