"""Wear leveling and endurance: Start-Gap (VWL), HWL, lifetime model."""

from repro.wear.hwl import HorizontalWearLeveler, NoWearLeveler
from repro.wear.lifetime import (
    DEFAULT_CELL_ENDURANCE,
    ENCRYPTED_FLIP_PROB,
    LifetimeReport,
    absolute_lifetime_years,
    lifetime_report,
)
from repro.wear.security_refresh import SecurityRefresh, SecurityRefreshHWL
from repro.wear.startgap import StartGap, StartGapReference

__all__ = [
    "DEFAULT_CELL_ENDURANCE",
    "ENCRYPTED_FLIP_PROB",
    "HorizontalWearLeveler",
    "LifetimeReport",
    "NoWearLeveler",
    "SecurityRefresh",
    "SecurityRefreshHWL",
    "StartGap",
    "StartGapReference",
    "absolute_lifetime_years",
    "lifetime_report",
]
