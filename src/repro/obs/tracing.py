"""Span-based tracing of the run pipeline with a JSONL event sink.

A *span* is a named operation with a start time and a duration; an *event*
is an instant.  The runner emits spans for the pipeline phases (trace
generation, install, the write loop) and — when tracing is on — for each
write's sub-steps (``scheme.write``, ``pad.fetch``, ``wear.rotation``,
``pcm.apply``), plus instant events for notable scheme behaviour (epoch
resets, DynDEUCE mode switches).

Every record is one JSON object per line (JSONL), so traces stream to disk
as they happen and load with one ``json.loads`` per line:

``{"type": "span", "name": "scheme.write", "ts": 1.23, "dur": 2.1e-05,
"write": 17, "addr": 4096}``

``type`` is ``"span"``, ``"event"`` or ``"meta"``; ``ts`` is a
``time.perf_counter`` timestamp (monotonic within one process); ``dur``
(spans only) is seconds.  All remaining keys are free-form attributes.
Every :class:`JsonlSink` file opens with a ``{"type": "meta"}`` record
carrying the pid, a wall-clock epoch (``epoch_unix``) and the
``perf_counter`` reading taken at the same instant (``perf_origin``), so
offline tools can align lanes from different processes on one wall-clock
axis: ``wall = epoch_unix + (ts - perf_origin)``.  See
:mod:`repro.obs.context` for the propagation side.

:data:`NULL_TRACER` is the disabled backend: ``span()`` returns a shared
no-op context manager and ``event()`` does nothing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Protocol


class EventSink(Protocol):
    """Anything that can receive trace records (dicts)."""

    def emit(self, record: dict[str, object]) -> None:
        ...


class ListSink:
    """In-memory sink for tests and programmatic inspection."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []

    def emit(self, record: dict[str, object]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Append trace records to a JSONL file, one object per line.

    Writes are buffered: records are encoded immediately but hit the file
    in batches — every ``flush_every`` records, whenever
    ``flush_interval_s`` seconds have passed since the last flush (checked
    on emit), and always on :meth:`flush`/:meth:`close`.  A hot loop
    emitting one span per write therefore pays one syscall per batch, not
    per record.

    ``rotate_bytes`` bounds on-disk growth for long soaks: when a flush
    would push the current file past the limit, generations shift down
    (``<name>.1`` → ``<name>.2`` … up to ``rotate_keep``, oldest dropped),
    the file is renamed to ``<name>.1``, and a fresh file begins.
    ``rotate_keep`` controls how many rotated generations survive
    (default 1: at most two files ever exist).  ``rotate_bytes=0``
    disables rotation.

    Every file — the initial one and each post-rotation successor —
    begins with a ``{"type": "meta"}`` record anchoring this process's
    ``perf_counter`` timeline to wall clock, so each generation is
    self-describing.  Extra lane identity (e.g. a
    :class:`repro.obs.context.TraceContext`) rides in via ``meta``.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        flush_every: int = 256,
        flush_interval_s: float | None = 1.0,
        rotate_bytes: int = 0,
        rotate_keep: int = 1,
        meta: dict[str, object] | None = None,
    ) -> None:
        if rotate_bytes < 0:
            raise ValueError(f"rotate_bytes must be >= 0, got {rotate_bytes}")
        if rotate_keep < 1:
            raise ValueError(f"rotate_keep must be >= 1, got {rotate_keep}")
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self.flush_interval_s = flush_interval_s
        self.rotate_bytes = int(rotate_bytes)
        self.rotate_keep = int(rotate_keep)
        self._fh = open(self.path, "w")
        self._buffer: list[str] = []
        self._written = 0  # chars in the current file (ASCII JSON: == bytes)
        self._last_flush = time.monotonic()
        record: dict[str, object] = {
            "type": "meta",
            "pid": os.getpid(),
            "epoch_unix": time.time(),
            "perf_origin": time.perf_counter(),
        }
        if meta:
            record.update(meta)
        # Serialized once; re-emitted verbatim into each rotated-in file.
        self._meta_line = json.dumps(record, separators=(",", ":")) + "\n"
        self._write_meta()

    def _write_meta(self) -> None:
        self._fh.write(self._meta_line)
        self._written += len(self._meta_line)

    @property
    def rotated_path(self) -> Path:
        """Where the newest rotated generation lands."""
        return self.path.with_name(self.path.name + ".1")

    def generation_path(self, n: int) -> Path:
        """Path of rotated generation ``n`` (1 = newest)."""
        return self.path.with_name(f"{self.path.name}.{n}")

    def emit(self, record: dict[str, object]) -> None:
        self._buffer.append(json.dumps(record, separators=(",", ":")) + "\n")
        if len(self._buffer) >= self.flush_every or (
            self.flush_interval_s is not None
            and time.monotonic() - self._last_flush >= self.flush_interval_s
        ):
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            data = "".join(self._buffer)
            self._buffer.clear()
            # Never rotate a file holding only its meta record (a single
            # oversized batch would otherwise rotate forever without
            # retaining anything).
            if (
                self.rotate_bytes
                and self._written > len(self._meta_line)
                and self._written + len(data) > self.rotate_bytes
            ):
                self._rotate()
            self._fh.write(data)
            self._written += len(data)
        self._fh.flush()
        self._last_flush = time.monotonic()

    def _rotate(self) -> None:
        self._fh.close()
        # Shift surviving generations down: .N-1 -> .N, ..., .1 -> .2.
        for n in range(self.rotate_keep, 1, -1):
            older = self.generation_path(n - 1)
            if older.exists():
                os.replace(older, self.generation_path(n))
        os.replace(self.path, self.rotated_path)
        self._fh = open(self.path, "w")
        self._written = 0
        self._write_meta()

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _Span:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.span_event(
            self._name,
            self._t0,
            self._tracer.clock() - self._t0,
            **self._attrs,
        )


class Tracer:
    """Emits spans and events into a sink.

    Parameters
    ----------
    sink:
        Where records go (:class:`JsonlSink`, :class:`ListSink`, ...).
    clock:
        Timestamp source; defaults to ``time.perf_counter``.
    """

    enabled = True

    def __init__(self, sink: EventSink, clock=time.perf_counter) -> None:
        self.sink = sink
        self.clock = clock

    def span(self, name: str, **attrs: object) -> _Span:
        """``with tracer.span("install", lines=n): ...``"""
        return _Span(self, name, attrs)

    def span_event(
        self, name: str, start: float, duration: float, **attrs: object
    ) -> None:
        """Record an already-measured span (hot paths avoid ``with``)."""
        record: dict[str, object] = {
            "type": "span",
            "name": name,
            "ts": start,
            "dur": duration,
        }
        if attrs:
            record.update(attrs)
        self.sink.emit(record)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event."""
        record: dict[str, object] = {
            "type": "event",
            "name": name,
            "ts": self.clock(),
        }
        if attrs:
            record.update(attrs)
        self.sink.emit(record)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing backend: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def span_event(
        self, name: str, start: float, duration: float, **attrs: object
    ) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass

    def close(self) -> None:
        pass


#: Process-wide null tracer; safe to share (it holds no state).
NULL_TRACER = NullTracer()
