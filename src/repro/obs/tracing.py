"""Span-based tracing of the run pipeline with a JSONL event sink.

A *span* is a named operation with a start time and a duration; an *event*
is an instant.  The runner emits spans for the pipeline phases (trace
generation, install, the write loop) and — when tracing is on — for each
write's sub-steps (``scheme.write``, ``pad.fetch``, ``wear.rotation``,
``pcm.apply``), plus instant events for notable scheme behaviour (epoch
resets, DynDEUCE mode switches).

Every record is one JSON object per line (JSONL), so traces stream to disk
as they happen and load with one ``json.loads`` per line:

``{"type": "span", "name": "scheme.write", "ts": 1.23, "dur": 2.1e-05,
"write": 17, "addr": 4096}``

``type`` is ``"span"`` or ``"event"``; ``ts`` is a ``time.perf_counter``
timestamp (monotonic, comparable within one process only); ``dur`` (spans
only) is seconds.  All remaining keys are free-form attributes.

:data:`NULL_TRACER` is the disabled backend: ``span()`` returns a shared
no-op context manager and ``event()`` does nothing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Protocol


class EventSink(Protocol):
    """Anything that can receive trace records (dicts)."""

    def emit(self, record: dict[str, object]) -> None:
        ...


class ListSink:
    """In-memory sink for tests and programmatic inspection."""

    def __init__(self) -> None:
        self.records: list[dict[str, object]] = []

    def emit(self, record: dict[str, object]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Append trace records to a JSONL file, one object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w")

    def emit(self, record: dict[str, object]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _Span:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer.span_event(
            self._name,
            self._t0,
            self._tracer.clock() - self._t0,
            **self._attrs,
        )


class Tracer:
    """Emits spans and events into a sink.

    Parameters
    ----------
    sink:
        Where records go (:class:`JsonlSink`, :class:`ListSink`, ...).
    clock:
        Timestamp source; defaults to ``time.perf_counter``.
    """

    enabled = True

    def __init__(self, sink: EventSink, clock=time.perf_counter) -> None:
        self.sink = sink
        self.clock = clock

    def span(self, name: str, **attrs: object) -> _Span:
        """``with tracer.span("install", lines=n): ...``"""
        return _Span(self, name, attrs)

    def span_event(
        self, name: str, start: float, duration: float, **attrs: object
    ) -> None:
        """Record an already-measured span (hot paths avoid ``with``)."""
        record: dict[str, object] = {
            "type": "span",
            "name": name,
            "ts": start,
            "dur": duration,
        }
        if attrs:
            record.update(attrs)
        self.sink.emit(record)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instant event."""
        record: dict[str, object] = {
            "type": "event",
            "name": name,
            "ts": self.clock(),
        }
        if attrs:
            record.update(attrs)
        self.sink.emit(record)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing backend: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def span_event(
        self, name: str, start: float, duration: float, **attrs: object
    ) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass

    def close(self) -> None:
        pass


#: Process-wide null tracer; safe to share (it holds no state).
NULL_TRACER = NullTracer()
