"""Lightweight zero-dependency metrics: counters, gauges, histograms, timers.

The simulation's hot loops run millions of iterations, so the registry is
built around two rules:

* **Null by default** — :data:`NULL_METRICS` hands out shared no-op
  instruments whose methods are empty; callers thread one ``metrics`` object
  through unconditionally and pay (almost) nothing when observability is off.
  The runner goes one step further and skips instrumentation entirely when
  every backend is null (see :mod:`repro.obs.instruments`).
* **Plain Python state** — a real :class:`Counter` is one attribute add, a
  :class:`Histogram` five scalar updates; no locks, no label cardinality, no
  export machinery in the hot path.  Snapshots are taken once at the end of a
  run and dumped as JSON lines.

Instruments are keyed by name; asking the registry for the same name twice
returns the same instrument, and asking for a name under two different types
is an error (it would silently split the data otherwise).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Iterator


class Counter:
    """Monotonically increasing count (writes, flips, cache hits, ...)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """Last-write-wins scalar (working-set size, current epoch, ...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """Streaming distribution summary: count, sum, min, max, mean.

    Deliberately keeps no per-observation storage — a run observes one value
    per write, and the consumers (per-phase timing regressions) need totals
    and extremes, not exact quantiles.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, total: float, count: int) -> None:
        """Fold ``count`` observations summing to ``total`` in one call.

        Used by the chunked write loop, which times a whole chunk and
        attributes it to its writes: counts and sums stay exactly what the
        per-write path would record, while min/max are updated with the
        chunk mean (per-observation extremes are not recoverable from a
        chunk-level timing).
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        mean = total / count
        if mean < self.min:
            self.min = mean
        if mean > self.max:
            self.max = mean

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "type": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class Timer(Histogram):
    """A histogram of durations in seconds with a context-manager helper."""

    __slots__ = ()

    kind = "timer"

    class _Timing:
        __slots__ = ("_timer", "_t0")

        def __init__(self, timer: "Timer") -> None:
            self._timer = timer
            self._t0 = 0.0

        def __enter__(self) -> "Timer._Timing":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            self._timer.observe(time.perf_counter() - self._t0)

    def time(self) -> "Timer._Timing":
        """``with timer.time(): ...`` records the block's wall duration."""
        return Timer._Timing(self)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument type."""

    __slots__ = ()

    name = ""
    kind = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, total: float, count: int) -> None:
        pass

    class _NullTiming:
        __slots__ = ()

        def __enter__(self) -> "_NullInstrument._NullTiming":
            return self

        def __exit__(self, *exc: object) -> None:
            pass

    _TIMING = _NullTiming()

    def time(self) -> "_NullInstrument._NullTiming":
        return _NullInstrument._TIMING

    def snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "name": self.name}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    >>> m = MetricsRegistry()
    >>> m.counter("writes").inc()
    >>> m.counter("writes").value
    1
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls: type):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
            return instrument
        if type(instrument) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def snapshot(self) -> list[dict[str, object]]:
        """One flat dict per instrument, in registration order."""
        return [m.snapshot() for m in self._instruments.values()]  # type: ignore[attr-defined]

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write the snapshot as JSON lines (one instrument per line)."""
        path = Path(path)
        with open(path, "w") as fh:
            for snap in self.snapshot():
                fh.write(json.dumps(snap, separators=(",", ":")) + "\n")
        return path


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments do nothing; shared via :data:`NULL_METRICS`."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get(self, name: str, cls: type):
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict[str, object]]:
        return []


#: Process-wide null registry; safe to share (it holds no state).
NULL_METRICS = NullMetricsRegistry()
