"""Lightweight zero-dependency metrics: counters, gauges, histograms, timers.

The simulation's hot loops run millions of iterations, so the registry is
built around two rules:

* **Null by default** — :data:`NULL_METRICS` hands out shared no-op
  instruments whose methods are empty; callers thread one ``metrics`` object
  through unconditionally and pay (almost) nothing when observability is off.
  The runner goes one step further and skips instrumentation entirely when
  every backend is null (see :mod:`repro.obs.instruments`).
* **Plain Python state** — a real :class:`Counter` is one attribute add, a
  :class:`Histogram` five scalar updates; no locks, no label cardinality, no
  export machinery in the hot path.  Snapshots are taken once at the end of a
  run and dumped as JSON lines.

Instruments are keyed by name plus an optional label set; asking the
registry for the same (name, labels) twice returns the same instrument, and
asking for a key under two different types is an error (it would silently
split the data otherwise).

The service layer additionally uses :class:`BucketHistogram` — fixed
upper-bound buckets with p50/p95/p99 quantile estimation — and renders the
whole registry in Prometheus text exposition format via
:mod:`repro.obs.promfmt`.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from pathlib import Path
from typing import Iterator, Sequence


def _with_labels(snap: dict[str, object], labels: dict[str, str]) -> dict[str, object]:
    if labels:
        snap["labels"] = dict(labels)
    return snap


class Counter:
    """Monotonically increasing count (writes, flips, cache hits, ...)."""

    __slots__ = ("name", "value", "labels")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.value = 0
        self.labels = dict(labels or {})

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> dict[str, object]:
        return _with_labels(
            {"type": self.kind, "name": self.name, "value": self.value},
            self.labels,
        )


class Gauge:
    """Last-write-wins scalar (working-set size, current epoch, ...)."""

    __slots__ = ("name", "value", "labels")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.labels = dict(labels or {})

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, object]:
        return _with_labels(
            {"type": self.kind, "name": self.name, "value": self.value},
            self.labels,
        )


class Histogram:
    """Streaming distribution summary: count, sum, min, max, mean.

    Deliberately keeps no per-observation storage — a run observes one value
    per write, and the consumers (per-phase timing regressions) need totals
    and extremes, not exact quantiles.
    """

    __slots__ = ("name", "count", "total", "min", "max", "labels")

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.labels = dict(labels or {})

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, total: float, count: int) -> None:
        """Fold ``count`` observations summing to ``total`` in one call.

        Used by the chunked write loop, which times a whole chunk and
        attributes it to its writes: counts and sums stay exactly what the
        per-write path would record, while min/max are updated with the
        chunk mean (per-observation extremes are not recoverable from a
        chunk-level timing).
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        mean = total / count
        if mean < self.min:
            self.min = mean
        if mean > self.max:
            self.max = mean

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, object]:
        return _with_labels(
            {
                "type": self.kind,
                "name": self.name,
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
                "mean": self.mean,
            },
            self.labels,
        )


#: Default latency bucket upper bounds in seconds (Prometheus-style, spanning
#: sub-millisecond HTTP handlers up to multi-second simulation jobs).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class BucketHistogram:
    """Fixed-bucket histogram with streaming quantile estimation.

    Unlike :class:`Histogram` (which keeps only count/sum/min/max for the
    simulation hot loop), this instrument bins every observation into fixed
    upper-bound buckets, so the service layer can answer "what is the p99
    request latency" without storing raw samples.  An observation lands in
    the first bucket whose bound is ``>= value`` (``le`` semantics); values
    beyond the last bound land in an implicit ``+Inf`` overflow bucket.

    :meth:`quantile` interpolates linearly inside the bucket containing the
    requested rank (the Prometheus ``histogram_quantile`` estimator), so the
    estimate is always within one bucket width of the true quantile.

    Observations may carry an *exemplar* — a trace id linking the bucket
    to one concrete traced operation that landed in it (OpenMetrics-style).
    The last exemplar per bucket is kept, so a scrape of a slow bucket
    always points at a recent offending trace.  Exemplars appear in the
    JSON :meth:`snapshot` only; the Prometheus text 0.0.4 renderer
    ignores them (the format predates exemplar syntax).
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min", "max",
                 "labels", "exemplars")

    kind = "bucket_histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("bucket_histogram needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        if not math.isfinite(bounds[-1]):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing +Inf overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.labels = dict(labels or {})
        # bucket index -> (value, trace_id): the most recent exemplar.
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, exemplar: str = "") -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        if exemplar:
            self.exemplars[index] = (value, exemplar)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Cumulative per-bucket counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observations.

        Linear interpolation inside the bucket holding the target rank;
        the first bucket interpolates from a lower bound of 0 (latencies
        are non-negative), the overflow bucket reports the observed max.
        Empty histograms report 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if c and cum >= rank:
                if i == len(self.buckets):
                    return self.max  # overflow bucket: no upper bound
                lo = self.buckets[i - 1] if i else 0.0
                hi = self.buckets[i]
                frac = min(1.0, max(0.0, (rank - (cum - c)) / c))
                return lo + (hi - lo) * frac
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The SLO staples: estimated p50, p95, and p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict[str, object]:
        snap: dict[str, object] = {
            "type": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": [
                [bound, cum]
                for bound, cum in zip(self.buckets, self.cumulative())
            ]
            + [["+Inf", self.count]],
        }
        if self.exemplars:
            bounds = list(self.buckets) + ["+Inf"]
            snap["exemplars"] = [
                {
                    "le": bounds[index],
                    "value": value,
                    "trace_id": trace_id,
                }
                for index, (value, trace_id) in sorted(self.exemplars.items())
            ]
        snap.update(self.percentiles())
        return _with_labels(snap, self.labels)


class Timer(Histogram):
    """A histogram of durations in seconds with a context-manager helper."""

    __slots__ = ()

    kind = "timer"

    class _Timing:
        __slots__ = ("_timer", "_t0")

        def __init__(self, timer: "Timer") -> None:
            self._timer = timer
            self._t0 = 0.0

        def __enter__(self) -> "Timer._Timing":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            self._timer.observe(time.perf_counter() - self._t0)

    def time(self) -> "Timer._Timing":
        """``with timer.time(): ...`` records the block's wall duration."""
        return Timer._Timing(self)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument type."""

    __slots__ = ()

    name = ""
    kind = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0
    labels: dict[str, str] = {}
    buckets: tuple[float, ...] = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: str = "") -> None:
        pass

    def observe_many(self, total: float, count: int) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict[str, float]:
        return {}

    def cumulative(self) -> list[int]:
        return []

    class _NullTiming:
        __slots__ = ()

        def __enter__(self) -> "_NullInstrument._NullTiming":
            return self

        def __exit__(self, *exc: object) -> None:
            pass

    _TIMING = _NullTiming()

    def time(self) -> "_NullInstrument._NullTiming":
        return _NullInstrument._TIMING

    def snapshot(self) -> dict[str, object]:
        return {"type": self.kind, "name": self.name}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments with get-or-create semantics.

    >>> m = MetricsRegistry()
    >>> m.counter("writes").inc()
    >>> m.counter("writes").value
    1
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    @staticmethod
    def _key(name: str, labels: dict[str, str] | None) -> str:
        """Registry key: the name plus a canonical label rendering.

        Instruments with the same name but different labels are distinct
        time series (``http_requests{route="/jobs"}`` vs ``{route="/runs"}``)
        and live side by side in the registry.
        """
        if not labels:
            return name
        rendered = ",".join(
            f'{k}="{labels[k]}"' for k in sorted(labels)
        )
        return f"{name}{{{rendered}}}"

    def _get(self, name: str, cls: type,
             labels: dict[str, str] | None = None, **kwargs):
        key = self._key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels=labels, **kwargs)
            self._instruments[key] = instrument
            return instrument
        if type(instrument) is not cls:
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        return instrument

    def counter(self, name: str,
                labels: dict[str, str] | None = None) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str,
              labels: dict[str, str] | None = None) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str,
                  labels: dict[str, str] | None = None) -> Histogram:
        return self._get(name, Histogram, labels)

    def bucket_histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> BucketHistogram:
        """Get or create a fixed-bucket histogram.

        ``buckets`` applies only on first creation; later lookups under the
        same (name, labels) return the existing instrument unchanged.
        """
        return self._get(name, BucketHistogram, labels, buckets=buckets)

    def timer(self, name: str,
              labels: dict[str, str] | None = None) -> Timer:
        return self._get(name, Timer, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def snapshot(self) -> list[dict[str, object]]:
        """One flat dict per instrument, in registration order."""
        return [m.snapshot() for m in self._instruments.values()]  # type: ignore[attr-defined]

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write the snapshot as JSON lines (one instrument per line)."""
        path = Path(path)
        with open(path, "w") as fh:
            for snap in self.snapshot():
                fh.write(json.dumps(snap, separators=(",", ":")) + "\n")
        return path


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments do nothing; shared via :data:`NULL_METRICS`."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get(self, name: str, cls: type,
             labels: dict[str, str] | None = None, **kwargs):
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict[str, object]]:
        return []


#: Process-wide null registry; safe to share (it holds no state).
NULL_METRICS = NullMetricsRegistry()
