"""Prometheus text exposition format (version 0.0.4) for metric snapshots.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
(or a list of instrument snapshots) into the plain-text scrape format every
Prometheus-compatible collector understands::

    # TYPE deuce_http_requests_total counter
    deuce_http_requests_total{method="POST",route="/jobs",status="201"} 42
    # TYPE deuce_http_request_duration_seconds histogram
    deuce_http_request_duration_seconds_bucket{route="/jobs",le="0.005"} 40
    deuce_http_request_duration_seconds_bucket{route="/jobs",le="+Inf"} 42
    deuce_http_request_duration_seconds_sum{route="/jobs"} 0.137
    deuce_http_request_duration_seconds_count{route="/jobs"} 42

Mapping rules:

* ``Counter`` -> ``counter``; ``Gauge`` -> ``gauge``.
* ``Histogram``/``Timer`` (count/sum/min/max only) -> ``summary`` with just
  ``_sum`` and ``_count`` series (quantiles are not recoverable).
* ``BucketHistogram`` -> ``histogram`` with cumulative ``_bucket{le=...}``
  series, a terminal ``le="+Inf"`` bucket, ``_sum``, and ``_count``.

Metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (invalid
characters fold to ``_``); label names likewise (no colons); label values
are escaped per the spec (backslash, double-quote, newline).  A ``# TYPE``
line is emitted once per metric family, before its first sample.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: Prometheus content type for scrape responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """A legal metric name: invalid chars fold to ``_``, digits can't lead."""
    name = _NAME_INVALID.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name: str) -> str:
    """A legal label name (like metric names but colons are reserved)."""
    name = _LABEL_INVALID.sub("_", name) or "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def format_value(value: object) -> str:
    """Render a sample value (ints stay integral, specials per spec)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)  # type: ignore[arg-type]
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _render_labels(labels: dict[str, object], extra: dict[str, str] | None = None) -> str:
    pairs = {sanitize_label_name(str(k)): str(v) for k, v in labels.items()}
    for k, v in (extra or {}).items():
        pairs[k] = v
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def _bound_label(bound: object) -> str:
    if isinstance(bound, str):  # the snapshot's terminal "+Inf"
        return bound
    return "%g" % float(bound)  # type: ignore[arg-type]


def render_prometheus(source: "MetricsRegistry | Iterable[dict]") -> str:
    """The full exposition document for a registry or its snapshots.

    Accepts either a live registry (its :meth:`snapshot` is taken) or an
    already-materialized snapshot list, so the HTTP layer can render the
    same data it serves as JSON.  Ends with a trailing newline as the spec
    requires.
    """
    snapshot = getattr(source, "snapshot", None)
    snaps: Iterable[dict] = snapshot() if callable(snapshot) else source  # type: ignore[assignment]
    type_for = {
        "counter": "counter",
        "gauge": "gauge",
        "histogram": "summary",
        "timer": "summary",
        "bucket_histogram": "histogram",
    }
    # All samples of a family must be contiguous under one # TYPE line, but
    # label variants register in the order traffic created them — group by
    # (sanitized) family name first, keeping first-appearance order.
    families: dict[str, list[dict]] = {}
    for snap in snaps:
        if snap.get("type") in type_for:
            name = sanitize_metric_name(str(snap.get("name", "")))
            families.setdefault(name, []).append(snap)
    lines: list[str] = []
    for name, members in families.items():
        prom_type = type_for[str(members[0]["type"])]
        lines.append(f"# TYPE {name} {prom_type}")
        for snap in members:
            _render_instrument(lines, name, snap)
    return "\n".join(lines) + "\n" if lines else ""


def _render_instrument(lines: list[str], name: str, snap: dict) -> None:
    """Append one instrument's sample lines."""
    kind = str(snap.get("type", ""))
    labels = dict(snap.get("labels") or {})
    if kind in ("counter", "gauge"):
        lines.append(
            f"{name}{_render_labels(labels)} "
            f"{format_value(snap.get('value', 0))}"
        )
        return
    if kind == "bucket_histogram":
        for bound, cum in snap.get("buckets", []):
            lines.append(
                f"{name}_bucket"
                f"{_render_labels(labels, {'le': _bound_label(bound)})} "
                f"{format_value(cum)}"
            )
    lines.append(
        f"{name}_sum{_render_labels(labels)} "
        f"{format_value(snap.get('sum', 0.0))}"
    )
    lines.append(
        f"{name}_count{_render_labels(labels)} "
        f"{format_value(snap.get('count', 0))}"
    )
