"""Baseline regression gate: compare ledger runs against pinned baselines.

The paper's headline claim — DEUCE cuts the ~50% flip rate of full
counter-mode re-encryption to ~24% — must survive every refactor.  This
module turns that into an enforced check: ``baselines/`` pins the expected
flip rate per scheme for a small deterministic suite (plus a writes/sec perf
floor), and :func:`evaluate_gate` compares the newest matching ledger runs
against those pins with a tolerance band.  ``deuce-sim gate`` exits nonzero
on any regression, and CI runs it as a required job.

Baseline files
--------------
``baselines/flip_rates.json``::

    {
      "suite": {"workload": "mcf", "n_writes": 2000, "seed": 0},
      "schemes": {
        "deuce": {"flips_pct": 10.61, "tolerance_pct": 2.0,
                  "paper_suite_avg_pct": 23.9},
        ...
      }
    }

``flips_pct`` is the pinned measurement for the baseline suite config
(deterministic: same config, same trace, same flips); ``tolerance_pct`` is
the absolute band in percentage points; ``paper_suite_avg_pct`` records the
paper's full-suite headline for context (mcf alone is sparser than the
suite average).  ``baselines/perf.json`` pins ``min_writes_per_s``, a
deliberately loose floor that catches order-of-magnitude write-path
regressions without flaking on slow CI machines.

Re-pinning: run the pinned suite, inspect the numbers, then
``deuce-sim gate --pin`` rewrites ``flips_pct`` from the newest matching
ledger runs (tolerances and the perf floor are never auto-rewritten).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.ledger import RunLedger, RunManifest

#: Default baselines directory (repo root / current working directory).
DEFAULT_BASELINES_DIR = "baselines"

FLIP_BASELINE_FILE = "flip_rates.json"
PERF_BASELINE_FILE = "perf.json"


class GateError(Exception):
    """A gate misconfiguration (missing baseline file or entry).

    Distinct from a *failing* gate: a failure is a regression verdict, an
    error means the gate could not be evaluated at all.  Both make
    ``deuce-sim gate`` exit nonzero, with different exit codes.
    """


@dataclass(frozen=True)
class GateCheck:
    """One comparison: a measured value against its tolerance band."""

    name: str
    kind: str  # "flips" | "perf"
    run_id: str
    value: float
    expected: float
    lo: float
    hi: float
    passed: bool
    detail: str = ""

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] {self.name}: {self.value:.3f} "
            f"(band {self.lo:.3f}..{self.hi:.3f}, run {self.run_id})"
            + (f" — {self.detail}" if self.detail else "")
        )


@dataclass
class GateReport:
    """Every check the gate evaluated, plus the overall verdict."""

    checks: list[GateCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [c.render() for c in self.checks]
        n_fail = len(self.failures)
        lines.append(
            f"gate: {len(self.checks) - n_fail}/{len(self.checks)} checks "
            f"passed — {'OK' if self.passed else f'{n_fail} REGRESSION(S)'}"
        )
        return "\n".join(lines)


def load_baselines(directory: str | Path) -> dict[str, object]:
    """Load and validate the baselines directory; raises :class:`GateError`."""
    directory = Path(directory)
    flips_path = directory / FLIP_BASELINE_FILE
    if not flips_path.exists():
        raise GateError(
            f"missing baseline file {flips_path} — pin baselines first "
            "(see 'Run ledger & regression gating' in README.md)"
        )
    flips = json.loads(flips_path.read_text())
    if "schemes" not in flips or not flips["schemes"]:
        raise GateError(f"{flips_path} has no 'schemes' entries")
    perf_path = directory / PERF_BASELINE_FILE
    perf = json.loads(perf_path.read_text()) if perf_path.exists() else {}
    return {"flips": flips, "perf": perf, "directory": directory}


def suite_configs(baselines_dir: str | Path = DEFAULT_BASELINES_DIR):
    """The exact pinned-suite :class:`SimConfig` per baselined scheme.

    Decoded through :meth:`SimConfig.from_dict`, so a typo'd key in the
    baseline ``suite`` block is a :class:`GateError` with the config
    module's did-you-mean message instead of a silently ignored field.
    CI (and anyone re-pinning) runs exactly these configs; they are also
    valid ``POST /jobs`` sweep payloads for the job service.
    """
    from repro.sim.config import ConfigError, SimConfig

    baselines = load_baselines(baselines_dir)
    flips = baselines["flips"]
    suite: dict = dict(flips.get("suite", {}))  # type: ignore[union-attr]
    configs: dict[str, SimConfig] = {}
    for scheme in flips["schemes"]:  # type: ignore[index]
        try:
            configs[scheme] = SimConfig.from_dict({**suite, "scheme": scheme})
        except ConfigError as exc:
            raise GateError(
                f"bad 'suite' block in {FLIP_BASELINE_FILE}: {exc}"
            ) from exc
    return configs


def _band(expected: float, tolerance: float, scale: float) -> tuple[float, float]:
    tol = tolerance * scale
    return expected - tol, expected + tol


def check_flips(
    manifest: RunManifest,
    baseline: dict[str, object],
    *,
    tolerance_scale: float = 1.0,
) -> GateCheck:
    """Gate one run manifest against one scheme's flip-rate baseline entry."""
    expected = float(baseline["flips_pct"])  # type: ignore[arg-type]
    tolerance = float(baseline.get("tolerance_pct", 2.0))  # type: ignore[union-attr]
    lo, hi = _band(expected, tolerance, tolerance_scale)
    value = manifest.summary.get("flips_pct")
    if not isinstance(value, (int, float)):
        raise GateError(
            f"run {manifest.run_id} has no 'flips_pct' in its summary"
        )
    return GateCheck(
        name=f"flips:{manifest.scheme}/{manifest.workload}",
        kind="flips",
        run_id=manifest.run_id,
        value=float(value),
        expected=expected,
        lo=lo,
        hi=hi,
        passed=lo <= float(value) <= hi,
    )


def check_perf(
    manifest: RunManifest, min_writes_per_s: float
) -> GateCheck:
    """Gate one run's throughput against the perf floor."""
    value = manifest.writes_per_s
    return GateCheck(
        name=f"perf:{manifest.scheme}/{manifest.workload}",
        kind="perf",
        run_id=manifest.run_id,
        value=value,
        expected=min_writes_per_s,
        lo=min_writes_per_s,
        hi=float("inf"),
        passed=value >= min_writes_per_s,
        detail="writes/s floor",
    )


def evaluate_gate(
    ledger: RunLedger,
    baselines_dir: str | Path = DEFAULT_BASELINES_DIR,
    *,
    tolerance_scale: float = 1.0,
    run_ids: list[str] | None = None,
) -> GateReport:
    """Gate the newest matching ledger runs against the pinned baselines.

    For every scheme in ``flip_rates.json`` the newest ``kind="run"``
    manifest for the baseline suite's workload is checked against the
    scheme's tolerance band, plus the perf floor when ``perf.json`` pins
    one.  ``run_ids`` restricts the gate to explicit runs instead (each
    run's scheme must have a baseline entry — a missing entry is a
    :class:`GateError`, not a silent pass).

    Raises
    ------
    GateError
        Missing baseline files/entries, or no matching run in the ledger.
    """
    baselines = load_baselines(baselines_dir)
    flips = baselines["flips"]
    schemes: dict[str, dict] = flips["schemes"]  # type: ignore[index,assignment]
    suite: dict = flips.get("suite", {})  # type: ignore[union-attr]
    workload = suite.get("workload")
    min_writes_per_s = float(
        baselines["perf"].get("min_writes_per_s", 0.0)  # type: ignore[union-attr]
    )

    report = GateReport()
    if run_ids:
        targets = [ledger.get(run_id) for run_id in run_ids]
        for manifest in targets:
            baseline = schemes.get(manifest.scheme)
            if baseline is None:
                raise GateError(
                    f"no baseline entry for scheme {manifest.scheme!r} "
                    f"(run {manifest.run_id}); add it to "
                    f"{Path(baselines_dir) / FLIP_BASELINE_FILE} or gate a "
                    "baselined scheme"
                )
            report.checks.append(
                check_flips(
                    manifest, baseline, tolerance_scale=tolerance_scale
                )
            )
            if min_writes_per_s > 0:
                report.checks.append(check_perf(manifest, min_writes_per_s))
        return report

    for scheme, baseline in schemes.items():
        manifest = ledger.latest(kind="run", scheme=scheme, workload=workload)
        if manifest is None:
            raise GateError(
                f"no ledger run for scheme {scheme!r}"
                + (f" on workload {workload!r}" if workload else "")
                + " — run the pinned suite first (see CI's gate job)"
            )
        report.checks.append(
            check_flips(manifest, baseline, tolerance_scale=tolerance_scale)
        )
        if min_writes_per_s > 0:
            report.checks.append(check_perf(manifest, min_writes_per_s))
    return report


def pin_baselines(
    ledger: RunLedger,
    baselines_dir: str | Path = DEFAULT_BASELINES_DIR,
) -> Path:
    """Rewrite ``flips_pct`` pins from the newest matching ledger runs.

    Intentional re-pinning after a legitimate behaviour change: tolerances,
    the suite config, paper context fields, and the perf floor are all
    preserved — only each scheme's measured ``flips_pct`` is refreshed.
    Raises :class:`GateError` when a baselined scheme has no ledger run.
    """
    baselines = load_baselines(baselines_dir)
    flips = baselines["flips"]
    schemes: dict[str, dict] = flips["schemes"]  # type: ignore[index,assignment]
    workload = flips.get("suite", {}).get("workload")  # type: ignore[union-attr]
    for scheme, baseline in schemes.items():
        manifest = ledger.latest(kind="run", scheme=scheme, workload=workload)
        if manifest is None:
            raise GateError(
                f"cannot pin {scheme!r}: no matching run in the ledger"
            )
        value = manifest.summary.get("flips_pct")
        if not isinstance(value, (int, float)):
            raise GateError(
                f"cannot pin {scheme!r}: run {manifest.run_id} has no "
                "'flips_pct' summary metric"
            )
        baseline["flips_pct"] = round(float(value), 3)
        baseline["pinned_run_id"] = manifest.run_id
        baseline["pinned_git_rev"] = manifest.git_rev
    path = Path(baselines_dir) / FLIP_BASELINE_FILE
    path.write_text(json.dumps(flips, indent=2, sort_keys=True) + "\n")
    return path
