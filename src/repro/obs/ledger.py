"""Run ledger: persist every run's evidence as a queryable manifest.

PR 2 gave runs live telemetry; this module makes it *durable*.  Every
``run``/``experiment``/sweep records a :class:`RunManifest` — run id, UTC
timestamp, git revision, interpreter/numpy versions, a hash of the exact
config, per-phase wall times lifted from tracer spans, summary metrics, and
paths to any metrics/trace/series artifacts — into an append-only ledger
directory (``.deuce-runs/`` by default):

.. code-block:: text

    .deuce-runs/
        index.jsonl              # one manifest per line, append-only
        <run_id>/
            manifest.json        # the same manifest, pretty-printed
            metrics.jsonl        # whatever artifacts the run attached
            series.csv
            ...

:class:`RunLedger` is the API: :meth:`~RunLedger.record` appends,
:meth:`~RunLedger.list`/:meth:`~RunLedger.get`/:meth:`~RunLedger.latest`
query (with scheme/workload/kind filters), :meth:`~RunLedger.diff` compares
two runs' summaries, and :meth:`~RunLedger.gc` applies retention.  The
regression gate (:mod:`repro.obs.gate`) and the HTML dashboard
(:mod:`repro.analysis.dashboard`) are both built on this API.

The ledger directory defaults to ``.deuce-runs/`` under the current working
directory; the ``DEUCE_RUNS_DIR`` environment variable overrides it (the
test suite points it at a temp dir so runs never dirty the repo).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import shutil
import subprocess
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids import cycles
    from repro.sim.config import SimConfig
    from repro.sim.results import RunResult

#: Environment variable overriding the default ledger directory.
RUNS_DIR_ENV = "DEUCE_RUNS_DIR"

#: Default ledger directory (relative to the current working directory).
DEFAULT_RUNS_DIR = ".deuce-runs"

#: Manifest schema version (bump on breaking manifest changes).
SCHEMA_VERSION = 1


class LedgerError(Exception):
    """Raised for ledger lookups that cannot be satisfied."""


def default_runs_dir() -> Path:
    """The ledger root: ``$DEUCE_RUNS_DIR`` or ``./.deuce-runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR)


def git_revision(cwd: str | Path | None = None) -> str:
    """The current short git revision, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def config_dict(config: "SimConfig") -> dict[str, object]:
    """A JSON-safe dict of a :class:`~repro.sim.config.SimConfig`.

    Thin wrapper over :meth:`SimConfig.to_dict` (kept for callers that
    predate it); the hex-encoded ``key`` round-trips through
    :meth:`SimConfig.from_dict`.
    """
    return config.to_dict()


def config_hash(config: dict[str, object]) -> str:
    """Short stable hash of a config dict (manifest identity/join key)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def new_run_id(clock=time.time) -> str:
    """Sortable unique run id: UTC timestamp plus a random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(clock()))
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunManifest:
    """Everything needed to identify, compare, and audit one run.

    Attributes
    ----------
    run_id:
        Sortable unique id (also the artifact directory name).
    kind:
        ``"run"`` (one simulation), ``"experiment"`` (a figure/table),
        ``"sweep-cell"`` (one cell of a parallel sweep), or ``"bench"``.
    label:
        Freeform grouping key (experiment id, bench id, CLI ``--label``).
    created_utc:
        ISO-8601 UTC timestamp.
    git_rev / python_version / numpy_version:
        Provenance of the code that produced the run.
    config / config_hash:
        The JSON-safe run configuration and its short hash.
    workload / scheme / n_writes:
        Denormalized query keys (empty/zero for non-run kinds).
    wall_time_s / writes_per_s:
        End-to-end wall time and throughput (the perf-gate inputs).
    phases:
        Per-phase wall seconds lifted from tracer spans
        (``{"scheme.write": 0.41, "pcm.apply": 0.08, ...}``).
    summary:
        Flat summary metrics (:meth:`RunResult.summary_row` for runs,
        suite averages for experiments, bench payloads for benches).
    artifacts:
        Artifact name -> path.  Paths are relative to the run's ledger
        directory unless absolute (externally-written files).
    """

    run_id: str
    kind: str
    label: str = ""
    created_utc: str = ""
    git_rev: str = ""
    python_version: str = ""
    numpy_version: str = ""
    config: dict[str, object] = field(default_factory=dict)
    config_hash: str = ""
    workload: str = ""
    scheme: str = ""
    n_writes: int = 0
    wall_time_s: float = 0.0
    writes_per_s: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)
    summary: dict[str, object] = field(default_factory=dict)
    artifacts: dict[str, str] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def build_manifest(
    *,
    kind: str,
    label: str = "",
    config: dict[str, object] | None = None,
    workload: str = "",
    scheme: str = "",
    n_writes: int = 0,
    wall_time_s: float = 0.0,
    phases: dict[str, float] | None = None,
    summary: dict[str, object] | None = None,
    run_id: str = "",
) -> RunManifest:
    """A manifest with identity/provenance fields filled in.

    ``run_id`` pins the id when the caller allocated one up front (e.g. a
    checkpointed run whose artifact dir must exist before the run starts);
    empty draws a fresh :func:`new_run_id`.
    """
    import numpy as np

    cfg = config or {}
    return RunManifest(
        run_id=run_id or new_run_id(),
        kind=kind,
        label=label,
        created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        git_rev=git_revision(),
        python_version=platform.python_version(),
        numpy_version=np.__version__,
        config=cfg,
        config_hash=config_hash(cfg) if cfg else "",
        workload=workload,
        scheme=scheme,
        n_writes=n_writes,
        wall_time_s=round(wall_time_s, 6),
        writes_per_s=(
            round(n_writes / wall_time_s, 3) if wall_time_s > 0 else 0.0
        ),
        phases={k: round(v, 6) for k, v in (phases or {}).items()},
        summary=dict(summary or {}),
    )


def manifest_from_result(
    result: "RunResult",
    config: "SimConfig",
    *,
    kind: str = "run",
    label: str = "",
    phases: dict[str, float] | None = None,
    run_id: str = "",
) -> RunManifest:
    """Build a run manifest from a finished simulation."""
    return build_manifest(
        kind=kind,
        label=label,
        config=config_dict(config),
        workload=config.workload,
        scheme=config.scheme,
        n_writes=result.n_writes,
        wall_time_s=result.wall_time_s,
        phases=phases,
        summary=result.summary_row(),
        run_id=run_id,
    )


class PhaseAccumulator:
    """Tracer sink summing span durations by name.

    Attach as (or tee into) a :class:`~repro.obs.tracing.Tracer` sink and the
    run's per-phase wall times (``trace.gen``, ``install``, ``scheme.write``,
    ``pad.fetch``, ``pcm.apply``, ...) accumulate in :attr:`totals`, ready to
    drop into a manifest's ``phases`` field.  Events pass through to an
    optional inner sink, so a run can both stream a JSONL trace and feed the
    ledger from one tracer.
    """

    def __init__(self, inner=None) -> None:
        self.totals: dict[str, float] = {}
        self.inner = inner

    def emit(self, record: dict[str, object]) -> None:
        if record.get("type") == "span":
            name = str(record.get("name", ""))
            dur = record.get("dur", 0.0)
            if isinstance(dur, (int, float)):
                self.totals[name] = self.totals.get(name, 0.0) + dur
        if self.inner is not None:
            self.inner.emit(record)

    def close(self) -> None:
        if self.inner is not None:
            close = getattr(self.inner, "close", None)
            if close is not None:
                close()


class RunLedger:
    """Append-only ledger of run manifests with per-run artifact dirs.

    Parameters
    ----------
    root:
        Ledger directory; ``None`` uses :func:`default_runs_dir` (the
        ``DEUCE_RUNS_DIR`` env var or ``./.deuce-runs``).  Created lazily on
        first :meth:`record`.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_runs_dir()

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    # -- write side ---------------------------------------------------------

    def record(
        self,
        manifest: RunManifest,
        artifacts: dict[str, str | Path] | None = None,
        artifact_text: dict[str, str] | None = None,
    ) -> RunManifest:
        """Persist a manifest (and optional artifacts); returns it.

        ``artifacts`` maps artifact names to existing files, copied into the
        run's directory (names keep the source suffix).  ``artifact_text``
        maps file names to content written directly.  Both are registered in
        ``manifest.artifacts`` before it is sealed.
        """
        run_dir = self.run_dir(manifest.run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        for name, source in (artifacts or {}).items():
            source = Path(source)
            if source.exists():
                dest = run_dir / (name + "".join(source.suffixes))
                if source.resolve() != dest.resolve():
                    shutil.copyfile(source, dest)
                manifest.artifacts[name] = dest.name
        for filename, content in (artifact_text or {}).items():
            (run_dir / filename).write_text(content)
            name = filename.rsplit(".", 1)[0]
            manifest.artifacts[name] = filename
        line = json.dumps(manifest.to_dict(), sort_keys=True)
        (run_dir / "manifest.json").write_text(
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        with open(self.index_path, "a") as fh:
            fh.write(line + "\n")
        return manifest

    def record_result(
        self,
        result: "RunResult",
        config: "SimConfig",
        *,
        kind: str = "run",
        label: str = "",
        phases: dict[str, float] | None = None,
        artifacts: dict[str, str | Path] | None = None,
        artifact_text: dict[str, str] | None = None,
        run_id: str = "",
    ) -> RunManifest:
        """Build a manifest from a finished run and :meth:`record` it."""
        manifest = manifest_from_result(
            result, config, kind=kind, label=label, phases=phases,
            run_id=run_id,
        )
        return self.record(
            manifest, artifacts=artifacts, artifact_text=artifact_text
        )

    # -- read side ----------------------------------------------------------

    def list(
        self,
        *,
        kind: str | None = None,
        scheme: str | None = None,
        workload: str | None = None,
        label: str | None = None,
        limit: int | None = None,
    ) -> list[RunManifest]:
        """Manifests in recording order, optionally filtered.

        ``limit`` keeps only the *newest* N after filtering.
        """
        manifests = [
            m
            for m in self._read_index()
            if (kind is None or m.kind == kind)
            and (scheme is None or m.scheme == scheme)
            and (workload is None or m.workload == workload)
            and (label is None or m.label == label)
        ]
        if limit is not None and limit >= 0:
            manifests = manifests[len(manifests) - limit:]
        return manifests

    def get(self, run_id: str) -> RunManifest:
        """The manifest for one run id (manifest.json, index fallback)."""
        path = self.run_dir(run_id) / "manifest.json"
        if path.exists():
            return RunManifest.from_dict(json.loads(path.read_text()))
        for manifest in self._read_index():
            if manifest.run_id == run_id:
                return manifest
        raise LedgerError(f"run {run_id!r} not found in ledger {self.root}")

    def latest(self, **filters: str | None) -> RunManifest | None:
        """The newest manifest matching the :meth:`list` filters, if any."""
        manifests = self.list(**filters)  # type: ignore[arg-type]
        return manifests[-1] if manifests else None

    def config_of(self, manifest: RunManifest) -> "SimConfig | None":
        """The manifest's embedded config decoded back to a SimConfig.

        ``None`` when the manifest carries no config (experiments,
        benches).  The decode goes through the strict
        :meth:`~repro.sim.config.SimConfig.from_dict`, so a manifest whose
        config no longer matches the schema raises
        :class:`~repro.sim.config.ConfigError` rather than silently
        misreproducing a run.
        """
        if not manifest.config:
            return None
        from repro.sim.config import SimConfig

        return SimConfig.from_dict(dict(manifest.config))

    def diff(self, run_id_a: str, run_id_b: str) -> dict[str, dict[str, object]]:
        """Numeric summary metrics side by side: ``{metric: {a, b, delta}}``.

        Includes ``wall_time_s`` so perf drift shows up next to the
        simulation metrics; non-numeric summary values are compared for
        equality and reported with ``delta=None`` when they differ.  When
        both runs embed configs, differing config fields are surfaced as
        ``config.<field>`` rows (decoded through the strict
        :meth:`SimConfig.from_dict <repro.sim.config.SimConfig.from_dict>`
        so equivalent representations — e.g. a hex vs bytes key — never
        show as spurious deltas).
        """
        a, b = self.get(run_id_a), self.get(run_id_b)
        rows: dict[str, dict[str, object]] = {}
        keys = list(
            dict.fromkeys([*a.summary, *b.summary, "wall_time_s"])
        )
        for key in keys:
            va = a.wall_time_s if key == "wall_time_s" else a.summary.get(key)
            vb = b.wall_time_s if key == "wall_time_s" else b.summary.get(key)
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                rows[key] = {"a": va, "b": vb, "delta": round(vb - va, 6)}
            elif va != vb:
                rows[key] = {"a": va, "b": vb, "delta": None}
        config_a, config_b = self.config_of(a), self.config_of(b)
        if config_a is not None and config_b is not None:
            dict_a, dict_b = config_a.to_dict(), config_b.to_dict()
            for key in dict_a:
                va, vb = dict_a[key], dict_b[key]
                if va == vb:
                    continue
                if isinstance(va, (int, float)) and isinstance(
                    vb, (int, float)
                ) and not isinstance(va, bool) and not isinstance(vb, bool):
                    rows[f"config.{key}"] = {
                        "a": va, "b": vb, "delta": round(vb - va, 6)
                    }
                else:
                    rows[f"config.{key}"] = {"a": va, "b": vb, "delta": None}
        return rows

    def gc(self, keep: int) -> list[str]:
        """Retention: drop all but the newest ``keep`` runs; returns removed ids.

        Deletes the pruned runs' artifact directories *before* rewriting the
        index to the surviving manifests.  The order matters for crash
        safety: a dangling index row (dir gone, row still present) is
        visible and re-prunable on the next gc, whereas an orphaned artifact
        directory (row gone, dir still present) would never be looked at
        again and would leak disk forever.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        manifests = self._read_index()
        cut = max(0, len(manifests) - keep)
        pruned, kept = manifests[:cut], manifests[cut:]
        if not pruned:
            return []
        removed = []
        for manifest in pruned:
            run_dir = self.run_dir(manifest.run_id)
            if run_dir.is_dir():
                shutil.rmtree(run_dir, ignore_errors=True)
            removed.append(manifest.run_id)
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w") as fh:
            for manifest in kept:
                fh.write(json.dumps(manifest.to_dict(), sort_keys=True) + "\n")
        tmp.replace(self.index_path)
        return removed

    def _read_index(self) -> list[RunManifest]:
        if not self.index_path.exists():
            return []
        manifests = []
        with open(self.index_path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    manifests.append(RunManifest.from_dict(json.loads(line)))
        return manifests

    def __len__(self) -> int:
        return len(self._read_index())

    def __iter__(self) -> Iterable[RunManifest]:
        return iter(self._read_index())
