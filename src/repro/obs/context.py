"""Trace-context propagation across processes.

A :class:`TraceContext` names one causally-linked trace (a job, a sweep,
a run) and anchors its clock.  It carries:

- ``trace_id`` — shared by every span lane in the trace.
- ``span_id`` / ``parent_id`` — this lane's node in the causality tree
  (``parent_id`` is ``""`` for the root).
- ``epoch_unix`` + ``perf_origin`` — a wall-clock anchor paired with the
  ``time.perf_counter`` reading taken at the same instant, so offline
  tools can convert any ``perf_counter`` timestamp ``ts`` recorded in
  the same process to wall time::

      wall = epoch_unix + (ts - perf_origin)

- ``pid`` — the anchoring process.

Contexts are tiny frozen dataclasses and pickle cleanly, so they ride in
the existing sweep cell payload.  A worker process MUST call
:meth:`TraceContext.reanchor` after fork/spawn: ``perf_counter`` origins
are per-process, so the parent's anchor is meaningless in the child.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any


def _new_id(nbytes: int = 8) -> str:
    """A random lowercase-hex id (16 chars by default)."""
    return uuid.uuid4().hex[: nbytes * 2]


@dataclass(frozen=True)
class TraceContext:
    """One lane's identity + clock anchor within a correlated trace."""

    trace_id: str
    span_id: str
    parent_id: str = ""
    epoch_unix: float = 0.0
    perf_origin: float = 0.0
    pid: int = 0

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a root context anchored to this process's clocks."""
        return cls(
            trace_id=_new_id(),
            span_id=_new_id(),
            parent_id="",
            epoch_unix=time.time(),
            perf_origin=time.perf_counter(),
            pid=os.getpid(),
        )

    def child(self) -> "TraceContext":
        """A child lane: same trace, new span id, parented under us.

        The clock anchor is re-taken so the child lane is self-anchored
        even when it stays in the same process.
        """
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self.span_id,
            epoch_unix=time.time(),
            perf_origin=time.perf_counter(),
            pid=os.getpid(),
        )

    def reanchor(self) -> "TraceContext":
        """Re-take the clock anchor in the *current* process.

        Identity (trace/span/parent ids) is preserved; only the pid and
        clock pair change.  Call this first thing inside a worker
        process before recording any span.
        """
        return replace(
            self,
            epoch_unix=time.time(),
            perf_origin=time.perf_counter(),
            pid=os.getpid(),
        )

    def to_wall(self, ts: float) -> float:
        """Convert a ``perf_counter`` timestamp from this lane to unix time."""
        return self.epoch_unix + (ts - self.perf_origin)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "epoch_unix": self.epoch_unix,
            "perf_origin": self.perf_origin,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=str(data.get("parent_id", "")),
            epoch_unix=float(data.get("epoch_unix", 0.0)),
            perf_origin=float(data.get("perf_origin", 0.0)),
            pid=int(data.get("pid", 0)),
        )
