"""Offline trace stitching: merge JSONL lanes, export, and report.

A correlated trace on disk is a directory of JSONL lane files (see
:class:`repro.obs.tracing.JsonlSink`), one per process/role::

    traces/<job_id>/
        job.jsonl       service-side job lifecycle spans
        sweep.jsonl     sweep coordination lane
        cell-0.jsonl    worker lanes (one per sweep cell)
        cell-1.jsonl

Each file opens with a ``{"type": "meta"}`` record carrying the lane's
:class:`~repro.obs.context.TraceContext` identity (trace/span/parent
ids) and its clock anchor (pid, ``epoch_unix``, ``perf_origin``).
Causality lives in the meta records — hot-loop span records stay id-free
— and lanes are merged onto one wall-clock axis via
``wall = epoch_unix + (ts - perf_origin)``.

:func:`to_chrome_trace` emits the Chrome trace-event JSON format (an
object with a ``traceEvents`` array of ``"X"`` complete events in
microseconds), which loads directly in Perfetto or ``chrome://tracing``.
:func:`build_report` renders a text summary: critical path, top span
names, and a sweep straggler table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable


@dataclass
class Lane:
    """One JSONL trace file: an anchored, causally-identified span lane."""

    name: str
    path: Path
    pid: int = 0
    epoch_unix: float = 0.0
    perf_origin: float = 0.0
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""
    records: list[dict[str, Any]] = field(default_factory=list)

    def to_wall(self, ts: float) -> float:
        return self.epoch_unix + (ts - self.perf_origin)

    @property
    def wall_start(self) -> float:
        times = [self.to_wall(r["ts"]) for r in self.records if "ts" in r]
        return min(times) if times else self.epoch_unix

    @property
    def wall_end(self) -> float:
        times = [
            self.to_wall(r["ts"] + r.get("dur", 0.0))
            for r in self.records
            if "ts" in r
        ]
        return max(times) if times else self.epoch_unix

    @property
    def duration_s(self) -> float:
        return max(0.0, self.wall_end - self.wall_start)


def _generation_files(path: Path) -> list[Path]:
    """``path`` plus its rotated generations, oldest first."""
    gens: list[tuple[int, Path]] = []
    for cand in path.parent.glob(path.name + ".*"):
        suffix = cand.name[len(path.name) + 1 :]
        if suffix.isdigit():
            gens.append((int(suffix), cand))
    ordered = [p for _, p in sorted(gens, reverse=True)]  # .N oldest
    if path.exists():
        ordered.append(path)
    return ordered


def load_lane(path: str | Path) -> Lane:
    """Parse one lane file (including rotated generations, oldest first)."""
    path = Path(path)
    name = path.name
    for ext in (".jsonl", ".json"):
        if name.endswith(ext):
            name = name[: -len(ext)]
    lane = Lane(name=name, path=path)
    seen_meta = False
    for gen in _generation_files(path):
        for line in gen.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # tolerate a torn final line
            if record.get("type") == "meta":
                if not seen_meta:
                    seen_meta = True
                    lane.pid = int(record.get("pid", 0))
                    lane.epoch_unix = float(record.get("epoch_unix", 0.0))
                    lane.perf_origin = float(record.get("perf_origin", 0.0))
                    lane.trace_id = str(record.get("trace_id", ""))
                    lane.span_id = str(record.get("span_id", ""))
                    lane.parent_id = str(record.get("parent_id", ""))
                    if record.get("lane"):
                        lane.name = str(record["lane"])
                continue
            lane.records.append(record)
    return lane


def load_trace(path: str | Path) -> list[Lane]:
    """Load a trace from a lane file or a directory of lane files."""
    path = Path(path)
    if path.is_dir():
        files = sorted(
            p
            for p in path.iterdir()
            if p.name.endswith(".jsonl") and p.is_file()
        )
        if not files:
            raise FileNotFoundError(f"no .jsonl lane files in {path}")
        lanes = [load_lane(p) for p in files]
    else:
        if not path.exists():
            raise FileNotFoundError(str(path))
        lanes = [load_lane(path)]
    # Stable order: root lanes first, then by wall start.
    lanes.sort(key=lambda ln: (bool(ln.parent_id), ln.wall_start, ln.name))
    return lanes


# --------------------------------------------------------------------------
# Chrome trace-event export


def to_chrome_trace(lanes: Iterable[Lane]) -> dict[str, Any]:
    """Render lanes as a Chrome trace-event JSON object.

    All timestamps are converted to a shared wall-clock axis and
    normalized so the earliest record sits at ``ts=0`` (microseconds, as
    the format requires).  Each lane becomes one thread row; processes
    group rows by pid.
    """
    lanes = list(lanes)
    events: list[dict[str, Any]] = []
    starts = [ln.wall_start for ln in lanes if ln.records]
    t0 = min(starts) if starts else 0.0

    tids: dict[tuple[int, str], int] = {}
    next_tid: dict[int, int] = {}
    for lane in lanes:
        tid = next_tid.get(lane.pid, 1)
        next_tid[lane.pid] = tid + 1
        tids[(lane.pid, lane.name)] = tid

    named_pids: set[int] = set()
    for lane in lanes:
        tid = tids[(lane.pid, lane.name)]
        if lane.pid not in named_pids:
            named_pids.add(lane.pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": lane.pid,
                    "tid": 0,
                    "args": {"name": f"pid {lane.pid}"},
                }
            )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": lane.pid,
                "tid": tid,
                "args": {
                    "name": lane.name
                    + (f" (parent {lane.parent_id})" if lane.parent_id else "")
                },
            }
        )
        for record in lane.records:
            if "ts" not in record:
                continue
            wall_us = (lane.to_wall(record["ts"]) - t0) * 1e6
            args = {
                k: v
                for k, v in record.items()
                if k not in ("type", "name", "ts", "dur")
            }
            if record.get("type") == "span":
                events.append(
                    {
                        "ph": "X",
                        "name": record.get("name", "?"),
                        "cat": "span",
                        "ts": round(wall_us, 3),
                        "dur": round(record.get("dur", 0.0) * 1e6, 3),
                        "pid": lane.pid,
                        "tid": tid,
                        "args": args,
                    }
                )
            else:
                events.append(
                    {
                        "ph": "i",
                        "name": record.get("name", "?"),
                        "cat": "event",
                        "ts": round(wall_us, 3),
                        "pid": lane.pid,
                        "tid": tid,
                        "s": "t",
                        "args": args,
                    }
                )
    trace_ids = sorted({ln.trace_id for ln in lanes if ln.trace_id})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_ids[0] if trace_ids else "",
            "lanes": len(lanes),
            "epoch_unix": t0,
        },
    }


def export_chrome_trace(
    trace_path: str | Path, out_path: str | Path
) -> dict[str, Any]:
    """Load, convert and write; returns the trace object for inspection."""
    trace = to_chrome_trace(load_trace(trace_path))
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trace) + "\n")
    return trace


# --------------------------------------------------------------------------
# Text report


def _top_spans(
    lanes: list[Lane], top: int
) -> list[tuple[str, float, int]]:
    totals: dict[str, list[float]] = {}
    for lane in lanes:
        for record in lane.records:
            if record.get("type") != "span":
                continue
            slot = totals.setdefault(record.get("name", "?"), [0.0, 0])
            slot[0] += record.get("dur", 0.0)
            slot[1] += 1
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])
    return [(name, dur, int(count)) for name, (dur, count) in ranked[:top]]


def _critical_path(lanes: list[Lane]) -> list[tuple[int, str, float]]:
    """(depth, label, seconds) rows: roots, then each level's slowest child."""
    by_parent: dict[str, list[Lane]] = {}
    ids = {ln.span_id for ln in lanes if ln.span_id}
    roots: list[Lane] = []
    for lane in lanes:
        if lane.parent_id and lane.parent_id in ids:
            by_parent.setdefault(lane.parent_id, []).append(lane)
        else:
            roots.append(lane)
    rows: list[tuple[int, str, float]] = []

    def descend(lane: Lane, depth: int) -> None:
        rows.append((depth, lane.name, lane.duration_s))
        children = by_parent.get(lane.span_id, [])
        if children:
            slowest = max(children, key=lambda ln: ln.duration_s)
            others = len(children) - 1
            if others:
                rows.append(
                    (
                        depth + 1,
                        f"(slowest of {len(children)} children)",
                        slowest.duration_s,
                    )
                )
            descend(slowest, depth + 1)

    for root in sorted(roots, key=lambda ln: -ln.duration_s):
        descend(root, 0)
    return rows


def _stragglers(lanes: list[Lane]) -> list[tuple[str, float, float]]:
    """(lane, seconds, ratio-vs-median) for worker-style lanes.

    Only leaf lanes compete: a mid-chain lane (e.g. the sweep under a
    service job) spans all its children by construction, so comparing it
    against the median cell would always flag it.
    """
    parents = {ln.parent_id for ln in lanes if ln.parent_id}
    cells = [
        ln
        for ln in lanes
        if ln.parent_id and ln.records and ln.span_id not in parents
    ]
    if len(cells) < 2:
        return []
    durations = sorted(ln.duration_s for ln in cells)
    mid = len(durations) // 2
    median = (
        durations[mid]
        if len(durations) % 2
        else (durations[mid - 1] + durations[mid]) / 2.0
    )
    rows = [
        (ln.name, ln.duration_s, ln.duration_s / median if median else 0.0)
        for ln in cells
    ]
    rows.sort(key=lambda r: -r[1])
    return rows


def build_report(lanes: list[Lane], *, top: int = 10) -> str:
    """Human-readable critical-path / top-span / straggler summary."""
    lines: list[str] = []
    trace_ids = sorted({ln.trace_id for ln in lanes if ln.trace_id})
    starts = [ln.wall_start for ln in lanes if ln.records]
    ends = [ln.wall_end for ln in lanes if ln.records]
    span = (max(ends) - min(starts)) if starts else 0.0
    n_spans = sum(
        1 for ln in lanes for r in ln.records if r.get("type") == "span"
    )
    lines.append(
        f"trace {trace_ids[0] if trace_ids else '(no id)'}: "
        f"{len(lanes)} lanes, {n_spans} spans, {span:.3f}s wall"
    )
    lines.append("")
    lines.append("critical path:")
    for depth, label, secs in _critical_path(lanes):
        marker = "" if depth else "* "
        lines.append(f"  {'  ' * depth}{marker}{label:<28s} {secs:9.3f}s")
    lines.append("")
    lines.append(f"top {top} span names by total time:")
    lines.append(f"  {'name':<24s} {'total':>10s} {'count':>8s} {'share':>7s}")
    total_all = sum(d for _, d, _ in _top_spans(lanes, 10**6)) or 1.0
    for name, dur, count in _top_spans(lanes, top):
        lines.append(
            f"  {name:<24s} {dur:9.3f}s {count:8d} {100 * dur / total_all:6.1f}%"
        )
    stragglers = _stragglers(lanes)
    if stragglers:
        lines.append("")
        lines.append("sweep stragglers (vs median cell):")
        lines.append(f"  {'lane':<24s} {'wall':>10s} {'x median':>9s}")
        for name, secs, ratio in stragglers:
            flag = "  <-- straggler" if ratio >= 1.5 else ""
            lines.append(f"  {name:<24s} {secs:9.3f}s {ratio:8.2f}x{flag}")
    return "\n".join(lines) + "\n"
