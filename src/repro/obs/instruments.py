"""The observability bundle threaded through the runner.

One :class:`Instruments` object carries every backend a run might report
into: a metrics registry, a tracer, the sampling interval, and an optional
heartbeat callback (used by the parallel sweep engine to stream per-cell
progress).  The default instance is fully disabled — every backend null —
and :attr:`Instruments.enabled` is False, which the runner uses to take the
uninstrumented fast path so a disabled run is bit-identical to, and as fast
as, one with no observability code at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.profile import PhaseProfile
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer


class RunAborted(RuntimeError):
    """A run stopped cooperatively because its abort check fired.

    Raised by the instrumented write loop when ``Instruments.abort``
    returns True (job cancellation, deadline exceeded).  ``writes_done``
    records how far the run got.
    """

    def __init__(self, message: str, writes_done: int = 0) -> None:
        super().__init__(message)
        self.writes_done = writes_done


@dataclass
class Instruments:
    """Everything a run reports into.

    Attributes
    ----------
    metrics:
        Counter/gauge/histogram/timer registry (:data:`NULL_METRICS` when
        off).
    tracer:
        Span/event tracer (:data:`NULL_TRACER` when off).
    sample_interval:
        Snapshot the run state into a time-series every this many writes;
        ``0`` disables sampling.
    heartbeat:
        ``callback(writes_done, n_writes)`` invoked every
        ``heartbeat_every`` writes (parallel-sweep progress).  ``None``
        disables.
    heartbeat_every:
        Writes between heartbeat invocations; ``0`` auto-sizes to ~10 beats
        per run.
    abort:
        Optional ``() -> bool`` polled every ``abort_every`` writes; when it
        returns True the loop raises :class:`RunAborted`.  Cooperative
        cancellation for the job service and sweep engine.
    abort_every:
        Writes between abort polls; ``0`` auto-sizes (~every 512 writes).
    per_write_spans:
        When tracing is live, emit one span per write (full-fidelity JSONL
        traces).  Set False when the trace sink only aggregates per-phase
        totals (the run ledger's default), which frees the runner to execute
        chunked with one span per chunk under the same span names.
    profile:
        Optional :class:`~repro.obs.profile.PhaseProfile` the runner
        accumulates per-phase time into (pad precompute, batch diff,
        scatter-add accumulate, checkpoint, trace-gen).  Reuses timestamps
        the chunked loop already takes, so enabling it costs ~two dict ops
        per chunk phase and never changes simulation state.
    """

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)
    tracer: Tracer | NullTracer = field(default_factory=lambda: NULL_TRACER)
    sample_interval: int = 0
    heartbeat: Callable[[int, int], None] | None = None
    heartbeat_every: int = 0
    abort: Callable[[], bool] | None = None
    abort_every: int = 0
    per_write_spans: bool = True
    profile: PhaseProfile | None = None

    @property
    def enabled(self) -> bool:
        """True iff any backend would observe anything."""
        return (
            self.metrics.enabled
            or self.tracer.enabled
            or self.sample_interval > 0
            or self.heartbeat is not None
            or self.abort is not None
            or self.profile is not None
        )


#: Shared fully-disabled bundle; the runner's default.
DISABLED = Instruments()


class InstrumentedPadSource:
    """Pad-source wrapper timing every pad fetch.

    Wraps the scheme's (possibly cached) pad source when instrumentation is
    enabled, so per-write tracing can attribute time to pad generation —
    the phase that regressions in the write path most often hide in.
    Records a ``pad.fetch`` timer and counter into the metrics registry and,
    when tracing is on, one ``pad.fetch`` span per fetch.
    """

    def __init__(self, inner, metrics: MetricsRegistry, tracer=NULL_TRACER):
        self._inner = inner
        self._timer = metrics.timer("pad.fetch_s")
        self._count = metrics.counter("pad.fetches")
        self._tracer = tracer
        self._clock = time.perf_counter

    @property
    def inner(self):
        """The wrapped pad source (unwrapping chain for cache stats)."""
        return self._inner

    def _observe(self, t0: float, kind: str) -> None:
        dur = self._clock() - t0
        self._timer.observe(dur)
        self._count.inc()
        if self._tracer.enabled:
            self._tracer.span_event("pad.fetch", t0, dur, op=kind)

    def pad_block(self, address: int, counter: int, block_index: int) -> bytes:
        t0 = self._clock()
        pad = self._inner.pad_block(address, counter, block_index)
        self._observe(t0, "block")
        return pad

    def line_pad(self, address: int, counter: int, n_bytes: int) -> bytes:
        t0 = self._clock()
        pad = self._inner.line_pad(address, counter, n_bytes)
        self._observe(t0, "line")
        return pad

    def line_pad_array(self, address: int, counter: int, n_bytes: int):
        t0 = self._clock()
        pad = self._inner.line_pad_array(address, counter, n_bytes)
        self._observe(t0, "line_array")
        return pad

    def line_pads_batch(self, addresses, counters, n_bytes: int):
        """Batched fetch: one timed call attributed to every pad in it.

        Counts ``len(addresses)`` fetches and the same number of timer
        observations (via ``observe_many``), so ``pad.fetches`` and the
        ``pad.fetch_s`` count match the per-write path exactly.
        """
        t0 = self._clock()
        pads = self._inner.line_pads_batch(addresses, counters, n_bytes)
        dur = self._clock() - t0
        n = len(addresses)
        self._timer.observe_many(dur, n)
        self._count.inc(n)
        if self._tracer.enabled:
            self._tracer.span_event("pad.fetch", t0, dur, op="batch", n=n)
        return pads
