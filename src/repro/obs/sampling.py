"""Interval sampling: turn a run's aggregates into a time-series.

The paper's headline claims are *rates over time* — bit flips per write,
epoch-boundary re-encryption bursts, wear skew accumulating across a run —
but aggregates collapse all of that.  :class:`IntervalSampler` snapshots the
run state every ``interval`` writes and records the *delta* since the last
snapshot, yielding one :class:`Sample` per interval:

* flip counts and flip rate (per write, and as % of the line's data bits),
* pad-cache hits/misses and interval hit-rate,
* mode-histogram deltas (DynDEUCE deuce/fnw balance over time),
* epoch resets, full re-encryptions, and mode switches in the interval,
* per-bit wear percentiles (cumulative — wear only accumulates).

The final partial interval is always emitted (see :meth:`finalize`), so the
series *reconciles*: summing any delta column over all samples equals the
run's final aggregate, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.sim.results import RunResult

#: Wear percentiles reported per sample.
WEAR_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class Sample:
    """One interval's worth of run behaviour.

    ``write_index`` is the 1-based count of writes covered so far (the
    sample describes writes ``write_index - interval_writes + 1 ..
    write_index``).  All count fields are deltas over that interval; the
    ``wear_*`` fields are cumulative percentiles of the per-bit-position
    program counts at the sample instant.
    """

    write_index: int
    interval_writes: int
    flips: int
    data_flips: int
    meta_flips: int
    slots: int
    words_reencrypted: int
    full_reencryptions: int
    epoch_resets: int
    mode_switches: int
    mode_deltas: dict[str, int]
    pad_hits: int
    pad_misses: int
    wear_p50: float
    wear_p90: float
    wear_p99: float
    wear_max: int

    @property
    def flip_rate(self) -> float:
        """Flips per write over this interval."""
        return self.flips / self.interval_writes if self.interval_writes else 0.0

    @property
    def pad_hit_rate(self) -> float:
        lookups = self.pad_hits + self.pad_misses
        return self.pad_hits / lookups if lookups else 0.0

    def flips_pct(self, line_bits: int) -> float:
        """Interval flips as % of data bits (the paper's normalization)."""
        if not self.interval_writes or not line_bits:
            return 0.0
        return 100.0 * self.flips / (self.interval_writes * line_bits)


@dataclass
class TimeSeries:
    """The per-run sampled series attached to ``RunResult.series``."""

    interval: int
    line_bits: int
    samples: list[Sample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self.samples)

    def total(self, column: str) -> int:
        """Sum a delta column over all samples (for reconciliation)."""
        return sum(getattr(s, column) for s in self.samples)

    def mode_totals(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for s in self.samples:
            for mode, n in s.mode_deltas.items():
                totals[mode] = totals.get(mode, 0) + n
        return totals

    def as_rows(self) -> list[dict[str, object]]:
        """Flat dicts (stable columns) for CSV export and tables.

        ``mode_deltas`` is exploded into one ``mode_<name>`` column per mode
        observed anywhere in the series, so every row has the same keys.
        """
        mode_names = sorted(
            {m for s in self.samples for m in s.mode_deltas}
        )
        rows = []
        for s in self.samples:
            row: dict[str, object] = {
                "write_index": s.write_index,
                "interval_writes": s.interval_writes,
                "flips": s.flips,
                "data_flips": s.data_flips,
                "meta_flips": s.meta_flips,
                "flip_rate": round(s.flip_rate, 3),
                "flips_pct": round(s.flips_pct(self.line_bits), 3),
                "slots": s.slots,
                "words_reencrypted": s.words_reencrypted,
                "full_reencryptions": s.full_reencryptions,
                "epoch_resets": s.epoch_resets,
                "mode_switches": s.mode_switches,
                "pad_hits": s.pad_hits,
                "pad_misses": s.pad_misses,
                "pad_hit_rate": round(s.pad_hit_rate, 4),
                "wear_p50": round(s.wear_p50, 2),
                "wear_p90": round(s.wear_p90, 2),
                "wear_p99": round(s.wear_p99, 2),
                "wear_max": s.wear_max,
            }
            for mode in mode_names:
                row[f"mode_{mode}"] = s.mode_deltas.get(mode, 0)
            rows.append(row)
        return rows


class IntervalSampler:
    """Snapshots run state every N writes into a :class:`TimeSeries`.

    The sampler only *reads* the objects it is given — the result's running
    counters, the PCM array's position-write profile, and (optionally) the
    pad cache's hit/miss counters — so sampling can never perturb a run's
    outcome.

    Parameters
    ----------
    interval:
        Writes per sample (> 0).
    result:
        The :class:`~repro.sim.results.RunResult` being accumulated.
    pcm:
        The :class:`~repro.memory.pcm.PcmArray`; its ``position_writes``
        profile feeds the wear percentiles.
    pad_cache:
        A :class:`~repro.crypto.pads.CachingPadSource` (or anything with
        ``hits``/``misses`` ints), or ``None`` when the run is uncached.
    """

    def __init__(
        self,
        interval: int,
        result: "RunResult",
        pcm,
        pad_cache=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.interval = interval
        self._result = result
        self._pcm = pcm
        self._pad_cache = pad_cache
        self.series = TimeSeries(
            interval=interval, line_bits=result.line_bits
        )
        self._last_index = 0
        # Baseline at zero, not at current state: anything counted before
        # the first boundary (e.g. install-phase pad fetches) lands in the
        # first sample, so series totals always reconcile with the run's
        # final aggregates.
        self._last: dict[str, int] = dict.fromkeys(self._cumulative(), 0)

    def _cumulative(self) -> dict[str, int]:
        r = self._result
        pads = self._pad_cache
        return {
            "flips": r.total_flips,
            "data_flips": r.data_flips,
            "meta_flips": r.meta_flips,
            "slots": r.total_slots,
            "words_reencrypted": r.total_words_reencrypted,
            "full_reencryptions": r.full_reencryptions,
            "epoch_resets": r.epoch_resets,
            "mode_switches": r.mode_switches,
            "pad_hits": pads.hits if pads is not None else 0,
            "pad_misses": pads.misses if pads is not None else 0,
        }

    def record(self, write_index: int) -> Sample:
        """Emit the sample covering writes since the previous one."""
        cur = self._cumulative()
        prev = self._last
        modes = self._result.mode_histogram
        prev_modes: dict[str, int] = getattr(self, "_last_modes", {})
        mode_deltas = {
            mode: count - prev_modes.get(mode, 0)
            for mode, count in modes.items()
            if count != prev_modes.get(mode, 0)
        }
        positions = self._pcm.position_writes
        if positions.size:
            p50, p90, p99 = (
                float(v) for v in np.percentile(positions, WEAR_PERCENTILES)
            )
            wear_max = int(positions.max())
        else:
            p50 = p90 = p99 = 0.0
            wear_max = 0
        sample = Sample(
            write_index=write_index,
            interval_writes=write_index - self._last_index,
            flips=cur["flips"] - prev["flips"],
            data_flips=cur["data_flips"] - prev["data_flips"],
            meta_flips=cur["meta_flips"] - prev["meta_flips"],
            slots=cur["slots"] - prev["slots"],
            words_reencrypted=(
                cur["words_reencrypted"] - prev["words_reencrypted"]
            ),
            full_reencryptions=(
                cur["full_reencryptions"] - prev["full_reencryptions"]
            ),
            epoch_resets=cur["epoch_resets"] - prev["epoch_resets"],
            mode_switches=cur["mode_switches"] - prev["mode_switches"],
            mode_deltas=mode_deltas,
            pad_hits=cur["pad_hits"] - prev["pad_hits"],
            pad_misses=cur["pad_misses"] - prev["pad_misses"],
            wear_p50=p50,
            wear_p90=p90,
            wear_p99=p99,
            wear_max=wear_max,
        )
        self.series.samples.append(sample)
        self._last = cur
        self._last_index = write_index
        self._last_modes = dict(modes)
        return sample

    def on_write(self, write_index: int) -> None:
        """Hot-loop hook: sample iff the interval boundary was reached."""
        if write_index % self.interval == 0:
            self.record(write_index)

    def finalize(self, n_writes: int) -> TimeSeries:
        """Emit the tail partial interval (if any) and return the series."""
        if n_writes > self._last_index:
            self.record(n_writes)
        return self.series
