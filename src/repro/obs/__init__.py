"""``repro.obs`` — observability for the whole simulation stack.

Four pieces, all zero-dependency and null-by-default:

* :mod:`repro.obs.metrics` — counters, gauges, histograms, timers in a
  :class:`MetricsRegistry`; :data:`NULL_METRICS` compiles to near-zero
  overhead when disabled.
* :mod:`repro.obs.tracing` — span-based tracing of the run pipeline with a
  JSONL event sink (:class:`JsonlSink`); :data:`NULL_TRACER` when off.
* :mod:`repro.obs.context` — :class:`TraceContext` carries trace/span ids
  plus a wall-clock anchor across process boundaries, correlating service,
  sweep, and worker lanes into one trace.
* :mod:`repro.obs.profile` — :class:`PhaseProfile` accumulates per-phase
  wall time inside the chunked write loop (near-zero overhead, never
  changes simulation state).
* :mod:`repro.obs.traceexport` — merge correlated lanes into Chrome
  trace-event JSON (:func:`export_chrome_trace`) or a text report with
  critical path and stragglers (:func:`build_report`).
* :mod:`repro.obs.sampling` — :class:`IntervalSampler` snapshots flip-rate,
  pad-cache hit-rate, mode-histogram deltas, and per-bit wear percentiles
  every N writes into a :class:`TimeSeries` attached to ``RunResult``.
* :mod:`repro.obs.progress` — :class:`ProgressEvent` streams from parallel
  sweep workers; :class:`ProgressRenderer` draws a live
  ``cells done / in-flight / ETA`` line.
* :mod:`repro.obs.ledger` — durable run manifests (:class:`RunManifest`) in
  an append-only :class:`RunLedger` directory, with query/diff/GC.
* :mod:`repro.obs.gate` — baseline regression gate over the ledger:
  :func:`evaluate_gate` against pinned per-scheme flip rates and a perf
  floor.

:class:`Instruments` bundles the backends and is what
:func:`repro.sim.runner.run` accepts; :data:`DISABLED` is the shared
all-null default under which runs are bit-identical to uninstrumented code.
"""

from repro.obs.context import TraceContext
from repro.obs.gate import (
    GateCheck,
    GateError,
    GateReport,
    evaluate_gate,
    load_baselines,
    pin_baselines,
)
from repro.obs.instruments import DISABLED, Instruments, InstrumentedPadSource
from repro.obs.ledger import (
    LedgerError,
    PhaseAccumulator,
    RunLedger,
    RunManifest,
    build_manifest,
    config_hash,
    default_runs_dir,
    git_revision,
    manifest_from_result,
    new_run_id,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    BucketHistogram,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
)
from repro.obs.profile import PhaseProfile
from repro.obs.promfmt import render_prometheus
from repro.obs.progress import (
    ProgressEvent,
    ProgressRenderer,
    ProgressState,
    format_progress,
)
from repro.obs.sampling import IntervalSampler, Sample, TimeSeries
from repro.obs.traceexport import (
    Lane,
    build_report,
    export_chrome_trace,
    load_trace,
    to_chrome_trace,
)
from repro.obs.tracing import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullTracer,
    Tracer,
)

__all__ = [
    "DISABLED",
    "Instruments",
    "InstrumentedPadSource",
    "GateCheck",
    "GateError",
    "GateReport",
    "evaluate_gate",
    "load_baselines",
    "pin_baselines",
    "LedgerError",
    "PhaseAccumulator",
    "RunLedger",
    "RunManifest",
    "build_manifest",
    "config_hash",
    "default_runs_dir",
    "git_revision",
    "manifest_from_result",
    "new_run_id",
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_METRICS",
    "BucketHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Timer",
    "render_prometheus",
    "ProgressEvent",
    "ProgressRenderer",
    "ProgressState",
    "format_progress",
    "IntervalSampler",
    "Sample",
    "TimeSeries",
    "TraceContext",
    "PhaseProfile",
    "Lane",
    "build_report",
    "export_chrome_trace",
    "load_trace",
    "to_chrome_trace",
    "NULL_TRACER",
    "JsonlSink",
    "ListSink",
    "NullTracer",
    "Tracer",
]
