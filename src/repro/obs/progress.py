"""Live progress for parallel sweeps: events, state, and a line renderer.

``run_suite_parallel`` workers stream :class:`ProgressEvent` records over a
``multiprocessing`` queue — one ``start`` and one ``done`` per cell, plus
periodic ``heartbeat`` events carrying the cell's write count — and the main
process forwards them to any callable.  :class:`ProgressRenderer` is the CLI
consumer: it keeps a tally and redraws a single status line::

    [fig10  7/30 done, 4 in-flight, 41% | ETA 12s]

Events are plain frozen dataclasses so they pickle across process
boundaries; the renderer timestamps arrival with its own clock, so events
need no wall time of their own.
"""

from __future__ import annotations

import dataclasses
import math
import sys
import time
from dataclasses import dataclass, field

#: Event kinds, in lifecycle order.
START = "start"
HEARTBEAT = "heartbeat"
DONE = "done"


@dataclass(frozen=True)
class ProgressEvent:
    """One worker-side observation about one sweep cell.

    Attributes
    ----------
    kind:
        ``"start"`` | ``"heartbeat"`` | ``"done"``.
    cell:
        Cell index within the sweep (submission order).
    n_cells:
        Total cells in the sweep (constant across the sweep's events).
    writes_done / n_writes:
        The cell's progress through its trace; heartbeats update
        ``writes_done``, ``done`` events carry ``writes_done == n_writes``.
    workload / scheme:
        The cell's identity, for labelling.
    """

    kind: str
    cell: int
    n_cells: int
    writes_done: int = 0
    n_writes: int = 0
    workload: str = ""
    scheme: str = ""

    def to_dict(self) -> dict[str, object]:
        """JSON-safe form (the service streams these as JSONL)."""
        return dataclasses.asdict(self)


@dataclass
class ProgressState:
    """Tally of a sweep in flight, updated by :meth:`apply`."""

    n_cells: int = 0
    done: int = 0
    in_flight: dict[int, tuple[int, int]] = field(default_factory=dict)

    def apply(self, event: ProgressEvent) -> None:
        if event.n_cells:
            self.n_cells = event.n_cells
        if event.kind == START:
            self.in_flight[event.cell] = (0, event.n_writes)
        elif event.kind == HEARTBEAT:
            self.in_flight[event.cell] = (event.writes_done, event.n_writes)
        elif event.kind == DONE:
            self.in_flight.pop(event.cell, None)
            self.done += 1

    @property
    def completed_cells(self) -> float:
        """Done cells plus fractional credit for cells mid-trace."""
        partial = sum(
            done / total for done, total in self.in_flight.values() if total
        )
        return self.done + partial

    def eta_seconds(self, elapsed: float) -> float | None:
        """Projected seconds remaining, or ``None`` before any signal."""
        completed = self.completed_cells
        if completed <= 0 or not self.n_cells:
            return None
        remaining = self.n_cells - completed
        return max(0.0, elapsed * remaining / completed)


#: ETAs beyond this are projection noise, not information (99 hours).
MAX_ETA_S = 99 * 3600.0

#: What an unknown/absurd ETA renders as (never crashes, never garbage).
UNKNOWN_ETA = "ETA --:--"


def format_eta(seconds: float | None) -> str:
    """Human ETA; ``--:--`` when unknown, non-finite, or beyond 99 hours.

    Early in a sweep the linear projection can be ``None`` (no signal yet)
    or wildly large (one heartbeat from one slow cell); both degrade to the
    same placeholder instead of printing multi-day ETAs or raising on
    ``inf``/``nan``.
    """
    if seconds is None or not math.isfinite(seconds):
        return UNKNOWN_ETA
    if seconds < 0 or seconds > MAX_ETA_S:
        return UNKNOWN_ETA
    if seconds >= 5400:
        return f"ETA {seconds / 3600.0:.1f}h"
    if seconds >= 90:
        return f"ETA {seconds / 60.0:.1f}m"
    return f"ETA {int(round(seconds))}s"


def format_progress(
    state: ProgressState, elapsed: float, label: str = ""
) -> str:
    """Render one status line from a tally (pure; unit-testable)."""
    pct = (
        100.0 * state.completed_cells / state.n_cells if state.n_cells else 0.0
    )
    prefix = f"{label}  " if label else ""
    return (
        f"[{prefix}{state.done}/{state.n_cells} done, "
        f"{len(state.in_flight)} in-flight, {pct:.0f}% | "
        f"{format_eta(state.eta_seconds(elapsed))}]"
    )


#: Heartbeat redraw floor when the stream is not a terminal (seconds).
#: Line-per-event output in CI logs should tick, not scroll.
NON_TTY_MIN_REDRAW_S = 1.0


class ProgressRenderer:
    """Callable progress consumer that redraws one status line in place.

    Pass an instance as ``progress=`` to
    :func:`repro.sim.parallel.run_suite_parallel` (or to an experiment
    function, which forwards it).  Call :meth:`close` when the sweep ends to
    terminate the line.

    When the stream is **not a terminal** (CI logs, redirected stderr), the
    renderer degrades to line-per-event output: every drawn update is its
    own newline-terminated line, carriage returns are never emitted, and
    heartbeat redraws are floored at :data:`NON_TTY_MIN_REDRAW_S` so logs
    tick instead of scroll.

    Parameters
    ----------
    label:
        Optional sweep name shown in the line (e.g. the experiment id).
    stream:
        Output stream; defaults to ``sys.stderr`` so progress never
        corrupts piped stdout results.
    clock:
        Monotonic time source (injectable for tests).
    min_redraw_s:
        Floor between redraws; heartbeats arriving faster are tallied but
        not drawn.
    interactive:
        Force in-place (``True``) or line-per-event (``False``) rendering;
        ``None`` auto-detects via ``stream.isatty()``.
    """

    def __init__(
        self,
        label: str = "",
        stream=None,
        clock=time.monotonic,
        min_redraw_s: float = 0.1,
        interactive: bool | None = None,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        if interactive is None:
            isatty = getattr(self.stream, "isatty", None)
            try:
                interactive = bool(isatty()) if callable(isatty) else False
            except (OSError, ValueError):
                interactive = False
        self.interactive = interactive
        if not interactive:
            min_redraw_s = max(min_redraw_s, NON_TTY_MIN_REDRAW_S)
        self.min_redraw_s = min_redraw_s
        self.state = ProgressState()
        self._t0: float | None = None
        self._last_draw = -1.0
        self._drew = False

    def __call__(self, event: ProgressEvent) -> None:
        if self._t0 is None:
            self._t0 = self.clock()
        self.state.apply(event)
        now = self.clock()
        # Always draw terminal transitions; throttle heartbeats.
        if event.kind == HEARTBEAT and (
            now - self._last_draw < self.min_redraw_s
        ):
            return
        self._last_draw = now
        line = format_progress(self.state, now - self._t0, self.label)
        if self.interactive:
            self.stream.write("\r" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._drew = True

    def close(self) -> None:
        """End the in-place line (newline) if anything was drawn.

        Line-per-event output is already newline-terminated, so closing a
        non-interactive renderer writes nothing.
        """
        if self._drew and self.interactive:
            self.stream.write("\n")
            self.stream.flush()
        self._drew = False
