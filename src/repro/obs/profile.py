"""Near-zero-overhead phase profiler for the chunked write path.

The chunked runner already stamps ``perf_counter`` around each kernel
(batch write, rotation, PCM apply) to drive chunk spans.  A
:class:`PhaseProfile` reuses those deltas: attribution costs two dict
operations per chunk phase — no extra clock reads on the hot path — so
profiled runs stay within noise of unprofiled ones and remain
bit-identical (the profile never touches simulation state).

Phases are free-form dotted names (``write.batch``, ``accumulate``,
``pad.fetch``, ``checkpoint``, ``trace.gen``…).  ``to_dict`` renders a
stable summary suitable for ledger manifests.
"""

from __future__ import annotations

from typing import Any, Iterable


class PhaseProfile:
    """Accumulates ``(seconds, count)`` per named phase."""

    __slots__ = ("phases",)

    def __init__(self) -> None:
        # name -> [total_seconds, count]
        self.phases: dict[str, list[float]] = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        slot = self.phases.get(name)
        if slot is None:
            self.phases[name] = [seconds, float(count)]
        else:
            slot[0] += seconds
            slot[1] += count

    def merge(self, other: "PhaseProfile") -> None:
        for name, (secs, count) in other.phases.items():
            self.add(name, secs, int(count))

    @property
    def total_s(self) -> float:
        return sum(slot[0] for slot in self.phases.values())

    def items(self) -> Iterable[tuple[str, float, int]]:
        for name, (secs, count) in sorted(
            self.phases.items(), key=lambda kv: -kv[1][0]
        ):
            yield name, secs, int(count)

    def to_dict(self) -> dict[str, Any]:
        """Stable, JSON-friendly summary: name -> {seconds, count, share}."""
        total = self.total_s
        out: dict[str, Any] = {}
        for name, secs, count in self.items():
            out[name] = {
                "seconds": round(secs, 6),
                "count": count,
                "share": round(secs / total, 4) if total > 0 else 0.0,
            }
        return out

    def totals(self) -> dict[str, float]:
        """name -> seconds, for merging into manifest ``phases``."""
        return {name: round(secs, 6) for name, secs, _ in self.items()}

    def __bool__(self) -> bool:
        return bool(self.phases)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{n}={s:.3f}s/{c}" for n, s, c in self.items())
        return f"PhaseProfile({parts})"
