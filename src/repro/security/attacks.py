"""Attack-model demonstrations (sections 2.1-2.2).

The paper motivates encryption with two adversaries: a **stolen DIMM**
attacker who streams the array contents at leisure, and a **bus snooper**
who observes every write crossing the memory bus.  This module implements
both attackers against the encryption configurations of Figure 2 and shows
which configuration defeats which attack:

* global-key ECB-style encryption leaks equal lines (dictionary attack);
* address-tweaked encryption defeats the dictionary attack but leaks
  *when a line's content returns to a previous value* to a bus snooper;
* per-line-counter encryption (the baseline DEUCE builds on) defeats both.

These are simulations of information leakage, not cryptanalysis: the
attacker wins when it can distinguish or correlate plaintexts from
ciphertext observations alone.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.crypto.pads import PadSource
from repro.memory import bitops


@dataclass
class StolenDimmView:
    """What a stolen-DIMM attacker sees: one snapshot of all stored lines."""

    lines: dict[int, bytes]

    def equal_content_groups(self) -> list[list[int]]:
        """Groups of addresses whose stored images are identical.

        Under a global-key scheme, identical ciphertext means identical
        plaintext — the dictionary attack.  Any group with more than one
        member is leakage.
        """
        groups: dict[bytes, list[int]] = defaultdict(list)
        for addr, data in self.lines.items():
            groups[data].append(addr)
        return [sorted(g) for g in groups.values() if len(g) > 1]


@dataclass
class BusSnooper:
    """Observes every (address, ciphertext) write on the memory bus."""

    observed: dict[int, list[bytes]] = field(default_factory=dict)

    def observe(self, address: int, ciphertext: bytes) -> None:
        self.observed.setdefault(address, []).append(ciphertext)

    def repeated_ciphertexts(self, address: int) -> int:
        """Writes whose ciphertext repeats an earlier one for this line.

        With no counter, re-writing the same plaintext produces the same
        ciphertext, telling the snooper "the value came back" — leakage
        that per-line counters remove.
        """
        seen: set[bytes] = set()
        repeats = 0
        for ct in self.observed.get(address, ()):
            if ct in seen:
                repeats += 1
            seen.add(ct)
        return repeats

    def xor_pairs(self, address: int) -> list[bytes]:
        """XOR of consecutive ciphertexts to one line.

        If the pad was reused (counter reset attack, footnote 1), this XOR
        equals the XOR of the plaintexts — directly useful to the attacker.
        Under proper counter mode it is pad-randomized noise.
        """
        cts = self.observed.get(address, ())
        return [bitops.xor(a, b) for a, b in zip(cts, cts[1:])]


class GlobalKeyMemory:
    """Figure 2(a): every line encrypted with the same pad (no tweak).

    Deliberately weak — used to demonstrate the dictionary attack.
    """

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        self.pads = pads
        self.line_bytes = line_bytes
        self._lines: dict[int, bytes] = {}

    def _pad(self) -> bytes:
        return self.pads.line_pad(0, 0, self.line_bytes)

    def write(self, address: int, plaintext: bytes) -> bytes:
        ct = bitops.xor(plaintext, self._pad())
        self._lines[address] = ct
        return ct

    def snapshot(self) -> StolenDimmView:
        return StolenDimmView(dict(self._lines))


class AddressTweakedMemory:
    """Figure 2(b): pad depends on the line address but not on a counter."""

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        self.pads = pads
        self.line_bytes = line_bytes
        self._lines: dict[int, bytes] = {}

    def _pad(self, address: int) -> bytes:
        return self.pads.line_pad(address, 0, self.line_bytes)

    def write(self, address: int, plaintext: bytes) -> bytes:
        ct = bitops.xor(plaintext, self._pad(address))
        self._lines[address] = ct
        return ct

    def snapshot(self) -> StolenDimmView:
        return StolenDimmView(dict(self._lines))


class CounterModeMemory:
    """Figure 2(c): per-line counter — the secure baseline."""

    def __init__(self, pads: PadSource, line_bytes: int = 64) -> None:
        self.pads = pads
        self.line_bytes = line_bytes
        self._lines: dict[int, bytes] = {}
        self._counters: dict[int, int] = {}

    def write(self, address: int, plaintext: bytes) -> bytes:
        counter = self._counters.get(address, -1) + 1
        self._counters[address] = counter
        ct = bitops.xor(
            plaintext, self.pads.line_pad(address, counter, self.line_bytes)
        )
        self._lines[address] = ct
        return ct

    def snapshot(self) -> StolenDimmView:
        return StolenDimmView(dict(self._lines))


class CounterResetMemory(CounterModeMemory):
    """Counter mode under footnote 1's bus-tampering attack: the adversary
    forces the counter back to zero, causing pad reuse.

    Exists to demonstrate *why* pad uniqueness matters: the snooper's
    :meth:`BusSnooper.xor_pairs` becomes the plaintext XOR.
    """

    def write(self, address: int, plaintext: bytes) -> bytes:
        self._counters[address] = -1  # tampered: always resets to 0
        return super().write(address, plaintext)
