"""Attack models, integrity protection, and security auditing."""

from repro.security.attacks import (
    AddressTweakedMemory,
    BusSnooper,
    CounterModeMemory,
    CounterResetMemory,
    GlobalKeyMemory,
    StolenDimmView,
)
from repro.security.endurance import (
    AttackReport,
    ThrottlingGuard,
    WriteStreamDetector,
)
from repro.security.invariants import (
    PadReuse,
    PadUsageAuditor,
    audit_deuce_write_path,
)
from repro.security.merkle import (
    IntegrityError,
    MerkleTree,
    TamperedCounterStore,
    VerifiedRead,
)

__all__ = [
    "AddressTweakedMemory",
    "AttackReport",
    "BusSnooper",
    "CounterModeMemory",
    "CounterResetMemory",
    "GlobalKeyMemory",
    "IntegrityError",
    "MerkleTree",
    "PadReuse",
    "PadUsageAuditor",
    "StolenDimmView",
    "TamperedCounterStore",
    "ThrottlingGuard",
    "VerifiedRead",
    "WriteStreamDetector",
    "audit_deuce_write_path",
]
