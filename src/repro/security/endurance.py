"""Online detection of malicious write streams (section 7.3, ref [23]).

PCM's limited endurance invites a second class of attack the paper
distinguishes from information attacks: a hostile (or pathological) program
hammering a few lines to wear them out.  Qureshi et al. [HPCA 2011] showed
such streams can be detected online with a small tracking structure; wear
leveling can then be sped up, or the stream throttled.

:class:`WriteStreamDetector` implements the practical variant: a
Misra-Gries heavy-hitter table over the write stream.  A line whose
estimated frequency within the current window exceeds ``threshold`` times
the uniform share is reported as an attack line.  The table is O(k) state
regardless of memory size — the property that makes the technique
implementable in a memory controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AttackReport:
    """Detector verdict for one window."""

    window_writes: int
    suspects: dict[int, int] = field(default_factory=dict)

    @property
    def attack_detected(self) -> bool:
        return bool(self.suspects)


class WriteStreamDetector:
    """Misra-Gries heavy-hitter detector over line-write streams.

    Parameters
    ----------
    table_size:
        Tracked candidate lines (the controller's CAM size).  Frequencies
        are underestimated by at most ``window/table_size``, so the table
        must be larger than ``threshold_share`` would require —
        ``table_size >= 2 / threshold_share`` is a safe rule.
    window:
        Writes per detection window.
    threshold_share:
        Fraction of the window's writes to one line that constitutes an
        attack (uniform traffic over any realistic working set gives each
        line far below 1%).
    """

    def __init__(
        self,
        table_size: int = 64,
        window: int = 4096,
        threshold_share: float = 0.05,
    ) -> None:
        if table_size < 1:
            raise ValueError("table_size must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 < threshold_share <= 1:
            raise ValueError("threshold_share must be in (0, 1]")
        self.table_size = table_size
        self.window = window
        self.threshold_share = threshold_share
        self._counts: dict[int, int] = {}
        self._window_writes = 0
        self.windows_completed = 0
        self.reports: list[AttackReport] = []

    # -- stream interface ---------------------------------------------------

    def on_write(self, address: int) -> AttackReport | None:
        """Feed one write; returns a report when a window completes."""
        counts = self._counts
        if address in counts:
            counts[address] += 1
        elif len(counts) < self.table_size:
            counts[address] = 1
        else:
            # Misra-Gries decrement step: every tracked counter pays one.
            for key in list(counts):
                counts[key] -= 1
                if counts[key] == 0:
                    del counts[key]
        self._window_writes += 1
        if self._window_writes < self.window:
            return None
        return self._close_window()

    def _close_window(self) -> AttackReport:
        threshold = self.threshold_share * self._window_writes
        suspects = {
            addr: count
            for addr, count in self._counts.items()
            if count >= threshold
        }
        report = AttackReport(self._window_writes, suspects)
        self.reports.append(report)
        self.windows_completed += 1
        self._counts = {}
        self._window_writes = 0
        return report

    @property
    def under_attack(self) -> bool:
        """Did the most recent completed window flag an attack?"""
        return bool(self.reports) and self.reports[-1].attack_detected


class ThrottlingGuard:
    """Response policy: exponentially throttle flagged attack lines.

    Wraps a detector; ``delay_for`` returns the extra service delay (in
    write-slot units) the controller should impose on a write to a flagged
    line.  The delay doubles with every consecutive window the line stays
    hot and resets when it cools down.
    """

    def __init__(
        self, detector: WriteStreamDetector, base_delay_slots: int = 1
    ) -> None:
        if base_delay_slots < 1:
            raise ValueError("base_delay_slots must be >= 1")
        self.detector = detector
        self.base_delay_slots = base_delay_slots
        self._strikes: dict[int, int] = {}

    def on_write(self, address: int) -> int:
        """Feed a write; returns the throttle delay (slots) to apply."""
        report = self.detector.on_write(address)
        if report is not None:
            flagged = set(report.suspects)
            self._strikes = {
                addr: self._strikes.get(addr, 0) + 1
                for addr in flagged
            }
        strikes = self._strikes.get(address, 0)
        if strikes == 0:
            return 0
        return self.base_delay_slots * (2 ** min(strikes - 1, 6))
