"""Merkle-tree integrity protection (paper footnote 1, refs [14][16]).

Counter-mode encryption protects *confidentiality*, but an adversary who can
tamper with the bus or the array can mount the counter-reset attack: force a
line's counter back to an old value and harvest pad reuse.  The classical
defence the paper points to is a Merkle tree over the counters (a *Bonsai
Merkle Tree* [16]): the processor keeps only the root on chip; any
modification of a counter (or of a tree node held in untrusted memory) makes
root verification fail.

This module implements that defence as a standalone, testable component:

* :class:`MerkleTree` — a binary hash tree over per-line counters with an
  on-chip root, supporting reads with verification and verified updates.
* :class:`TamperedCounterStore` — an adversary wrapper used by tests and
  the attack demos to show the tree catching counter resets.

Hashing uses keyed BLAKE2 (the same primitive as the fast pad source); a
hardware implementation would use a dedicated hash engine.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


class IntegrityError(Exception):
    """Raised when a verification against the on-chip root fails."""


def _hash_pair(key: bytes, left: bytes, right: bytes) -> bytes:
    return hashlib.blake2b(left + right, key=key, digest_size=16).digest()


def _hash_leaf(key: bytes, index: int, counter: int) -> bytes:
    payload = index.to_bytes(8, "little") + counter.to_bytes(8, "little")
    return hashlib.blake2b(payload, key=key, digest_size=16).digest()


@dataclass
class VerifiedRead:
    """Result of a verified counter read."""

    index: int
    counter: int
    verified: bool


class MerkleTree:
    """Binary Merkle tree over ``n_leaves`` per-line counters.

    The tree nodes live in (untrusted) memory — here a flat list — and only
    ``root`` is trusted on-chip state.  ``update`` recomputes the leaf-to-
    root path after first verifying the *old* path, so a tampered sibling
    cannot be laundered into a fresh root.

    Parameters
    ----------
    n_leaves:
        Number of counters protected (padded up to a power of two).
    key:
        MAC key for the hash (on-chip secret).
    """

    def __init__(self, n_leaves: int, key: bytes = b"merkle-key") -> None:
        if n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")
        self.n_leaves = n_leaves
        self.key = bytes(key)
        size = 1
        while size < n_leaves:
            size *= 2
        self._size = size
        self._counters = [0] * n_leaves
        # Heap layout: nodes[1] is the root, children of i are 2i, 2i+1;
        # leaves occupy [size, 2*size).
        self._nodes = [b""] * (2 * size)
        for i in range(size):
            if i < n_leaves:
                self._nodes[size + i] = _hash_leaf(self.key, i, 0)
            else:
                # Padding leaves get a distinct domain so they can never
                # collide with a real counter leaf.
                self._nodes[size + i] = hashlib.blake2b(
                    b"pad" + i.to_bytes(8, "little"),
                    key=self.key,
                    digest_size=16,
                ).digest()
        for i in range(size - 1, 0, -1):
            self._nodes[i] = _hash_pair(
                self.key, self._nodes[2 * i], self._nodes[2 * i + 1]
            )
        #: Trusted on-chip root.
        self.root = self._nodes[1]
        self.verifications = 0
        self.failures = 0

    # -- internal path helpers ---------------------------------------------

    def _path_ok(self, index: int) -> bool:
        """Recompute the leaf's path bottom-up and compare with the root."""
        node = self._size + index
        digest = _hash_leaf(self.key, index, self._counters[index])
        if digest != self._nodes[node]:
            return False
        while node > 1:
            sibling = node ^ 1
            left, right = (
                (self._nodes[node], self._nodes[sibling])
                if node % 2 == 0
                else (self._nodes[sibling], self._nodes[node])
            )
            parent_digest = _hash_pair(self.key, left, right)
            node //= 2
            if parent_digest != self._nodes[node]:
                return False
            digest = parent_digest
        return digest == self.root

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise ValueError(f"leaf index {index} out of range")

    # -- public API -----------------------------------------------------------

    def read(self, index: int) -> VerifiedRead:
        """Read a counter, verifying its path against the on-chip root."""
        self._check_index(index)
        self.verifications += 1
        ok = self._path_ok(index)
        if not ok:
            self.failures += 1
        return VerifiedRead(index, self._counters[index], ok)

    def read_or_raise(self, index: int) -> int:
        """Read a counter; raise :class:`IntegrityError` on tampering."""
        result = self.read(index)
        if not result.verified:
            raise IntegrityError(
                f"counter {index} failed Merkle verification "
                "(counter-reset / tampering attack?)"
            )
        return result.counter

    def update(self, index: int, counter: int) -> None:
        """Set a counter and recompute its path into the trusted root.

        The old path is verified first; updating through a tampered path
        raises instead of absorbing the attacker's value.
        """
        self._check_index(index)
        if not self._path_ok(index):
            self.failures += 1
            raise IntegrityError(
                f"refusing to update counter {index}: existing path is "
                "corrupt"
            )
        self._counters[index] = counter
        node = self._size + index
        self._nodes[node] = _hash_leaf(self.key, index, counter)
        while node > 1:
            parent = node // 2
            self._nodes[parent] = _hash_pair(
                self.key, self._nodes[2 * parent], self._nodes[2 * parent + 1]
            )
            node = parent
        self.root = self._nodes[1]

    def increment(self, index: int) -> int:
        """Verified read-modify-write of a counter (the per-write path)."""
        counter = self.read_or_raise(index) + 1
        self.update(index, counter)
        return counter

    # -- adversary interface (tests / demos) ------------------------------------

    def tamper_counter(self, index: int, counter: int) -> None:
        """Adversary: overwrite a counter in untrusted memory directly."""
        self._check_index(index)
        self._counters[index] = counter

    def tamper_node(self, node_index: int, value: bytes) -> None:
        """Adversary: overwrite a tree node in untrusted memory."""
        if not 1 <= node_index < len(self._nodes):
            raise ValueError("node index out of range")
        self._nodes[node_index] = value


class TamperedCounterStore:
    """Counter store that replays stale counters after a trigger.

    Models the footnote-1 bus-tampering adversary: after ``arm`` is called,
    reads of the target line return the counter value captured earlier,
    which would cause pad reuse if the controller trusted it.
    """

    def __init__(self) -> None:
        self._counters: dict[int, int] = {}
        self._stale: dict[int, int] = {}
        self._armed: set[int] = set()

    def write(self, index: int, counter: int) -> None:
        self._counters[index] = counter

    def read(self, index: int) -> int:
        if index in self._armed:
            return self._stale.get(index, 0)
        return self._counters.get(index, 0)

    def capture(self, index: int) -> None:
        """Adversary snapshots the current counter for later replay."""
        self._stale[index] = self._counters.get(index, 0)

    def arm(self, index: int) -> None:
        """Adversary starts replaying the stale counter."""
        self._armed.add(index)
