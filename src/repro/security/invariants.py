"""Security invariant auditing for counter-mode schemes.

The security argument of counter-mode encryption — and of DEUCE's dual
counter variant (section 4.3.5) — reduces to one invariant: **a pad is never
XORed with two different plaintexts**.  If a (address, counter, offset) pad
byte ever encrypts two distinct values, an attacker who captures both
ciphertexts can XOR them and recover the plaintext difference.

:class:`PadUsageAuditor` checks the invariant mechanically.  It wraps a pad
source, and a scheme-side hook records every (address, counter, byte offset,
plaintext byte) encryption event.  Property-based tests drive schemes
through thousands of writes and assert no violation; the auditor is also
used by the attack demos to show that a (buggy) counter-reuse scheme is
actually exploitable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PadReuse:
    """One observed violation: a pad byte used with two plaintext values."""

    address: int
    counter: int
    offset: int
    first_plaintext: int
    second_plaintext: int


@dataclass
class PadUsageAuditor:
    """Records pad usage and detects reuse with *different* data.

    Re-encrypting the same plaintext byte under the same (address, counter)
    is harmless — the stored ciphertext is bit-identical, the attacker
    learns nothing new — and is exactly what DEUCE does for unmodified
    words, so only use with differing plaintexts counts as a violation.
    """

    _seen: dict[tuple[int, int, int], int] = field(default_factory=dict)
    violations: list[PadReuse] = field(default_factory=list)

    def record_encryption(
        self, address: int, counter: int, plaintext: bytes, offset: int = 0
    ) -> None:
        """Record that ``plaintext`` was encrypted with the pad slice at
        (address, counter) starting at byte ``offset``."""
        for i, byte in enumerate(plaintext):
            key = (address, counter, offset + i)
            prior = self._seen.get(key)
            if prior is None:
                self._seen[key] = byte
            elif prior != byte:
                self.violations.append(
                    PadReuse(address, counter, offset + i, prior, byte)
                )

    @property
    def is_clean(self) -> bool:
        return not self.violations

    @property
    def n_uses(self) -> int:
        return len(self._seen)


def audit_deuce_write_path(scheme, trace_records, installed=True):
    """Drive a word-tracking scheme and audit its pad usage.

    Works for any scheme exposing ``word_bytes``, a ``stored`` map and the
    DEUCE counter conventions (``leading_counter``/``trailing_counter`` or a
    plain ``counter``).  After every write, each word's (counter used, word
    plaintext) pair is recorded: modified words under the leading counter,
    unmodified words under the trailing counter.

    Returns the auditor for assertions.
    """
    auditor = PadUsageAuditor()
    for record in trace_records:
        scheme.write(record.address, record.data)
        line = scheme.stored(record.address)
        word_bytes = scheme.word_bytes
        lead = (
            scheme.leading_counter(line)
            if hasattr(scheme, "leading_counter")
            else line.counter
        )
        trail = (
            scheme.trailing_counter(line)
            if hasattr(scheme, "trailing_counter")
            else line.counter
        )
        plaintext = scheme.read(record.address)
        for w in range(len(plaintext) // word_bytes):
            lo = w * word_bytes
            counter = lead if line.meta[w] else trail
            auditor.record_encryption(
                record.address, counter, plaintext[lo: lo + word_bytes], lo
            )
    return auditor
