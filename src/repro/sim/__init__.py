"""Simulation layer: configs, the runner, result containers, experiments."""

from repro.sim.config import DEFAULT_KEY, DEFAULT_N_WRITES, SimConfig
from repro.sim.results import RunResult
from repro.sim.runner import build_scheme, cached_trace, run, run_suite

__all__ = [
    "DEFAULT_KEY",
    "DEFAULT_N_WRITES",
    "RunResult",
    "SimConfig",
    "build_scheme",
    "cached_trace",
    "run",
    "run_suite",
]
