"""Result containers for simulation runs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.memory.pcm import WearSummary
from repro.obs.sampling import TimeSeries
from repro.sim.config import SimConfig
from repro.wear.lifetime import LifetimeReport

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids import cycles
    from repro.obs.ledger import RunManifest


@dataclass
class RunResult:
    """Aggregated outcome of streaming one trace through one scheme.

    All percentages are relative to the 512 data bits per line, matching
    the paper's normalization (metadata flips are *counted* but the
    denominator stays 512 — section 3.3 reports "modified bits per
    cacheline" including metadata flips).
    """

    workload: str
    scheme: str
    n_writes: int
    line_bits: int
    meta_bits: int
    total_flips: int = 0
    data_flips: int = 0
    meta_flips: int = 0
    set_flips: int = 0
    reset_flips: int = 0
    total_slots: int = 0
    total_words_reencrypted: int = 0
    full_reencryptions: int = 0
    epoch_resets: int = 0
    mode_switches: int = 0
    slot_histogram: Counter = field(default_factory=Counter)
    mode_histogram: Counter = field(default_factory=Counter)
    pad_hits: int = 0
    pad_misses: int = 0
    wear: WearSummary | None = None
    lifetime: LifetimeReport | None = None
    series: TimeSeries | None = None
    #: End-to-end wall time of the producing run() call (trace reuse, scheme
    #: install, and the write loop).  Timing metadata, not simulation state:
    #: bit-identity guarantees cover the aggregates above, never this.
    wall_time_s: float = 0.0
    #: The config that produced this result (set by run(); lets the ledger
    #: and sweep engines manifest results without re-threading configs).
    config: "SimConfig | None" = None
    #: The ledger manifest recorded for this result, when one was (set by
    #: repro.api.Session and the sweep engine's ledger hook).
    manifest: "RunManifest | None" = None
    #: ``summary_row``'s lifetime_norm carried over by :meth:`from_dict`
    #: for results restored from stored payloads (the raw wear/lifetime
    #: detail is not embedded in ``to_dict``, but the headline number is).
    restored_lifetime_norm: float | None = None
    #: Per-phase time attribution from the write-path profiler
    #: (:meth:`repro.obs.profile.PhaseProfile.to_dict`).  Timing metadata
    #: like ``wall_time_s``: deliberately NOT part of :meth:`to_dict`, so
    #: bit-identity oracles comparing payloads stay valid whether or not a
    #: run was profiled.  The ledger records it as a run artifact instead.
    profile: dict | None = None
    #: Per-phase cumulative aggregates, keyed by trace phase name
    #: (``{"start", "end", "total_flips", "data_flips", "meta_flips",
    #: "total_slots", "epoch_resets"}``), snapshotted by the write loops
    #: exactly when the phase's last write lands.  Cumulative (not deltas)
    #: so checkpoint/resume restores them verbatim; :meth:`phase_summary`
    #: derives the per-phase rates.  Empty for phase-less traces.
    phase_stats: dict[str, dict] = field(default_factory=dict)

    @property
    def avg_flips_per_write(self) -> float:
        return self.total_flips / self.n_writes if self.n_writes else 0.0

    @property
    def avg_flips_pct(self) -> float:
        """Modified bits per write as % of the line's data bits."""
        if not self.n_writes:
            return 0.0
        return 100.0 * self.total_flips / (self.n_writes * self.line_bits)

    @property
    def avg_data_flips_pct(self) -> float:
        if not self.n_writes:
            return 0.0
        return 100.0 * self.data_flips / (self.n_writes * self.line_bits)

    @property
    def avg_slots_per_write(self) -> float:
        return self.total_slots / self.n_writes if self.n_writes else 0.0

    @property
    def pad_hit_rate(self) -> float:
        """Fraction of pad lookups served by the pad cache (0 when uncached)."""
        lookups = self.pad_hits + self.pad_misses
        return self.pad_hits / lookups if lookups else 0.0

    @property
    def writes_per_s(self) -> float:
        """Write throughput of the producing run (0 when untimed)."""
        return self.n_writes / self.wall_time_s if self.wall_time_s else 0.0

    @property
    def avg_words_reencrypted(self) -> float:
        return (
            self.total_words_reencrypted / self.n_writes if self.n_writes else 0.0
        )

    def record_phase(self, name: str, start: int, end: int) -> None:
        """Snapshot the cumulative aggregates at a phase's last write.

        Called by the write loops when write ``end`` has just been folded
        in, so the snapshot is exact regardless of chunking (the chunked
        loop cuts chunks at phase boundaries).
        """
        self.phase_stats[name] = {
            "start": start,
            "end": end,
            "total_flips": self.total_flips,
            "data_flips": self.data_flips,
            "meta_flips": self.meta_flips,
            "total_slots": self.total_slots,
            "epoch_resets": self.epoch_resets,
        }

    def phase_summary(self) -> list[dict[str, object]]:
        """Per-phase rates derived from the cumulative snapshots.

        Phases are returned in stream order with delta counts (this
        phase's writes only) and the same normalization as the headline
        numbers (flip %% of the line's data bits).
        """
        phases = sorted(self.phase_stats.items(), key=lambda kv: kv[1]["start"])
        rows: list[dict[str, object]] = []
        prev = {
            "total_flips": 0, "data_flips": 0, "meta_flips": 0,
            "total_slots": 0, "epoch_resets": 0,
        }
        for name, snap in phases:
            writes = int(snap["end"]) - int(snap["start"])
            delta = {k: int(snap[k]) - prev[k] for k in prev}
            bits = max(writes, 1) * self.line_bits
            rows.append({
                "phase": name,
                "start": int(snap["start"]),
                "end": int(snap["end"]),
                "writes": writes,
                "flips_pct": round(100.0 * delta["total_flips"] / bits, 2),
                "data_flips_pct": round(
                    100.0 * delta["data_flips"] / bits, 2
                ),
                "meta_flips": delta["meta_flips"],
                "slots_per_write": round(
                    delta["total_slots"] / max(writes, 1), 3
                ),
                "epoch_resets": delta["epoch_resets"],
            })
            prev = {k: int(snap[k]) for k in prev}
        return rows

    def to_dict(self) -> dict[str, object]:
        """Full JSON-safe aggregates (service results, stored artifacts).

        Every simulation aggregate is integer-exact, so equality of two
        ``to_dict`` payloads (ignoring ``wall_time_s``/``run_id``) means the
        producing runs were bit-identical.  Wear/lifetime/series detail is
        summarized via :meth:`summary_row` rather than embedded raw.
        """
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "n_writes": self.n_writes,
            "line_bits": self.line_bits,
            "meta_bits": self.meta_bits,
            "total_flips": self.total_flips,
            "data_flips": self.data_flips,
            "meta_flips": self.meta_flips,
            "set_flips": self.set_flips,
            "reset_flips": self.reset_flips,
            "total_slots": self.total_slots,
            "total_words_reencrypted": self.total_words_reencrypted,
            "full_reencryptions": self.full_reencryptions,
            "epoch_resets": self.epoch_resets,
            "mode_switches": self.mode_switches,
            "slot_histogram": {
                str(k): v for k, v in sorted(self.slot_histogram.items())
            },
            "mode_histogram": {
                str(k): v for k, v in sorted(self.mode_histogram.items())
            },
            "pad_hits": self.pad_hits,
            "pad_misses": self.pad_misses,
            "phase_stats": {
                name: dict(snap) for name, snap in self.phase_stats.items()
            },
            "wall_time_s": self.wall_time_s,
            "run_id": self.manifest.run_id if self.manifest else "",
            "summary": self.summary_row(),
            "config": self.config.to_dict() if self.config else None,
        }

    def summary_row(self) -> dict[str, object]:
        """Flat dict for tables and JSON dumps."""
        row: dict[str, object] = {
            "workload": self.workload,
            "scheme": self.scheme,
            "n_writes": self.n_writes,
            "flips_pct": round(self.avg_flips_pct, 2),
            "data_flips_pct": round(self.avg_data_flips_pct, 2),
            "slots": round(self.avg_slots_per_write, 3),
            "words_reenc": round(self.avg_words_reencrypted, 2),
            "pad_hits": self.pad_hits,
            "pad_misses": self.pad_misses,
            "pad_hit_rate": round(self.pad_hit_rate, 3),
        }
        if self.lifetime is not None:
            row["lifetime_norm"] = round(self.lifetime.normalized, 3)
        elif self.restored_lifetime_norm is not None:
            row["lifetime_norm"] = self.restored_lifetime_norm
        # Per-phase rates for phased (KV) traces; keys are distinct from
        # RunManifest.phases (which holds tracer wall-seconds).
        for phase in self.phase_summary():
            prefix = f"phase_{phase['phase']}"
            row[f"{prefix}_writes"] = phase["writes"]
            row[f"{prefix}_flips_pct"] = phase["flips_pct"]
        return row

    # -- restore / checkpoint ----------------------------------------------

    #: The mutable aggregates the write loop folds outcomes into; exactly
    #: what a mid-run checkpoint must capture (everything else is either
    #: static geometry or derived after the loop).
    _MUTABLE_FIELDS = (
        "total_flips",
        "data_flips",
        "meta_flips",
        "set_flips",
        "reset_flips",
        "total_slots",
        "total_words_reencrypted",
        "full_reencryptions",
        "epoch_resets",
        "mode_switches",
    )

    def checkpoint_state(self) -> dict[str, object]:
        """JSON-safe snapshot of the in-loop aggregates (histograms too).

        Encodings match :meth:`to_dict`, so :meth:`load_checkpoint_state`
        accepts either a checkpoint snapshot or a full ``to_dict`` payload.
        """
        state: dict[str, object] = {
            name: getattr(self, name) for name in self._MUTABLE_FIELDS
        }
        state["slot_histogram"] = {
            str(k): v for k, v in sorted(self.slot_histogram.items())
        }
        state["mode_histogram"] = {
            str(k): v for k, v in sorted(self.mode_histogram.items())
        }
        state["phase_stats"] = {
            name: dict(snap) for name, snap in self.phase_stats.items()
        }
        return state

    def load_checkpoint_state(self, state: dict[str, object]) -> None:
        """Restore :meth:`checkpoint_state` output bit-identically."""
        for name in self._MUTABLE_FIELDS:
            setattr(self, name, int(state[name]))
        self.slot_histogram = Counter(
            {int(k): int(v) for k, v in state["slot_histogram"].items()}
        )
        self.mode_histogram = Counter(
            {str(k): int(v) for k, v in state["mode_histogram"].items()}
        )
        # .get: payloads written before phases existed restore with none.
        self.phase_stats = {
            str(name): {k: int(v) for k, v in snap.items()}
            for name, snap in (state.get("phase_stats") or {}).items()
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunResult":
        """Rebuild a result from a :meth:`to_dict` payload.

        The inverse up to what ``to_dict`` drops: raw wear/lifetime/series
        detail is not embedded, so those stay ``None`` (the summary's
        ``lifetime_norm`` is carried over verbatim), and no ledger manifest
        is attached.  Used by sweep-checkpoint resume to treat completed
        cells stored as JSON as first-class results.
        """
        result = cls(
            workload=str(data["workload"]),
            scheme=str(data["scheme"]),
            n_writes=int(data["n_writes"]),
            line_bits=int(data["line_bits"]),
            meta_bits=int(data["meta_bits"]),
            pad_hits=int(data.get("pad_hits", 0)),
            pad_misses=int(data.get("pad_misses", 0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
        )
        result.load_checkpoint_state(data)
        config = data.get("config")
        if config is not None:
            result.config = SimConfig.from_dict(dict(config))
        summary = data.get("summary") or {}
        if "lifetime_norm" in summary:
            result.restored_lifetime_norm = float(summary["lifetime_norm"])
        return result
