"""Shared-memory trace buffers for the parallel sweep.

A sweep grid typically runs many schemes over few workloads, so every
worker process used to regenerate (or unpickle) the same trace.  This
module lets the parent materialize each unique workload trace **once**,
publish its arrays into a ``multiprocessing.shared_memory`` segment, and
hand workers only a tiny :class:`TraceShmSpec` (segment name plus shape
metadata, well under a kilobyte).  Workers attach the segment and wrap the
buffers in a zero-copy :meth:`~repro.workloads.trace.Trace.from_arrays`
view — no trace bytes are ever pickled to a worker and no worker
regenerates a trace.

Segment layout (one segment per unique trace, int64 blocks first so every
array is naturally aligned)::

    init_addresses  (n_initial,)            int64
    addresses       (n_writes,)             int64
    init_data       (n_initial, line_bytes) uint8
    data            (n_writes,  line_bytes) uint8

Lifetime: the parent-side :class:`TracePublisher` owns every segment and
unlinks them when the sweep finishes (it is a context manager).  Workers
attach read-only views and deliberately *unregister* the attachment from
``multiprocessing.resource_tracker`` — on Python < 3.13 the tracker would
otherwise unlink the parent's segment when the first worker exits
(bpo-38119); ownership stays with the publisher.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.sim.config import SimConfig
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class TraceShmSpec:
    """Everything a worker needs to attach one published trace.

    Frozen and tiny (a name and five scalars) so submitting it with each
    pool task costs nothing; the trace bytes themselves never cross the
    process boundary.
    """

    name: str
    profile_name: str
    seed: int
    line_bytes: int
    n_initial: int
    n_writes: int
    #: Trace phase boundaries ((name, start) pairs); shape metadata like
    #: the scalars above, carried so attached KV traces keep their
    #: populate/steady structure (phase snapshots must be identical
    #: between shm and regenerated runs).
    phases: tuple[tuple[str, int], ...] = ()


def trace_key(config: SimConfig) -> tuple[str, int, int, int, str]:
    """The tuple that determines a config's trace, for deduplication."""
    return (
        config.workload,
        config.seed,
        config.n_writes,
        config.line_bytes,
        json.dumps(config.workload_params or {}, sort_keys=True),
    )


def _layout(
    n_initial: int, n_writes: int, line_bytes: int
) -> tuple[int, int, int, int, int]:
    """Byte offsets of the four arrays and the total segment size."""
    o_init_addr = 0
    o_addr = o_init_addr + 8 * n_initial
    o_init_data = o_addr + 8 * n_writes
    o_data = o_init_data + n_initial * line_bytes
    total = o_data + n_writes * line_bytes
    return o_init_addr, o_addr, o_init_data, o_data, total


class TracePublisher:
    """Parent-side owner of shared-memory trace segments.

    ``publish(config)`` materializes the config's trace (through the same
    :func:`repro.sim.runner.cached_trace` the serial path uses), copies its
    arrays into a fresh segment, and returns the :class:`TraceShmSpec`.
    Publishing is deduplicated by :func:`trace_key`, so a grid of N schemes
    over one workload creates one segment.  Any failure to create a
    segment (e.g. an exhausted ``/dev/shm``) returns ``None`` and the
    caller falls back to per-worker generation — publishing is an
    optimization, never a correctness dependency.
    """

    def __init__(self) -> None:
        self._segments: dict[tuple, tuple] = {}  # key -> (shm, spec)
        self._closed = False

    def publish(self, config: SimConfig) -> TraceShmSpec | None:
        if self._closed:
            raise RuntimeError("TracePublisher is closed")
        key = trace_key(config)
        hit = self._segments.get(key)
        if hit is not None:
            return hit[1]
        try:
            spec_pair = self._publish(config)
        except Exception:
            spec_pair = None
        if spec_pair is None:
            return None
        self._segments[key] = spec_pair
        return spec_pair[1]

    def _publish(self, config: SimConfig) -> tuple | None:
        from repro.sim.runner import cached_trace

        trace = cached_trace(
            config.workload,
            config.n_writes,
            config.seed,
            config.line_bytes,
            params=config.workload_params,
        )
        addresses, data = trace.write_arrays()
        init_addresses, init_data = trace.initial_arrays()
        n_initial = init_addresses.shape[0]
        n_writes = addresses.shape[0]
        line_bytes = trace.line_bytes
        o_ia, o_a, o_id, o_d, total = _layout(n_initial, n_writes, line_bytes)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            buf = shm.buf
            np.frombuffer(buf, np.int64, n_initial, o_ia)[:] = init_addresses
            np.frombuffer(buf, np.int64, n_writes, o_a)[:] = addresses
            np.frombuffer(buf, np.uint8, n_initial * line_bytes, o_id)[:] = (
                init_data.ravel()
            )
            np.frombuffer(buf, np.uint8, n_writes * line_bytes, o_d)[:] = (
                data.ravel()
            )
        except Exception:
            shm.close()
            shm.unlink()
            raise
        spec = TraceShmSpec(
            name=shm.name,
            profile_name=trace.profile_name,
            seed=trace.seed,
            line_bytes=line_bytes,
            n_initial=n_initial,
            n_writes=n_writes,
            phases=trace.phases,
        )
        return (shm, spec)

    def close(self) -> None:
        """Release and unlink every published segment."""
        self._closed = True
        segments, self._segments = self._segments, {}
        for shm, _spec in segments.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "TracePublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)


#: Worker-side attachment cache: pool workers are reused across cells, so
#: each segment is mapped once per process and held until process exit
#: (the parent owns unlinking; closing here would invalidate live views).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        # Python < 3.13 registers *attachments* with the resource tracker
        # too (bpo-38119): under spawn the worker's tracker would unlink
        # the parent's live segment when the worker exits, and under fork
        # an unregister from the worker would strip the parent's own
        # registration from the shared tracker.  Either way the fix is the
        # same — keep the attachment invisible to the tracker by muting
        # ``register`` for the duration of the attach.  The publisher owns
        # the lifetime.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[name] = shm
    return shm


def attach_trace(spec: TraceShmSpec) -> Trace:
    """Attach a published segment and return a zero-copy :class:`Trace`.

    The returned trace's arrays are read-only views straight into the
    shared mapping; ``records`` stays lazy, so nothing is copied unless
    the serial per-write loop iterates it.
    """
    shm = _attach_segment(spec.name)
    buf = shm.buf
    o_ia, o_a, o_id, o_d, _total = _layout(
        spec.n_initial, spec.n_writes, spec.line_bytes
    )
    init_addresses = np.frombuffer(buf, np.int64, spec.n_initial, o_ia)
    addresses = np.frombuffer(buf, np.int64, spec.n_writes, o_a)
    init_data = np.frombuffer(
        buf, np.uint8, spec.n_initial * spec.line_bytes, o_id
    ).reshape(spec.n_initial, spec.line_bytes)
    data = np.frombuffer(
        buf, np.uint8, spec.n_writes * spec.line_bytes, o_d
    ).reshape(spec.n_writes, spec.line_bytes)
    for arr in (init_addresses, addresses, init_data, data):
        arr.flags.writeable = False
    return Trace.from_arrays(
        spec.profile_name,
        spec.seed,
        spec.line_bytes,
        init_addresses,
        init_data,
        addresses,
        data,
        phases=spec.phases,
    )
